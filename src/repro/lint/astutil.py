"""Shared AST plumbing for lint rules.

Rules need three recurring services:

* resolving what dotted name a call refers to, through ``import`` /
  ``from … import`` aliases (including relative imports),
* extracting the "terminal" identifier of an expression (``self._lock``
  → ``_lock``; ``locks[k]`` → ``locks``), and
* mapping a file path to the dotted module name the scope map matches
  against.

Everything here is purely syntactic — no code is imported or executed,
so linting untrusted or broken sources is safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Tuple


def module_name_for_path(path: Path) -> str:
    """Derive the dotted module name by walking up through packages.

    ``src/repro/tee/channel.py`` → ``repro.tee.channel`` (the walk stops
    at the first directory without ``__init__.py``).  Standalone files
    (e.g. test fixtures) resolve to their stem.
    """
    path = path.resolve()
    parts: List[str] = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


@dataclass
class ImportTable:
    """Alias → dotted-name mapping built from a module's import statements."""

    #: e.g. ``{"np": "numpy", "now": "datetime.datetime.now"}``
    aliases: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def collect(cls, tree: ast.AST, module: str) -> "ImportTable":
        table = cls()
        package_parts = module.split(".")[:-1]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    table.aliases[name] = target
            elif isinstance(node, ast.ImportFrom):
                base = cls._resolve_from(node, package_parts)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    table.aliases[name] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        return table

    @staticmethod
    def _resolve_from(node: ast.ImportFrom, package_parts: List[str]) -> str:
        if node.level == 0:
            return node.module or ""
        # Relative import: drop ``level`` trailing packages.
        kept = package_parts[: len(package_parts) - (node.level - 1)]
        if node.module:
            kept = kept + node.module.split(".")
        return ".".join(kept)

    def resolve(self, dotted: str) -> str:
        """Expand the leading alias of a dotted name, if known."""
        head, _, rest = dotted.partition(".")
        expanded = self.aliases.get(head)
        if expanded is None:
            return dotted
        return f"{expanded}.{rest}" if rest else expanded


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_identifier(node: ast.AST) -> Optional[str]:
    """The identifier a value expression is named by, if any.

    ``self._stats_lock`` → ``_stats_lock``; ``locks[key]`` → ``locks``;
    ``sig`` → ``sig``.  Calls, literals and operators have no terminal
    identifier.
    """
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):
        return terminal_identifier(node.value)
    return None


def identifier_parts(identifier: str) -> FrozenSet[str]:
    """Lower-cased snake_case words of an identifier (``MAC_TAG`` → {mac, tag})."""
    return frozenset(
        part for part in identifier.lower().strip("_").split("_") if part
    )


def call_name(node: ast.Call, imports: ImportTable) -> Optional[str]:
    """Fully-resolved dotted name of a call target, or ``None``."""
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    return imports.resolve(dotted)


def is_constant_bytes_like(node: ast.AST) -> bool:
    """A literal bytes/str value, possibly repeated (``b"k" * 16``)."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (bytes, str)) and len(str(node.value)) > 0
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return is_constant_bytes_like(node.left) or is_constant_bytes_like(
            node.right
        )
    return False


def statement_extents(tree: ast.AST) -> "List[Tuple[int, int]]":
    """Physical-line extents of every statement, headers only.

    Simple statements span ``lineno..end_lineno`` (a parenthesized call
    spanning four lines is one extent).  Compound statements (defs,
    ``if``/``for``/``with``/``try``) contribute only their *header* —
    from the first decorator line to the line before the body starts —
    so an extent never swallows the statement's nested body.  Used to
    anchor inline suppressions and ``declassify`` markers to the whole
    logical line a finding sits on.
    """
    extents: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or node.lineno
        for decorator in getattr(node, "decorator_list", None) or []:
            start = min(start, decorator.lineno)
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            end = max(node.lineno, body[0].lineno - 1)
        extents.append((start, end))
    return extents


def innermost_extent(
    extents: "List[Tuple[int, int]]", line: int
) -> "Optional[Tuple[int, int]]":
    """The smallest statement extent containing ``line``, if any."""
    best: Optional[Tuple[int, int]] = None
    for start, end in extents:
        if start <= line <= end:
            if best is None or (end - start) < (best[1] - best[0]):
                best = (start, end)
    return best


@dataclass(frozen=True)
class ClassContext:
    """Innermost enclosing class for canonical lock naming."""

    name: str


def enclosing_class_map(tree: ast.AST) -> Dict[int, str]:
    """Map every AST node id to its innermost enclosing class name."""
    mapping: Dict[int, str] = {}

    def visit(node: ast.AST, current: Optional[str]) -> None:
        if isinstance(node, ast.ClassDef):
            current = node.name
        for child in ast.iter_child_nodes(node):
            mapping[id(child)] = current or ""
            visit(child, current)

    visit(tree, None)
    return mapping


def iter_function_defs(
    tree: ast.AST,
) -> "List[Tuple[ast.AST, Optional[str]]]":
    """Every function/method def paired with its enclosing class name."""
    found: List[Tuple[ast.AST, Optional[str]]] = []

    def visit(node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append((child, cls))
                visit(child, cls)
            else:
                visit(child, cls)

    visit(tree, None)
    return found
