"""Warm-pool amortization benchmark: the service vs one-shot runs.

Runs the same batch of studies twice —

* **cold**: each study through :func:`~repro.core.protocol.run_study`,
  paying provisioning (attestation, DH key agreement, channel
  establishment) every time, and
* **warm**: the whole batch through a
  :class:`~repro.serve.FederationService`, where provisioning is paid
  once per pool slot and every later study binds to a warm substrate —

then emits one JSON document (``BENCH_serve.json`` by default) with
throughput, p50/p95 submit-to-result latency, and the cold-vs-warm
steady-state amortization ratio.  The emitter doubles as the
equivalence gate used in CI: every service study's *decisions* must be
bit-identical to its one-shot twin (:func:`~repro.bench.fig5.study_decisions`),
and the process exits non-zero on any mismatch or if the warm
steady-state latency fails to beat the cold per-study latency.

Run as::

    PYTHONPATH=src python -m repro.bench.serve --out BENCH_serve.json \
        [--snps 500] [--studies 8] [--scale 0.05]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from ..core.protocol import run_study
from ..serve import FederationService, ServiceConfig
from .fig5 import study_decisions
from .workloads import (
    PAPER_CASE_HALF,
    bench_scale,
    clear_cohort_cache,
    paper_cohort,
    paper_config,
)


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sample."""
    ordered = sorted(values)
    rank = max(1, min(len(ordered), round(q * len(ordered) + 0.5)))
    return ordered[int(rank) - 1]


def _latency_summary(values: Sequence[float]) -> Dict[str, float]:
    return {
        "mean_ms": sum(values) / len(values),
        "p50_ms": _percentile(values, 0.50),
        "p95_ms": _percentile(values, 0.95),
    }


def serve_report(
    num_snps: int = 500,
    num_studies: int = 8,
    num_members: int = 3,
    *,
    pool_size: int = 1,
    max_active: int = 1,
    max_concurrent_rounds: int = 2,
) -> Dict[str, Any]:
    """Run the cold and warm passes and assemble the JSON document.

    The service defaults to one slot and one active study so the warm
    steady state is measured sequentially — the same schedule as the
    cold baseline, with provisioning amortized away as the only
    difference.
    """
    cohort, _truth = paper_cohort(PAPER_CASE_HALF, num_snps)
    configs = [
        paper_config(num_snps, study_id=f"serve-bench-{index}")
        for index in range(num_studies)
    ]

    # -- cold baseline: provision-per-study ---------------------------------
    cold_ms: List[float] = []
    cold_decisions: Dict[str, Dict[str, Any]] = {}
    for config in configs:
        begin = time.perf_counter()
        result = run_study(cohort, config, num_members)
        cold_ms.append((time.perf_counter() - begin) * 1000.0)
        cold_decisions[config.study_id] = study_decisions(result)

    # -- warm pass: one service, one provisioning per slot ------------------
    service_config = ServiceConfig(
        num_members=num_members,
        pool_size=pool_size,
        max_active=max_active,
        queue_limit=num_studies,
        max_concurrent_rounds=max_concurrent_rounds,
        service_id="bench-serve",
    )
    sessions: List[Dict[str, Any]] = []
    mismatches: List[str] = []
    batch_begin = time.perf_counter()
    with FederationService(service_config) as service:
        for config in configs:
            service.submit(cohort, replace(config))
        for config in configs:
            result = service.result(config.study_id, timeout=600.0)
            status = service.status(config.study_id)
            sessions.append(
                {
                    "study_id": config.study_id,
                    "warm": status["warm"],
                    "wait_ms": status["wait_seconds"] * 1000.0,
                    "run_ms": status["run_seconds"] * 1000.0,
                    "submit_to_result_ms": status["total_seconds"] * 1000.0,
                    "rounds": status["rounds"],
                }
            )
            if study_decisions(result) != cold_decisions[config.study_id]:
                mismatches.append(config.study_id)
        metrics = service.metrics()
    batch_wall_ms = (time.perf_counter() - batch_begin) * 1000.0

    warm_run_ms = [s["run_ms"] for s in sessions if s["warm"]]
    cold_service_run_ms = [s["run_ms"] for s in sessions if not s["warm"]]
    cold_mean = sum(cold_ms) / len(cold_ms)
    warm_mean = (
        sum(warm_run_ms) / len(warm_run_ms) if warm_run_ms else float("inf")
    )
    return {
        "benchmark": "serve",
        "snps": num_snps,
        "studies": num_studies,
        "members": num_members,
        "scale": bench_scale(),
        "cpu_count": os.cpu_count(),
        "cold": {
            "per_study_ms": cold_ms,
            **_latency_summary(cold_ms),
        },
        "service": {
            "pool_size": pool_size,
            "max_active": max_active,
            "max_concurrent_rounds": max_concurrent_rounds,
            "sessions": sessions,
            "batch_wall_ms": batch_wall_ms,
            "throughput_per_s": (
                num_studies / (batch_wall_ms / 1000.0)
                if batch_wall_ms > 0
                else 0.0
            ),
            "submit_to_result": _latency_summary(
                [s["submit_to_result_ms"] for s in sessions]
            ),
            "warm_run": (
                _latency_summary(warm_run_ms) if warm_run_ms else None
            ),
            "cold_run_mean_ms": (
                sum(cold_service_run_ms) / len(cold_service_run_ms)
                if cold_service_run_ms
                else None
            ),
            "metrics": metrics,
        },
        "amortization": {
            "cold_solo_mean_ms": cold_mean,
            "warm_steady_state_mean_ms": warm_mean,
            # How much of a cold study's wall the warm path saves.
            "ratio": warm_mean / cold_mean if cold_mean > 0 else 0.0,
            "amortized": warm_mean < cold_mean,
        },
        "equivalent": not mismatches,
        "mismatched_studies": mismatches,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Warm-pool service benchmark (cold run_study vs "
        "warm FederationService)"
    )
    parser.add_argument(
        "--out", default="BENCH_serve.json", help="output JSON path"
    )
    parser.add_argument("--snps", type=int, default=500)
    parser.add_argument("--studies", type=int, default=8)
    parser.add_argument("--members", type=int, default=3)
    parser.add_argument("--pool-size", type=int, default=1)
    parser.add_argument("--max-active", type=int, default=1)
    parser.add_argument("--max-rounds", type=int, default=2)
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="population scale override (else REPRO_BENCH_SCALE)",
    )
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
        clear_cohort_cache()
    report = serve_report(
        args.snps,
        args.studies,
        args.members,
        pool_size=args.pool_size,
        max_active=args.max_active,
        max_concurrent_rounds=args.max_rounds,
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    amortization = report["amortization"]
    print(
        f"{report['studies']} studies x {report['snps']} SNPs: "
        f"cold {amortization['cold_solo_mean_ms']:.1f} ms/study, "
        f"warm steady state "
        f"{amortization['warm_steady_state_mean_ms']:.1f} ms/study "
        f"({amortization['ratio']:.2f}x), "
        f"p95 submit-to-result "
        f"{report['service']['submit_to_result']['p95_ms']:.1f} ms"
    )
    if not report["equivalent"]:
        print(
            "EQUIVALENCE FAILURE: service disagrees with run_study on "
            + ", ".join(report["mismatched_studies"])
        )
        return 1
    if not amortization["amortized"]:
        print(
            "AMORTIZATION FAILURE: warm steady state is not below the "
            "cold per-study latency"
        )
        return 1
    print(f"report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
