"""The configurable taint model: sources, sinks, sanitizers.

The model is the policy half of the flow analysis — *which* calls mint
secrets, *where* they are allowed to go, and *what* counts as a leak.
The embedded defaults encode the reproduction's actual trust boundary;
``lint.toml``'s ``[lint.flow]`` tables extend or override them so a
deployment can reshape the boundary without touching code.

Pattern syntax: a pattern is a dotted name, matched against both the
import-resolved call name at the call site (``sealing.unseal`` →
``repro.tee.sealing.unseal``) and the resolved target's qualified name
from the call graph (``reader.column`` →
``repro.tee.storage.ColumnReader.column``).  A trailing ``*`` makes the
pattern a prefix match (``logging.*``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from ...errors import LintConfigError

#: Taint labels for values whose secrecy the analysis tracks.  Concrete
#: kinds; the propagator additionally uses symbolic ``param:<i>`` labels
#: inside function summaries.
SECRET_KINDS: Tuple[str, ...] = (
    "genotype",
    "phenotype",
    "key",
    "sealed",
    "partial",
)

#: Default sources: calls whose *result* is secret.
DEFAULT_SOURCES: Dict[str, str] = {
    # Genotype column reads out of the sealed store (the enclave's
    # streaming view of the raw genome matrix).
    "repro.tee.storage.ColumnReader.column": "genotype",
    "repro.tee.storage.ColumnReader.columns": "genotype",
    "repro.tee.storage.ColumnReader.column_sums": "genotype",
    "repro.tee.storage.ColumnReader.iter_chunks": "genotype",
    # Phenotype-bearing genome accessors (case/control panels).
    "repro.genomics.genotype.GenotypeMatrix.array": "phenotype",
    "repro.genomics.genotype.GenotypeMatrix.row": "phenotype",
    "repro.genomics.genotype.GenotypeMatrix.allele_counts": "phenotype",
    # Sealed-store loads: plaintext of anything persisted via sealing.
    "repro.tee.sealing.unseal": "sealed",
    # Key material: DH shared secrets, KDF outputs, sealing keys and
    # the seeded DRBG's raw key stream.
    "repro.crypto.dh.shared_secret": "key",
    "repro.crypto.dh.derive_channel_key": "key",
    "repro.crypto.kdf.hkdf": "key",
    "repro.crypto.kdf.hkdf_extract": "key",
    "repro.crypto.kdf.hkdf_expand": "key",
    "repro.crypto.kdf.derive_subkey": "key",
    "repro.tee.enclave.Enclave._sealing_key": "key",
    # Decrypted protocol payloads (peer partials inside the enclave)
    # and shard leaf partials.  ``ChannelEndpoint.open`` is a source
    # rather than a summary substitution so its result carries the
    # *payload* kind, not the key material used to decrypt it.
    "repro.tee.channel.ChannelEndpoint.open": "partial",
    "repro.core.enclave_logic.GenDPREnclave._open": "partial",
    "repro.core.enclave_logic.GenDPREnclave._shard_leaf": "partial",
}

#: Default sanctioned sinks: tainted arguments may flow here, and the
#: result (ciphertext / sealed blob) is clean.
DEFAULT_SANCTIONED: Tuple[str, ...] = (
    "repro.tee.channel.ChannelEndpoint.protect",
    "repro.tee.sealing.seal",
    "repro.tee.storage.seal_matrix",
    "repro.core.enclave_logic.GenDPREnclave._protect",
    "repro.crypto.authenticated.StreamAead.encrypt",
    "repro.crypto.authenticated.AesCtrHmacAead.encrypt",
    "repro.crypto.authenticated._EncryptThenMac.encrypt",
    # An HMAC-SHA256 tag is publishable by design (that is its whole
    # job: it travels over the untrusted wire next to the message), so
    # the key taint of the signer does not survive into the tag — same
    # status as the AEAD encrypt outputs above, which embed their MACs.
    "repro.crypto.signing.MacSigner.sign",
    "repro.crypto.signing.MacSigner._mac",
)

#: Default leak sinks: a tainted argument reaching one of these calls is
#: an R6 finding.  Values are the sink labels used in messages.
DEFAULT_LEAK_SINKS: Dict[str, str] = {
    "print": "stdout",
    "logging.*": "logging",
    "repro.obs.metrics.Counter.inc": "metrics",
    "repro.obs.metrics.Gauge.set": "metrics",
    "repro.obs.metrics.Histogram.observe": "metrics",
    "repro.obs.tracer.Tracer.event": "tracer",
    "repro.obs.tracer._SpanHandle.annotate": "tracer",
    "repro.obs.report.RunReport": "report",
    "repro.net.network.SimulatedNetwork.send": "wire",
    "repro.net.network.ScopedNetwork.send": "wire",
    "repro.net.message.Envelope": "wire",
    "sys.stdout.write": "stdout",
    "sys.stderr.write": "stdout",
}

#: Default declassifiers: sanctioned sanitizers whose result is clean
#: but whose every call site must carry a ``# lint: declassify(<why>)``
#: marker (audited by R8).  These are the paper's release points: the
#: retained-SNP set after each filtering phase and the leader's final
#: release statistics are *outputs* of the protocol, published by
#: design.
DEFAULT_DECLASSIFIERS: Tuple[str, ...] = (
    "repro.core.enclave_logic.GenDPREnclave.lead_run_maf",
    "repro.core.enclave_logic.GenDPREnclave.lead_run_ld",
    "repro.core.enclave_logic.GenDPREnclave.lead_run_lr",
    "repro.core.enclave_logic.GenDPREnclave.received_retained",
    "repro.core.enclave_logic.GenDPREnclave.lead_combo_outcomes",
    "repro.core.enclave_logic.GenDPREnclave.lead_plain_safe",
    "repro.core.enclave_logic.GenDPREnclave.lead_release_power",
    "repro.core.enclave_logic.GenDPREnclave.lead_release_statistics",
)

#: Calls that never propagate taint and are never sinks: size/shape
#: probes and type checks.
DEFAULT_CLEAN_CALLS: Tuple[str, ...] = (
    "len",
    "range",
    "isinstance",
    "issubclass",
    "type",
    "bool",
    "hash",
)

#: Attribute reads that yield size/shape *metadata*, not content; they
#: do not propagate the base object's taint (chunk.nbytes feeding the
#: resource meter is the canonical example — Table 3's footprints).
DEFAULT_METADATA_ATTRS: Tuple[str, ...] = (
    "shape",
    "ndim",
    "size",
    "nbytes",
    "dtype",
    "itemsize",
    "num_rows",
    "num_cols",
    "wire_size",
    "sealed_bytes",
    "chunk_width",
)

#: String-dispatch boundary calls: ``enclave.ecall("name", args...)``.
#: A literal first argument resolves the call to the so-named method.
DEFAULT_DISPATCHERS: Tuple[str, ...] = (
    "repro.tee.enclave.Enclave.ecall",
    "ecall",
)

#: Enclave-scope functions allowed to return tainted data to callers
#: outside the boundary (the declared ECALL result paths); everything
#: else is an R7 finding.  Declassifier calls are implicitly allowed.
#: ``ingest_retained`` echoes back the leader's broadcast retained-SNP
#: set, which is a published protocol output by design.
DEFAULT_ECALL_RESULTS: Tuple[str, ...] = (
    "repro.core.enclave_logic.GenDPREnclave.ingest_retained",
)


def _match_one(name: str, pattern: str) -> bool:
    if pattern.endswith("*"):
        return name.startswith(pattern[:-1])
    return name == pattern


@dataclass(frozen=True)
class TaintModel:
    """Fully-resolved source/sink/sanitizer policy for one flow run."""

    sources: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_SOURCES)
    )
    sanctioned: Tuple[str, ...] = DEFAULT_SANCTIONED
    leak_sinks: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_LEAK_SINKS)
    )
    declassifiers: Tuple[str, ...] = DEFAULT_DECLASSIFIERS
    clean_calls: Tuple[str, ...] = DEFAULT_CLEAN_CALLS
    metadata_attrs: Tuple[str, ...] = DEFAULT_METADATA_ATTRS
    dispatchers: Tuple[str, ...] = DEFAULT_DISPATCHERS
    ecall_results: Tuple[str, ...] = DEFAULT_ECALL_RESULTS
    #: Scope name that marks the trust boundary for R7.
    boundary_scope: str = "enclave"
    #: Treat tainted exception-constructor arguments as a leak sink.
    exception_sink: bool = True

    # -- pattern matching ----------------------------------------------------

    def source_kind(self, names: Iterable[str]) -> Optional[str]:
        for name in names:
            for pattern, kind in self.sources.items():
                if _match_one(name, pattern):
                    return kind
        return None

    def is_sanctioned(self, names: Iterable[str]) -> bool:
        return self._any(names, self.sanctioned)

    def leak_label(self, names: Iterable[str]) -> Optional[str]:
        for name in names:
            for pattern, label in self.leak_sinks.items():
                if _match_one(name, pattern):
                    return label
        return None

    def is_declassifier(self, names: Iterable[str]) -> bool:
        return self._any(names, self.declassifiers)

    def is_clean_call(self, names: Iterable[str]) -> bool:
        return self._any(names, self.clean_calls)

    def is_dispatcher(self, names: Iterable[str]) -> bool:
        return self._any(names, self.dispatchers)

    def is_declared_ecall_result(self, qualname: str) -> bool:
        return self._any((qualname,), self.ecall_results)

    def is_metadata_attr(self, attr: str) -> bool:
        return attr in self.metadata_attrs

    @staticmethod
    def _any(names: Iterable[str], patterns: Tuple[str, ...]) -> bool:
        for name in names:
            for pattern in patterns:
                if _match_one(name, pattern):
                    return True
        return False

    def cache_key(self) -> Tuple[Any, ...]:
        """Hashable identity, so analyses memoize per model."""
        return (
            tuple(sorted(self.sources.items())),
            self.sanctioned,
            tuple(sorted(self.leak_sinks.items())),
            self.declassifiers,
            self.clean_calls,
            self.metadata_attrs,
            self.dispatchers,
            self.ecall_results,
            self.boundary_scope,
            self.exception_sink,
        )

    # -- configuration -------------------------------------------------------

    @classmethod
    def from_config(cls, raw: Mapping[str, Any]) -> "TaintModel":
        """Build a model from a ``[lint.flow]`` table.

        Mapping-valued tables (``sources``, ``leak_sinks``) and list
        options *extend* the embedded defaults; ``replace = true``
        inside the section drops the defaults first.
        """
        replace = bool(raw.get("replace", False))

        def table(key: str, defaults: Mapping[str, str]) -> Dict[str, str]:
            merged = {} if replace else dict(defaults)
            extra = raw.get(key, {})
            if not isinstance(extra, dict):
                raise LintConfigError(f"[lint.flow].{key} must be a table")
            for pattern, value in extra.items():
                if not isinstance(value, str):
                    raise LintConfigError(
                        f"[lint.flow].{key}.{pattern} must be a string"
                    )
                merged[str(pattern)] = value
            return merged

        def strings(key: str, defaults: Tuple[str, ...]) -> Tuple[str, ...]:
            extra = raw.get(key, [])
            if not isinstance(extra, list) or not all(
                isinstance(item, str) for item in extra
            ):
                raise LintConfigError(
                    f"[lint.flow].{key} must be a list of strings"
                )
            base = () if replace else defaults
            return tuple(dict.fromkeys((*base, *extra)))

        return cls(
            sources=table("sources", DEFAULT_SOURCES),
            sanctioned=strings("sanctioned", DEFAULT_SANCTIONED),
            leak_sinks=table("leak_sinks", DEFAULT_LEAK_SINKS),
            declassifiers=strings("declassifiers", DEFAULT_DECLASSIFIERS),
            clean_calls=strings("clean_calls", DEFAULT_CLEAN_CALLS),
            metadata_attrs=strings("metadata_attrs", DEFAULT_METADATA_ATTRS),
            dispatchers=strings("dispatchers", DEFAULT_DISPATCHERS),
            ecall_results=strings("ecall_results", DEFAULT_ECALL_RESULTS),
            boundary_scope=str(raw.get("boundary_scope", "enclave")),
            exception_sink=bool(raw.get("exception_sink", True)),
        )
