"""Canonical binary serialization for protocol payloads.

The secure channels carry bytes; this codec turns the protocol's values
(ints, floats, strings, bytes, lists, dicts, numpy arrays) into a
deterministic tagged binary form.  Determinism matters twice over:

* the same logical payload always produces the same bytes, so message
  sizes are reproducible for the bandwidth accounting in Table 3, and
* signed/authenticated payloads verify regardless of dict insertion
  order (dict keys are sorted).

The format is self-describing (one tag byte per value, big-endian length
prefixes) and intentionally small — no external schema machinery.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from ..errors import SerializationError

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"
_TAG_ARRAY = b"a"

_MAX_DEPTH = 64


def _encode_length(value: int) -> bytes:
    return struct.pack(">Q", value)


def _encode_into(value: Any, out: list, depth: int) -> None:
    if depth > _MAX_DEPTH:
        raise SerializationError("value nesting exceeds maximum depth")
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, (int, np.integer)):
        raw = int(value).to_bytes(
            max(1, (int(value).bit_length() + 8) // 8), "big", signed=True
        )
        out.append(_TAG_INT + _encode_length(len(raw)) + raw)
    elif isinstance(value, (float, np.floating)):
        out.append(_TAG_FLOAT + struct.pack(">d", float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR + _encode_length(len(raw)) + raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_TAG_BYTES + _encode_length(len(raw)) + raw)
    elif isinstance(value, np.ndarray):
        dtype_name = value.dtype.str.encode("ascii")
        contiguous = np.ascontiguousarray(value)
        # ascontiguousarray promotes 0-d to 1-d; keep the true shape.
        shape = value.shape
        header = (
            _encode_length(len(dtype_name))
            + dtype_name
            + _encode_length(len(shape))
            + b"".join(_encode_length(dim) for dim in shape)
        )
        out.append(_TAG_ARRAY + header + _encode_length(contiguous.nbytes))
        if contiguous.nbytes:
            # A memoryview over the array's buffer: ``bytes.join`` reads
            # it directly, so the payload is copied once (into the final
            # frame) instead of twice via an intermediate ``tobytes()``.
            out.append(memoryview(contiguous).cast("B"))
    elif isinstance(value, (list, tuple)):
        tag = _TAG_LIST if isinstance(value, list) else _TAG_TUPLE
        out.append(tag + _encode_length(len(value)))
        for item in value:
            _encode_into(item, out, depth + 1)
    elif isinstance(value, dict):
        try:
            items = sorted(value.items(), key=lambda kv: kv[0])
        except TypeError as exc:
            raise SerializationError("dict keys must be sortable") from exc
        out.append(_TAG_DICT + _encode_length(len(items)))
        for key, item in items:
            if not isinstance(key, str):
                raise SerializationError("dict keys must be strings")
            _encode_into(key, out, depth + 1)
            _encode_into(item, out, depth + 1)
    else:
        raise SerializationError(f"cannot serialize {type(value).__name__}")


def encode(value: Any) -> bytes:
    """Serialize ``value`` to canonical bytes."""
    out: list = []
    _encode_into(value, out, 0)
    return b"".join(out)


class _Reader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def take(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise SerializationError("truncated payload")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def take_array(self, dtype: np.dtype, count: int, nbytes: int) -> np.ndarray:
        """A zero-copy (read-only) array view over the next ``nbytes``."""
        if self._pos + nbytes > len(self._data):
            raise SerializationError("truncated payload")
        array = np.frombuffer(self._data, dtype=dtype, count=count, offset=self._pos)
        self._pos += nbytes
        return array

    def length(self) -> int:
        return struct.unpack(">Q", self.take(8))[0]

    def done(self) -> bool:
        return self._pos == len(self._data)


def _decode_from(reader: _Reader, depth: int) -> Any:
    if depth > _MAX_DEPTH:
        raise SerializationError("payload nesting exceeds maximum depth")
    tag = reader.take(1)
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_INT:
        raw = reader.take(reader.length())
        return int.from_bytes(raw, "big", signed=True)
    if tag == _TAG_FLOAT:
        return struct.unpack(">d", reader.take(8))[0]
    if tag == _TAG_STR:
        return reader.take(reader.length()).decode("utf-8")
    if tag == _TAG_BYTES:
        return reader.take(reader.length())
    if tag == _TAG_ARRAY:
        dtype_name = reader.take(reader.length()).decode("ascii")
        ndim = reader.length()
        if ndim > 32:
            raise SerializationError("array has too many dimensions")
        shape = tuple(reader.length() for _ in range(ndim))
        nbytes = reader.length()
        try:
            dtype = np.dtype(dtype_name)
        except (TypeError, ValueError) as exc:
            raise SerializationError(f"bad array dtype {dtype_name!r}") from exc
        expected = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if dtype.itemsize == 0 or nbytes != expected * dtype.itemsize:
            raise SerializationError("array payload size does not match shape")
        # Zero-copy fast path: the array is a read-only view over the
        # input buffer (numpy handles unaligned offsets transparently).
        return reader.take_array(dtype, expected, nbytes).reshape(shape)
    if tag in (_TAG_LIST, _TAG_TUPLE):
        count = reader.length()
        items = [_decode_from(reader, depth + 1) for _ in range(count)]
        return items if tag == _TAG_LIST else tuple(items)
    if tag == _TAG_DICT:
        count = reader.length()
        result = {}
        for _ in range(count):
            key = _decode_from(reader, depth + 1)
            if not isinstance(key, str):
                raise SerializationError("dict keys must decode to strings")
            result[key] = _decode_from(reader, depth + 1)
        return result
    raise SerializationError(f"unknown tag {tag!r}")


def decode(data: bytes) -> Any:
    """Deserialize bytes produced by :func:`encode`.

    Any malformed input — including adversarial bytes that were never
    produced by :func:`encode` — raises :class:`SerializationError`;
    no other exception type escapes.

    Decoded numpy arrays are **read-only views** over ``data`` (no copy
    on the hot path); callers that need to mutate one must copy it.
    """
    reader = _Reader(data)
    try:
        value = _decode_from(reader, 0)
    except SerializationError:
        raise
    except (UnicodeDecodeError, ValueError, OverflowError, MemoryError) as exc:
        raise SerializationError(f"malformed payload: {exc}") from exc
    if not reader.done():
        raise SerializationError("trailing bytes after payload")
    return value


def encoded_size(value: Any) -> int:
    """Size in bytes of ``value``'s canonical encoding."""
    return len(encode(value))
