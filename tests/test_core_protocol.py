"""End-to-end GenDPR protocol: the paper's headline properties."""

from __future__ import annotations

import pytest

from repro import StudyConfig, run_study
from repro.core.baseline import run_centralized_study
from repro.core.pipeline import run_local_pipeline
from repro.core.timing import ALL_LABELS
from repro.errors import ProtocolError


class TestHeadlineEquivalence:
    def test_matches_centralized_oracle(self, small_cohort, study_config, study_result):
        """GenDPR == pure-function SecureGenome over the pooled genomes."""
        oracle = run_local_pipeline(
            small_cohort.case.array(),
            small_cohort.reference.array(),
            maf_cutoff=study_config.thresholds.maf_cutoff,
            ld_cutoff=study_config.thresholds.ld_cutoff,
            alpha=study_config.thresholds.false_positive_rate,
            beta=study_config.thresholds.power_threshold,
        )
        assert study_result.l_prime == oracle.l_prime
        assert study_result.l_double_prime == oracle.l_double_prime
        assert study_result.l_safe == oracle.l_safe

    def test_matches_centralized_baseline_system(
        self, small_cohort, study_config, study_result
    ):
        """GenDPR == the full centralized TEE deployment (Table 4)."""
        central = run_centralized_study(small_cohort, study_config, 3)
        assert study_result.l_prime == central.l_prime
        assert study_result.l_double_prime == central.l_double_prime
        assert study_result.l_safe == central.l_safe

    def test_monotone_pipeline(self, study_result):
        assert set(study_result.l_safe) <= set(study_result.l_double_prime)
        assert set(study_result.l_double_prime) <= set(study_result.l_prime)
        assert len(study_result.l_prime) <= study_result.l_des

    def test_selection_nontrivial(self, study_result):
        # The phases actually do something on this cohort.
        assert 0 < study_result.retained_after_maf < study_result.l_des
        assert 0 < study_result.retained_after_ld < study_result.retained_after_maf
        assert study_result.retained_after_lr > 0


class TestInvariance:
    def test_partition_count_invariance(self, small_cohort, study_config, study_result):
        """The outcome does not depend on the number of GDOs."""
        for members in (2, 4):
            other = run_study(small_cohort, study_config, members)
            assert other.l_safe == study_result.l_safe
            assert other.l_prime == study_result.l_prime
            assert other.l_double_prime == study_result.l_double_prime

    def test_partition_shape_invariance(self, small_cohort, study_config, study_result):
        """Nor on which genomes land at which member."""
        shuffled = run_study(
            small_cohort, study_config, 3, shuffle_seed=99
        )
        assert shuffled.l_safe == study_result.l_safe

    def test_leader_invariance(self, small_cohort, study_config, study_result):
        """Nor on which member is elected leader."""
        leaders = {study_result.leader_id}
        for seed in (1, 2, 3):
            config = StudyConfig(
                snp_count=study_config.snp_count,
                thresholds=study_config.thresholds,
                seed=seed,
                study_id=f"leader-{seed}",
            )
            other = run_study(small_cohort, config, 3)
            leaders.add(other.leader_id)
            assert other.l_safe == study_result.l_safe
        assert len(leaders) > 1, "seeds should elect different leaders"

    def test_repeat_run_deterministic(self, small_cohort, study_config, study_result):
        again = run_study(small_cohort, study_config, 3)
        assert again.l_safe == study_result.l_safe
        assert again.leader_id == study_result.leader_id


class TestResultMetadata:
    def test_summary_and_counts(self, study_result):
        counts = study_result.phase_counts()
        assert counts["MAF"] == study_result.retained_after_maf
        assert "L_des" in study_result.summary()

    def test_timings_cover_all_tasks(self, study_result):
        for label in ALL_LABELS:
            assert study_result.timings.get(label) >= 0.0
        assert study_result.timings.total_seconds > 0.0
        ms = study_result.timings.as_milliseconds()
        assert ms["Total"] == pytest.approx(
            sum(ms[label] for label in ALL_LABELS)
        )

    def test_network_accounting_present(self, study_result):
        assert study_result.network_bytes > 0
        assert study_result.network_messages > 0

    def test_enclave_resources_present(self, study_result):
        assert len(study_result.enclave_peak_memory) == 3
        for peak in study_result.enclave_peak_memory.values():
            assert peak > 0
        for cpu in study_result.enclave_cpu_utilization.values():
            assert 0.0 <= cpu <= 1.0

    def test_release_power_below_threshold(self, study_result, study_config):
        assert (
            study_result.release_power
            < study_config.thresholds.power_threshold
        )

    def test_no_collusion_report_when_disabled(self, study_result):
        assert study_result.collusion is None

    def test_release_statistics(self, federation):
        from repro.core.protocol import GenDPRProtocol

        protocol = GenDPRProtocol(federation)
        stats = protocol.release_statistics()
        assert list(stats["snps"])  # non-empty release
        assert len(stats["chi2"]) == len(stats["snps"])
        assert all(0 <= p <= 1 for p in stats["pvalues"])


class TestErrorPaths:
    def test_config_cohort_mismatch(self, small_cohort):
        config = StudyConfig(snp_count=small_cohort.num_snps + 1)
        with pytest.raises(ProtocolError):
            run_study(small_cohort, config, 2)

    def test_single_member_federation_runs(self, small_cohort, study_config):
        result = run_study(small_cohort, study_config, 1)
        assert result.num_members == 1
        assert result.retained_after_lr > 0

    def test_genome_bandwidth_savings(self, small_cohort, study_config, study_result):
        """GenDPR must move far less than shipping every genome would."""
        central = run_centralized_study(small_cohort, study_config, 3)
        genome_bytes = small_cohort.case.nbytes
        assert central.network_bytes > genome_bytes  # genomes on the wire
        # GenDPR's traffic must not carry the genomes (it may exceed the
        # raw genome size at toy scale because LR matrices are float64;
        # the bench demonstrates the large-scale ratio).
        assert study_result.network_bytes < central.network_bytes * 10
