"""Deliberately unparsable fixture (engine must report, not crash)."""

def broken(:
    return 1
