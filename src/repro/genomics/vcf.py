"""Simplified VCF-style dataset files with authenticity signatures.

GenDPR's threat model assumes "the trusted part of GenDPR is able to
detect whether a federation member has tampered with the genome data
... (e.g., by checking the authenticity of signed VCF files)".  This
module provides that substrate: a small text format holding a SNP panel
and a binary genotype matrix, plus an HMAC signature envelope the
trusted module verifies before using any local dataset.

The format is deliberately a subset of VCF — tab-separated, one variant
per line, genotypes encoded 0/1 per sample under the paper's binary
minor-allele encoding — enough to round-trip the simulation's data while
staying human-inspectable.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..crypto.signing import MacSigner
from ..errors import AuthenticationError, DataIntegrityError, GenomicsError
from .genotype import GenotypeMatrix
from .snp import SnpInfo, SnpPanel

_HEADER = "##fileformat=REPRO-VCFv1"
_COLUMNS = ["#CHROM", "POS", "ID", "REF", "ALT"]


def write_vcf(panel: SnpPanel, genotypes: GenotypeMatrix) -> str:
    """Render a panel + genotype matrix as VCF text."""
    if genotypes.num_snps != len(panel):
        raise GenomicsError(
            f"matrix covers {genotypes.num_snps} SNPs, panel has {len(panel)}"
        )
    out = io.StringIO()
    out.write(_HEADER + "\n")
    out.write(f"##individuals={genotypes.num_individuals}\n")
    samples = [f"s{i}" for i in range(genotypes.num_individuals)]
    out.write("\t".join(_COLUMNS + samples) + "\n")
    data = genotypes.array()
    for index, snp in enumerate(panel):
        row = data[:, index]
        fields = [
            str(snp.chromosome),
            str(snp.position),
            snp.snp_id,
            snp.major_allele,
            snp.minor_allele,
        ]
        out.write("\t".join(fields))
        out.write("\t")
        out.write("\t".join("1" if value else "0" for value in row))
        out.write("\n")
    return out.getvalue()


def read_vcf(text: str) -> Tuple[SnpPanel, GenotypeMatrix]:
    """Parse VCF text back into a panel and genotype matrix."""
    lines = text.splitlines()
    if not lines or lines[0] != _HEADER:
        raise GenomicsError("missing REPRO-VCF header")
    body_start = 0
    num_individuals = None
    for i, line in enumerate(lines):
        if line.startswith("##individuals="):
            num_individuals = int(line.split("=", 1)[1])
        if line.startswith("#CHROM"):
            body_start = i + 1
            break
    else:
        raise GenomicsError("missing column header line")
    if num_individuals is None:
        raise GenomicsError("missing ##individuals header")

    snps = []
    columns = []
    for line_number, line in enumerate(lines[body_start:], start=body_start + 1):
        if not line.strip():
            continue
        fields = line.split("\t")
        if len(fields) != len(_COLUMNS) + num_individuals:
            raise GenomicsError(
                f"line {line_number}: expected "
                f"{len(_COLUMNS) + num_individuals} fields, got {len(fields)}"
            )
        chromosome, position, snp_id, ref, alt = fields[: len(_COLUMNS)]
        try:
            snps.append(
                SnpInfo(
                    snp_id=snp_id,
                    chromosome=int(chromosome),
                    position=int(position),
                    major_allele=ref,
                    minor_allele=alt,
                )
            )
        except ValueError as exc:
            raise GenomicsError(f"line {line_number}: bad variant field") from exc
        try:
            genotype_row = np.array(
                [int(v) for v in fields[len(_COLUMNS) :]], dtype=np.uint8
            )
        except ValueError as exc:
            raise GenomicsError(f"line {line_number}: bad genotype value") from exc
        columns.append(genotype_row)

    if not columns:
        raise GenomicsError("VCF contains no variants")
    matrix = GenotypeMatrix(np.stack(columns, axis=1))
    return SnpPanel(snps), matrix


@dataclass(frozen=True)
class SignedMatrix:
    """A signed binary genotype dataset (the VCF fast path).

    Text VCFs are convenient for interchange but cost seconds per
    million genotypes to render; federation provisioning at paper scale
    (10^8 genotypes) uses this binary container instead: the signature
    covers a header binding the dimensions plus the raw row-major
    matrix bytes, giving the same tamper-detection guarantee as
    :class:`SignedVcf`.
    """

    num_individuals: int
    num_snps: int
    raw: bytes
    signature: bytes

    def _message(self) -> bytes:
        return (
            b"repro.signed-matrix/v1\x00"
            + self.num_individuals.to_bytes(8, "big")
            + self.num_snps.to_bytes(8, "big")
            + self.raw
        )

    @classmethod
    def create(cls, genotypes: GenotypeMatrix, signer: MacSigner) -> "SignedMatrix":
        unsigned = cls(
            num_individuals=genotypes.num_individuals,
            num_snps=genotypes.num_snps,
            raw=genotypes.to_bytes(),
            signature=b"",
        )
        return cls(
            num_individuals=unsigned.num_individuals,
            num_snps=unsigned.num_snps,
            raw=unsigned.raw,
            signature=signer.sign(unsigned._message()),
        )

    def open_verified(self, signer: MacSigner) -> GenotypeMatrix:
        """Verify the signature, then decode the matrix.

        Raises :class:`DataIntegrityError` on any tampering with the
        bytes or the claimed dimensions.
        """
        if (
            self.num_individuals <= 0
            or self.num_snps <= 0
            or len(self.raw) != self.num_individuals * self.num_snps
        ):
            raise DataIntegrityError("signed matrix header is inconsistent")
        try:
            signer.verify(self._message(), self.signature)
        except AuthenticationError as exc:
            raise DataIntegrityError(
                "matrix signature verification failed: dataset was modified"
            ) from exc
        return GenotypeMatrix.from_bytes(self.raw, self.num_snps)


@dataclass(frozen=True)
class SignedVcf:
    """A VCF document with an authenticity signature."""

    text: str
    signature: bytes

    @classmethod
    def create(
        cls, panel: SnpPanel, genotypes: GenotypeMatrix, signer: MacSigner
    ) -> "SignedVcf":
        text = write_vcf(panel, genotypes)
        return cls(text=text, signature=signer.sign(text.encode("utf-8")))

    def open_verified(self, signer: MacSigner) -> Tuple[SnpPanel, GenotypeMatrix]:
        """Verify the signature, then parse.

        Raises :class:`DataIntegrityError` if the document was tampered
        with — the check GenDPR's trusted module performs before using a
        member's local data.
        """
        try:
            signer.verify(self.text.encode("utf-8"), self.signature)
        except AuthenticationError as exc:
            raise DataIntegrityError(
                "VCF signature verification failed: dataset was modified"
            ) from exc
        return read_vcf(self.text)
