"""Centralized and naive baselines."""

from __future__ import annotations

import pytest

from repro import StudyConfig, partition_cohort
from repro.core.baseline import CentralizedVerifier, run_centralized_study
from repro.core.naive import naive_traffic_bytes, run_naive_study
from repro.core.pipeline import run_local_pipeline
from repro.errors import ProtocolError


class TestCentralized:
    def test_matches_oracle(self, small_cohort, study_config):
        result = run_centralized_study(small_cohort, study_config, 3)
        oracle = run_local_pipeline(
            small_cohort.case.array(),
            small_cohort.reference.array(),
            maf_cutoff=study_config.thresholds.maf_cutoff,
            ld_cutoff=study_config.thresholds.ld_cutoff,
            alpha=study_config.thresholds.false_positive_rate,
            beta=study_config.thresholds.power_threshold,
        )
        assert result.l_prime == oracle.l_prime
        assert result.l_double_prime == oracle.l_double_prime
        assert result.l_safe == oracle.l_safe

    def test_member_count_does_not_change_outcome(self, small_cohort, study_config):
        two = run_centralized_study(small_cohort, study_config, 2)
        five = run_centralized_study(small_cohort, study_config, 5)
        assert two.l_safe == five.l_safe

    def test_ships_genomes(self, small_cohort, study_config):
        """The centralized design's cost: genome-scale network traffic."""
        result = run_centralized_study(small_cohort, study_config, 3)
        assert result.network_bytes >= small_cohort.case.nbytes

    def test_center_memory_holds_pool(self, small_cohort, study_config):
        result = run_centralized_study(small_cohort, study_config, 3)
        assert (
            result.enclave_peak_memory["center"]
            >= small_cohort.case.nbytes + small_cohort.reference.nbytes
        )

    def test_audit_log_records_genome_export(self, small_cohort, study_config):
        verifier = CentralizedVerifier(
            study_config, partition_cohort(small_cohort, 2), small_cohort
        )
        verifier.run()
        for member in verifier.members.values():
            log = member.ecall("export_audit_log")
            assert any(
                entry["kind"] == "genomes" and entry["genotype_rows"] > 0
                for entry in log
            )

    def test_empty_federation_rejected(self, small_cohort, study_config):
        with pytest.raises(ProtocolError):
            CentralizedVerifier(study_config, [], small_cohort)

    def test_phase_order_enforced(self, small_cohort, study_config):
        verifier = CentralizedVerifier(
            study_config, partition_cohort(small_cohort, 2), small_cohort
        )
        from repro.errors import PhaseOrderError

        with pytest.raises(PhaseOrderError):
            verifier.center.ecall("run_phase", "maf")  # genomes not pooled


class TestNaive:
    def test_phase_counts_shrink(self, small_cohort, study_config, datasets):
        result = run_naive_study(small_cohort, study_config, datasets)
        counts = result.phase_counts()
        assert counts["MAF"] >= counts["LD"] >= 0

    def test_diverges_from_global_pipeline(
        self, small_cohort, study_config, datasets, study_result
    ):
        """The paper's Table 4 bold rows: naive under-selects in LD/LR."""
        naive = run_naive_study(small_cohort, study_config, datasets)
        assert naive.phase_counts()["LD"] < study_result.retained_after_ld

    def test_local_selections_recorded(self, small_cohort, study_config, datasets):
        result = run_naive_study(small_cohort, study_config, datasets)
        assert set(result.local_prime) == {d.gdo_id for d in datasets}
        # The intersection is a subset of every local selection.
        for local in result.local_double_prime.values():
            assert set(result.l_double_prime) <= set(local)

    def test_single_member_naive_equals_global(self, small_cohort, study_config):
        """With one member the 'local' dataset is the full cohort."""
        datasets = partition_cohort(small_cohort, 1)
        naive = run_naive_study(small_cohort, study_config, datasets)
        oracle = run_local_pipeline(
            small_cohort.case.array(),
            small_cohort.reference.array(),
            maf_cutoff=study_config.thresholds.maf_cutoff,
            ld_cutoff=study_config.thresholds.ld_cutoff,
            alpha=study_config.thresholds.false_positive_rate,
            beta=study_config.thresholds.power_threshold,
        )
        assert naive.l_safe == oracle.l_safe

    def test_traffic_estimate(self, small_cohort, study_config, datasets):
        result = run_naive_study(small_cohort, study_config, datasets)
        traffic = naive_traffic_bytes(result, len(datasets))
        assert traffic > 0
        # Index vectors are tiny compared to genomes.
        assert traffic < small_cohort.case.nbytes

    def test_validation(self, small_cohort, study_config):
        with pytest.raises(ProtocolError):
            run_naive_study(small_cohort, study_config, [])
        bad_config = StudyConfig(snp_count=small_cohort.num_snps + 5)
        with pytest.raises(ProtocolError):
            run_naive_study(
                small_cohort, bad_config, partition_cohort(small_cohort, 2)
            )
