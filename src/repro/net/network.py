"""In-process simulated network.

Federation members run on one machine in this reproduction, so the
"network" is a synchronous message router with:

* per-node FIFO inboxes,
* per-link byte/message accounting (feeding the bandwidth analysis of
  Section 7.1),
* a simulated clock advanced by a configurable latency/bandwidth profile
  (:class:`~repro.config.NetworkProfile`), and
* optional fault injection — dropping a node models the paper's
  non-responsive members, for which GenDPR makes no liveness guarantee.

Delivery is reliable and ordered per link, matching the TLS-like
transport an SGX deployment would use between sites.

The router is thread-safe: the parallel execution engine
(:mod:`repro.core.protocol`) sends and receives from worker threads
concurrently.  Each inbox has its own lock (senders to different
receivers never contend) and link/clock accounting updates atomically
under a shared stats lock.
"""

from __future__ import annotations

import itertools
import threading
from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..config import NetworkProfile
from ..errors import NetworkError, UnknownPeerError
from ..obs.tracer import TRACER
from .message import Envelope, LinkStats

#: Separator between a scope namespace and a logical node id in the
#: physical registry.  Plain registrations may not contain it, so a
#: namespaced node can never be spoofed from outside its scope.
NAMESPACE_SEPARATOR = "//"


class SimulatedNetwork:
    """Synchronous router with traffic accounting and fault injection."""

    def __init__(self, profile: Optional[NetworkProfile] = None):
        self._profile = profile or NetworkProfile()
        self._inboxes: Dict[str, Deque[Envelope]] = {}
        self._inbox_locks: Dict[str, threading.Lock] = {}
        self._links: Dict[Tuple[str, str], LinkStats] = defaultdict(LinkStats)
        self._partitioned: set[str] = set()
        self._simulated_time = 0.0
        self._namespaces: set[str] = set()
        #: Guards topology (registration/partitions) and the link/clock
        #: accounting; per-inbox delivery uses the per-node locks.
        self._stats_lock = threading.Lock()
        #: Optional :class:`~repro.faults.FaultInjector` mediating
        #: deliveries; ``None`` (the default) keeps sends on the direct
        #: inbox-append path with zero added work.
        self._fault_injector = None

    # -- Topology ---------------------------------------------------------------

    def register(self, node_id: str) -> None:
        """Attach a node; duplicate registration is an error (typo guard)."""
        if not node_id:
            raise NetworkError("node_id must be non-empty")
        if NAMESPACE_SEPARATOR in node_id:
            raise NetworkError(
                f"node id {node_id!r} contains the reserved namespace "
                f"separator {NAMESPACE_SEPARATOR!r}; register through a "
                f"scope instead"
            )
        self._register_physical(node_id)

    def _register_physical(self, node_id: str) -> None:
        with self._stats_lock:
            if node_id in self._inboxes:
                raise NetworkError(f"node {node_id!r} already registered")
            self._inboxes[node_id] = deque()
            self._inbox_locks[node_id] = threading.Lock()

    def nodes(self) -> List[str]:
        return sorted(self._inboxes)

    def partition(self, node_id: str) -> None:
        """Cut a node off: its sends and receives start failing."""
        self._require_known(node_id)
        with self._stats_lock:
            self._partitioned.add(node_id)

    def heal(self, node_id: str) -> None:
        """Reconnect a previously partitioned node."""
        self._require_known(node_id)
        with self._stats_lock:
            self._partitioned.discard(node_id)

    def _require_known(self, node_id: str) -> None:
        if node_id not in self._inboxes:
            raise UnknownPeerError(f"unknown node {node_id!r}")

    def _require_connected(self, node_id: str) -> None:
        self._require_known(node_id)
        if node_id in self._partitioned:
            raise NetworkError(f"node {node_id!r} is partitioned")

    # -- Fault injection ---------------------------------------------------------

    def install_fault_injector(self, injector) -> None:
        """Route every send through a :class:`~repro.faults.FaultInjector`.

        Chaos runs only; without this call the delivery path is exactly
        the pre-injection fast path.
        """
        self._fault_injector = injector
        injector.attach(self)

    def uninstall_fault_injector(self) -> None:
        """Restore the direct delivery path (between reused studies)."""
        self._fault_injector = None

    def _deliver(self, envelope: Envelope) -> None:
        """Append to the receiver's inbox (fault-injector delivery hook)."""
        self._deliver_to(envelope.receiver, envelope)

    def _deliver_to(self, inbox_id: str, envelope: Envelope) -> None:
        """Append to a named inbox (scopes deliver logical envelopes
        into physically-keyed inboxes, so the two ids can differ)."""
        with self._inbox_locks[inbox_id]:
            self._inboxes[inbox_id].append(envelope)

    def advance_clock(self, seconds: float) -> float:
        """Advance the simulated clock (retry backoff); returns new time."""
        if seconds < 0:
            raise NetworkError("cannot advance the clock backwards")
        with self._stats_lock:
            self._simulated_time += seconds
            return self._simulated_time

    def flush(self, node_id: str) -> int:
        """Discard every pending inbox message of a node.

        Used by the protocol supervisor when a failover re-runs a phase:
        stragglers from the aborted attempt must not pollute the retry.
        Returns the number of messages discarded.
        """
        self._require_known(node_id)
        with self._inbox_locks[node_id]:
            flushed = len(self._inboxes[node_id])
            self._inboxes[node_id].clear()
        return flushed

    # -- Messaging ---------------------------------------------------------------

    def send(self, envelope: Envelope) -> None:
        """Deliver one envelope, advancing the simulated clock."""
        advance, sim_time = self._account_send(
            envelope.sender, envelope.receiver, envelope
        )
        if self._fault_injector is not None:
            self._fault_injector.on_send(envelope)
        else:
            self._deliver_to(envelope.receiver, envelope)
        if TRACER.enabled and TRACER.capture_messages:
            TRACER.event(
                "net.send",
                sender=envelope.sender,
                receiver=envelope.receiver,
                tag=envelope.tag,
                wire_bytes=envelope.size(),
                clock_advance_s=advance,
                sim_time_s=sim_time,
            )

    def _account_send(
        self, link_sender: str, link_receiver: str, envelope: Envelope
    ) -> Tuple[float, float]:
        """Validate one send and charge its traffic to a link.

        Shared by the direct path and :class:`ScopedNetwork` (which
        charges a logical envelope to a physically-keyed link).  Returns
        ``(clock_advance, new_simulated_time)``.
        """
        self._require_connected(link_sender)
        self._require_connected(link_receiver)
        if link_sender == link_receiver:
            raise NetworkError("a node cannot message itself over the network")
        advance = self._profile.transfer_time(envelope.size())
        with self._stats_lock:
            self._links[(link_sender, link_receiver)].record(envelope)
            self._simulated_time += advance
            sim_time = self._simulated_time
        return advance, sim_time

    def broadcast(
        self, sender: str, receivers: Iterable[str], tag: str, body: bytes
    ) -> int:
        """Send the same body to each receiver; returns envelopes sent.

        Validation is atomic: every receiver is checked before the first
        envelope goes out, so an unknown or partitioned receiver in the
        middle of the list cannot leave a half-delivered broadcast.
        """
        targets = [receiver for receiver in receivers if receiver != sender]
        self._require_connected(sender)
        for receiver in targets:
            self._require_connected(receiver)
        for receiver in targets:
            self.send(Envelope(sender=sender, receiver=receiver, tag=tag, body=body))
        return len(targets)

    def receive(self, node_id: str, tag: Optional[str] = None) -> Envelope:
        """Pop the next inbox message (optionally requiring a tag).

        The protocol is phase-synchronous, so an empty inbox or a tag
        mismatch indicates a logic error and raises immediately rather
        than blocking.  A mismatch leaves the inbox untouched — the
        message is peeked, not popped, so the caller (or a debugger)
        still sees the queue as it was.
        """
        self._require_connected(node_id)
        with self._inbox_locks[node_id]:
            inbox = self._inboxes[node_id]
            if not inbox:
                raise NetworkError(f"inbox of {node_id!r} is empty")
            envelope = inbox[0]
            if tag is not None and envelope.tag != tag:
                pending = [e.tag for e in inbox]
                raise NetworkError(
                    f"{node_id!r} expected tag {tag!r}, got {envelope.tag!r} "
                    f"(pending tags: {pending})"
                )
            inbox.popleft()
        if TRACER.enabled and TRACER.capture_messages:
            TRACER.event(
                "net.recv",
                node=node_id,
                sender=envelope.sender,
                tag=envelope.tag,
                wire_bytes=envelope.size(),
            )
        return envelope

    def drain(self, node_id: str, tag: str, count: int) -> List[Envelope]:
        """Receive exactly ``count`` messages with ``tag``.

        All-or-nothing *and atomic*: the whole batch is validated and
        popped under the inbox lock, so a failed drain never loses
        envelopes and a concurrent sender or drainer can never observe
        (or interleave with) a half-popped batch.
        """
        self._require_connected(node_id)
        with self._inbox_locks[node_id]:
            inbox = self._inboxes[node_id]
            for index, envelope in enumerate(
                itertools.islice(inbox, count)
            ):
                if envelope.tag != tag:
                    pending = [e.tag for e in itertools.islice(
                        inbox, index, None
                    )]
                    raise NetworkError(
                        f"{node_id!r} expected tag {tag!r}, got "
                        f"{envelope.tag!r} (pending tags: {pending})"
                    )
            if len(inbox) < count:
                raise NetworkError(f"inbox of {node_id!r} is empty")
            received = [inbox.popleft() for _ in range(count)]
        if TRACER.enabled and TRACER.capture_messages:
            for envelope in received:
                TRACER.event(
                    "net.recv",
                    node=node_id,
                    sender=envelope.sender,
                    tag=envelope.tag,
                    wire_bytes=envelope.size(),
                )
        return received

    def pending(self, node_id: str) -> int:
        self._require_known(node_id)
        with self._inbox_locks[node_id]:
            return len(self._inboxes[node_id])

    # -- Accounting ----------------------------------------------------------------

    @property
    def simulated_time(self) -> float:
        """Seconds of simulated transfer time accumulated so far."""
        with self._stats_lock:
            return self._simulated_time

    def link_stats(self, sender: str, receiver: str) -> LinkStats:
        with self._stats_lock:
            return self._links[(sender, receiver)]

    def links(self) -> Dict[Tuple[str, str], LinkStats]:
        """Per-link stats for every link that carried traffic."""
        with self._stats_lock:
            return {
                link: stats
                for link, stats in self._links.items()
                if stats.messages
            }

    def total_stats(self) -> LinkStats:
        """Aggregate traffic across every link."""
        total = LinkStats()
        with self._stats_lock:
            for stats in self._links.values():
                total.merge(stats)
        return total

    def traffic_matrix(self) -> Dict[Tuple[str, str], int]:
        """Wire bytes per ordered (sender, receiver) pair."""
        with self._stats_lock:
            return {
                link: stats.wire_bytes
                for link, stats in sorted(self._links.items())
                if stats.messages
            }

    # -- Scopes ----------------------------------------------------------------

    def scope(self, namespace: str) -> "ScopedNetwork":
        """Open a namespaced view of this router for one study session.

        Nodes registered through the returned :class:`ScopedNetwork`
        live under ``{namespace}//{logical_id}`` in the physical
        registry, so two concurrent sessions can both register
        ``gdo-0`` without colliding, while all traffic still flows (and
        is accounted) on the shared router.  Each scope carries its own
        simulated clock, so one session's retry backoff never skews
        another's timings.
        """
        if not namespace:
            raise NetworkError("scope namespace must be non-empty")
        if NAMESPACE_SEPARATOR in namespace:
            raise NetworkError(
                f"scope namespace {namespace!r} contains the reserved "
                f"separator {NAMESPACE_SEPARATOR!r}"
            )
        with self._stats_lock:
            if namespace in self._namespaces:
                raise NetworkError(
                    f"scope {namespace!r} is already open on this router"
                )
            self._namespaces.add(namespace)
        return ScopedNetwork(self, namespace)

    def release_scope(self, scope: "ScopedNetwork") -> None:
        """Tear a scope down: drop its inboxes and free its namespace."""
        prefix = scope.namespace + NAMESPACE_SEPARATOR
        with self._stats_lock:
            doomed = [node for node in self._inboxes if node.startswith(prefix)]
            for node in doomed:
                del self._inboxes[node]
                del self._inbox_locks[node]
                self._partitioned.discard(node)
            self._namespaces.discard(scope.namespace)


class ScopedNetwork:
    """A per-session namespaced view over a shared :class:`SimulatedNetwork`.

    Exposes the full router surface under *logical* node ids; every
    physical registration, inbox and link is keyed by
    ``{namespace}//{logical_id}`` on the parent.  Envelopes keep their
    logical sender/receiver end to end (only inbox *keys* are
    namespaced), so protocol code and byte accounting behave exactly as
    on a private router — concurrent sessions stay bit-identical to
    solo runs.

    The scope carries its own simulated clock: message transfer time
    accrues on both the scope and the parent, but :meth:`advance_clock`
    (retry backoff) advances only this scope, isolating sessions that
    share the router.  A fault injector installed on a scope sees
    logical envelopes, so deterministic fault schedules also match solo
    runs.
    """

    def __init__(self, parent: SimulatedNetwork, namespace: str):
        self._parent = parent
        self.namespace = namespace
        self._prefix = namespace + NAMESPACE_SEPARATOR
        self._local: set[str] = set()
        self._local_lock = threading.Lock()
        self._simulated_time = 0.0
        self._fault_injector = None

    def _physical(self, node_id: str) -> str:
        return self._prefix + node_id

    # -- Topology ---------------------------------------------------------------

    def register(self, node_id: str) -> None:
        if not node_id:
            raise NetworkError("node_id must be non-empty")
        if NAMESPACE_SEPARATOR in node_id:
            raise NetworkError(
                f"node id {node_id!r} contains the reserved namespace "
                f"separator {NAMESPACE_SEPARATOR!r}"
            )
        self._parent._register_physical(self._physical(node_id))
        with self._local_lock:
            self._local.add(node_id)

    def nodes(self) -> List[str]:
        with self._local_lock:
            return sorted(self._local)

    def partition(self, node_id: str) -> None:
        self._parent.partition(self._physical(node_id))

    def heal(self, node_id: str) -> None:
        self._parent.heal(self._physical(node_id))

    # -- Fault injection ---------------------------------------------------------

    def install_fault_injector(self, injector) -> None:
        """Install a *per-session* injector; it sees logical envelopes."""
        self._fault_injector = injector
        injector.attach(self)

    def uninstall_fault_injector(self) -> None:
        """Restore the direct delivery path (between reused studies)."""
        self._fault_injector = None

    def _deliver(self, envelope: Envelope) -> None:
        """Fault-injector delivery hook (logical envelope in)."""
        self._parent._deliver_to(self._physical(envelope.receiver), envelope)

    def advance_clock(self, seconds: float) -> float:
        """Advance only this scope's clock; returns the new scope time."""
        if seconds < 0:
            raise NetworkError("cannot advance the clock backwards")
        with self._parent._stats_lock:
            self._simulated_time += seconds
            return self._simulated_time

    def flush(self, node_id: str) -> int:
        return self._parent.flush(self._physical(node_id))

    # -- Messaging ---------------------------------------------------------------

    def send(self, envelope: Envelope) -> None:
        """Deliver one logical envelope over the shared router."""
        receiver_physical = self._physical(envelope.receiver)
        advance, _ = self._parent._account_send(
            self._physical(envelope.sender), receiver_physical, envelope
        )
        with self._parent._stats_lock:
            self._simulated_time += advance
            sim_time = self._simulated_time
        if self._fault_injector is not None:
            self._fault_injector.on_send(envelope)
        else:
            self._parent._deliver_to(receiver_physical, envelope)
        if TRACER.enabled and TRACER.capture_messages:
            TRACER.event(
                "net.send",
                scope=self.namespace,
                sender=envelope.sender,
                receiver=envelope.receiver,
                tag=envelope.tag,
                wire_bytes=envelope.size(),
                clock_advance_s=advance,
                sim_time_s=sim_time,
            )

    def broadcast(
        self, sender: str, receivers: Iterable[str], tag: str, body: bytes
    ) -> int:
        targets = [receiver for receiver in receivers if receiver != sender]
        self._parent._require_connected(self._physical(sender))
        for receiver in targets:
            self._parent._require_connected(self._physical(receiver))
        for receiver in targets:
            self.send(
                Envelope(sender=sender, receiver=receiver, tag=tag, body=body)
            )
        return len(targets)

    def receive(self, node_id: str, tag: Optional[str] = None) -> Envelope:
        return self._parent.receive(self._physical(node_id), tag)

    def drain(self, node_id: str, tag: str, count: int) -> List[Envelope]:
        return self._parent.drain(self._physical(node_id), tag, count)

    def pending(self, node_id: str) -> int:
        return self._parent.pending(self._physical(node_id))

    # -- Accounting ----------------------------------------------------------------

    @property
    def simulated_time(self) -> float:
        """Seconds of simulated time accumulated by *this scope*."""
        with self._parent._stats_lock:
            return self._simulated_time

    def link_stats(self, sender: str, receiver: str) -> LinkStats:
        return self._parent.link_stats(
            self._physical(sender), self._physical(receiver)
        )

    def links(self) -> Dict[Tuple[str, str], LinkStats]:
        """Per-link stats of this scope's links, under logical ids."""
        scoped: Dict[Tuple[str, str], LinkStats] = {}
        with self._parent._stats_lock:
            for (sender, receiver), stats in self._parent._links.items():
                if not stats.messages:
                    continue
                if sender.startswith(self._prefix) and receiver.startswith(
                    self._prefix
                ):
                    scoped[
                        (sender[len(self._prefix):],
                         receiver[len(self._prefix):])
                    ] = stats
        return scoped

    def total_stats(self) -> LinkStats:
        total = LinkStats()
        for stats in self.links().values():
            total.merge(stats)
        return total

    def traffic_matrix(self) -> Dict[Tuple[str, str], int]:
        return {
            link: stats.wire_bytes
            for link, stats in sorted(self.links().items())
            if stats.messages
        }
