"""Benchmark harness: workloads, runners and reporting."""

from __future__ import annotations

import pytest

from repro.bench import (
    PAPER_THRESHOLDS,
    bench_scale,
    centralized_row,
    collusion_row,
    gendpr_row,
    naive_row,
    paper_cohort,
    paper_config,
    render_collusion_table,
    render_resource_table,
    render_runtime_figure,
    render_selection_table,
    render_table,
    scaled,
)
from repro.core.timing import ALL_LABELS


@pytest.fixture(scope="module")
def tiny_cohort():
    # A very small "paper" cohort: scale chosen so tests stay fast.
    cohort, truth = paper_cohort(7_430, 200, scale=0.04, seed=5)
    return cohort


class TestWorkloads:
    def test_scaled_floors_at_fifty(self):
        assert scaled(10, 0.001) == 50
        assert scaled(14_860, 0.1) == 1486

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert bench_scale() == 0.25

    def test_cohort_cached(self):
        one, _ = paper_cohort(7_430, 200, scale=0.04, seed=5)
        two, _ = paper_cohort(7_430, 200, scale=0.04, seed=5)
        assert one is two

    def test_paper_config_thresholds(self):
        config = paper_config(200, study_id="x")
        assert config.thresholds == PAPER_THRESHOLDS


class TestRunners:
    def test_gendpr_row_fields(self, tiny_cohort):
        row = gendpr_row(tiny_cohort, 200, 2)
        assert row["system"] == "GenDPR"
        assert row["maf"] >= row["ld"] >= row["lr"] >= 0
        assert row["total_ms"] > 0
        assert row["network_bytes"] > 0
        for label in ALL_LABELS:
            assert row[label] >= 0

    def test_centralized_row_fields(self, tiny_cohort):
        row = centralized_row(tiny_cohort, 200, 2)
        assert row["system"] == "Centralized"
        assert row["network_bytes"] >= tiny_cohort.case.nbytes

    def test_rows_agree_on_selection(self, tiny_cohort):
        gendpr = gendpr_row(tiny_cohort, 200, 2)
        central = centralized_row(tiny_cohort, 200, 2)
        assert (gendpr["maf"], gendpr["ld"], gendpr["lr"]) == (
            central["maf"],
            central["ld"],
            central["lr"],
        )

    def test_naive_row_fields(self, tiny_cohort):
        row = naive_row(tiny_cohort, 200, 2)
        assert row["system"] == "Naive distributed"
        assert row["maf"] >= row["ld"]

    def test_collusion_row_fields(self, tiny_cohort):
        row = collusion_row(tiny_cohort, 200, 3, [1])
        assert row["setting"] == "G = 3, f=1"
        assert row["combinations"] == 3
        assert 0 <= row["vulnerable_pct"] <= 100 or row["f0_safe"] == 0


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["A", "Bee"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert set(lines[1]) <= {"-", " "}

    def test_render_resource_table(self, tiny_cohort):
        rows = [gendpr_row(tiny_cohort, 200, 2)]
        text = render_resource_table(rows)
        assert "Table 3" in text and "2 GDOs / 200 SNPs" in text

    def test_render_runtime_figure(self, tiny_cohort):
        rows = [centralized_row(tiny_cohort, 200, 2), gendpr_row(tiny_cohort, 200, 2)]
        text = render_runtime_figure(rows, "Figure X")
        assert "Centralized" in text and "2 GDOs" in text

    def test_render_selection_table(self, tiny_cohort):
        rows = [
            centralized_row(tiny_cohort, 200, 2),
            gendpr_row(tiny_cohort, 200, 2),
            naive_row(tiny_cohort, 200, 2),
        ]
        text = render_selection_table(rows)
        assert "Table 4" in text
        assert "MAF" in text and "Naive distributed" in text

    def test_render_collusion_table(self, tiny_cohort):
        rows = [collusion_row(tiny_cohort, 200, 3, [1])]
        text = render_collusion_table(rows)
        assert "Table 5" in text and "G = 3, f=1" in text
