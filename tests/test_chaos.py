"""Chaos suite: seeded fault-plan sweep over the supervised runtime.

Every run of the sweep must either complete with release decisions
**bit-identical** to the fault-free reference of its (execution mode,
collusion) cell, or abort with a *classified* :class:`ReproError`
subclass — never hang, never return a divergent answer.

Set ``CHAOS_REPORT_PATH`` to write a machine-readable JSON report of
every sweep run (fault plans, injected-event counters, outcomes); the
CI ``chaos`` job uploads it as an artifact.  Any failure reproduces
locally from its seed alone: the plan is a pure function of the
config (see ``docs/RESILIENCE.md``).
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro import StudyConfig, generate_cohort, partition_cohort
from repro.config import (
    CollusionPolicy,
    ExecutionConfig,
    FaultConfig,
    ResilienceConfig,
    ShardingConfig,
)
from repro.core.federation import build_federation
from repro.core.leader import elect_leader
from repro.core.protocol import GenDPRProtocol
from repro.errors import ReproError
from repro.genomics import SyntheticSpec

MEMBERS = 3
STUDY_ID = "chaos-sweep"
STUDY_SEED = 5

#: The sweep: 24 seeded plans.  Mode and collusion derive from the seed
#: so the grid covers {sequential, parallel} × {f=0, f=1} evenly.
CHAOS_SEEDS = list(range(1, 25))
#: Seeds whose plan additionally crashes the leader mid-study.
CRASH_SEEDS = {s for s in CHAOS_SEEDS if s % 5 == 0}
#: Seeds whose plan additionally opens a short partition window.
PARTITION_SEEDS = {s for s in CHAOS_SEEDS if s % 7 == 0}
#: Subset of the sweep re-run sharded (per shard count in SHARD_AXIS):
#: the same seeded plans, now also stressing tree rounds and repair.
#: Hand-picked to cover both modes, both collusion settings, a leader
#: crash (10, 15, 20) and a partition window (7).
SHARDED_SEEDS = [1, 2, 7, 10, 15, 20]
SHARD_AXIS = (2, 4)

_collected_runs = []


def _mode(seed: int) -> str:
    return "parallel" if seed % 2 else "sequential"


def _f(seed: int) -> int:
    return 1 if seed % 4 >= 2 else 0


def _leader_id() -> str:
    return elect_leader(
        [f"gdo-{i}" for i in range(MEMBERS)], STUDY_SEED, STUDY_ID
    )


def _fault_config(seed: int) -> FaultConfig:
    chaos = FaultConfig.chaos(seed, intensity=0.15)
    crash_points = ((_leader_id(), 4),) if seed in CRASH_SEEDS else ()
    member = next(
        m for m in (f"gdo-{i}" for i in range(MEMBERS)) if m != _leader_id()
    )
    partition_windows = (
        ((member, 1 + seed % 6, 2),) if seed in PARTITION_SEEDS else ()
    )
    return dataclasses.replace(
        chaos, crash_points=crash_points, partition_windows=partition_windows
    )


@pytest.fixture(scope="module")
def chaos_cohort():
    cohort, _ = generate_cohort(
        SyntheticSpec(num_snps=80, num_case=120, num_control=100, seed=5)
    )
    return cohort


def _base_config(seed: int) -> StudyConfig:
    return StudyConfig(
        snp_count=80,
        study_id=STUDY_ID,
        seed=STUDY_SEED,
        execution=ExecutionConfig(mode=_mode(seed)),
        collusion=(
            CollusionPolicy.static(_f(seed))
            if _f(seed)
            else CollusionPolicy.none()
        ),
    )


@pytest.fixture(scope="module")
def references(chaos_cohort):
    """Fault-free reference outcomes per (mode, f) cell.

    Computed with resilience *disabled* — so the sweep simultaneously
    validates that the resilient path (faulted or not) changes nothing.
    """
    refs = {}
    for mode in ("sequential", "parallel"):
        for f in (0, 1):
            config = dataclasses.replace(
                StudyConfig(
                    snp_count=80,
                    study_id=STUDY_ID,
                    seed=STUDY_SEED,
                    execution=ExecutionConfig(mode=mode),
                    collusion=(
                        CollusionPolicy.static(f)
                        if f
                        else CollusionPolicy.none()
                    ),
                )
            )
            federation = build_federation(
                config, partition_cohort(chaos_cohort, MEMBERS), chaos_cohort
            )
            refs[(mode, f)] = GenDPRProtocol(federation).run()
    return refs


@pytest.fixture(scope="module", autouse=True)
def chaos_report():
    """Write the sweep's fault-injection report if a path is configured."""
    yield
    path = os.environ.get("CHAOS_REPORT_PATH")
    if not path or not _collected_runs:
        return
    completed = sum(1 for r in _collected_runs if r["outcome"] == "completed")
    payload = {
        "study_id": STUDY_ID,
        "members": MEMBERS,
        "runs": list(_collected_runs),
        "summary": {
            "total": len(_collected_runs),
            "completed_identical": completed,
            "classified_aborts": len(_collected_runs) - completed,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_run_is_identical_or_classified(seed, chaos_cohort, references):
    faults = _fault_config(seed)
    config = dataclasses.replace(
        _base_config(seed),
        faults=faults,
        resilience=ResilienceConfig.supervised(),
    )
    reference = references[(_mode(seed), _f(seed))]
    federation = build_federation(
        config, partition_cohort(chaos_cohort, MEMBERS), chaos_cohort
    )
    record = {
        "seed": seed,
        "mode": _mode(seed),
        "f": _f(seed),
        "plan": federation.fault_injector.plan.describe(),
    }
    try:
        result = GenDPRProtocol(federation).run()
    except ReproError as exc:
        record["outcome"] = "classified_abort"
        record["error"] = type(exc).__name__
    else:
        assert result.l_prime == reference.l_prime
        assert result.l_double_prime == reference.l_double_prime
        assert result.l_safe == reference.l_safe
        if reference.collusion is not None:
            assert result.collusion is not None
            assert (
                result.collusion.baseline_safe
                == reference.collusion.baseline_safe
            )
        record["outcome"] = "completed"
        record["failovers"] = federation.failovers
    finally:
        record["injected"] = federation.fault_injector.counters()
        _collected_runs.append(record)


_sharded_decisions = {}


@pytest.mark.parametrize("shards", SHARD_AXIS)
@pytest.mark.parametrize("seed", SHARDED_SEEDS)
def test_sharded_chaos_run_is_identical_or_classified(
    seed, shards, chaos_cohort, references
):
    """The chaos invariant survives composition with sharding.

    The same seeded plans, re-run with SNP-range sharding at each
    shard count: tree rounds now carry the combine traffic, so drops,
    delays and crashes land on combine edges and are masked by retry
    and tree repair — or abort classified.  Completed runs must match
    the *unsharded* fault-free reference, which also pins decision
    identity across shard counts.
    """
    faults = _fault_config(seed)
    config = dataclasses.replace(
        _base_config(seed),
        faults=faults,
        sharding=ShardingConfig.over(shards),
        resilience=ResilienceConfig.supervised(),
    )
    reference = references[(_mode(seed), _f(seed))]
    federation = build_federation(
        config, partition_cohort(chaos_cohort, MEMBERS), chaos_cohort
    )
    record = {
        "seed": seed,
        "shards": shards,
        "mode": _mode(seed),
        "f": _f(seed),
        "plan": federation.fault_injector.plan.describe(),
    }
    try:
        result = GenDPRProtocol(federation).run()
    except ReproError as exc:
        record["outcome"] = "classified_abort"
        record["error"] = type(exc).__name__
        _sharded_decisions[(seed, shards)] = ("abort", type(exc).__name__)
    else:
        assert result.l_prime == reference.l_prime
        assert result.l_double_prime == reference.l_double_prime
        assert result.l_safe == reference.l_safe
        record["outcome"] = "completed"
        record["failovers"] = federation.failovers
        record["member_restorations"] = federation.member_restorations
        _sharded_decisions[(seed, shards)] = (
            "completed",
            tuple(result.l_safe),
        )
    finally:
        record["injected"] = federation.fault_injector.counters()
        _collected_runs.append(record)


def test_sharded_sweep_decisions_identical_across_shard_counts():
    """Every completed (seed, shards) cell released the same SNP set.

    Runs after the sharded sweep (pytest executes in definition
    order), so the decision table is complete.
    """
    assert len(_sharded_decisions) == len(SHARDED_SEEDS) * len(SHARD_AXIS)
    completed = 0
    for seed in SHARDED_SEEDS:
        decisions = {
            _sharded_decisions[(seed, shards)]
            for shards in SHARD_AXIS
            if _sharded_decisions[(seed, shards)][0] == "completed"
        }
        assert len(decisions) <= 1, f"seed {seed} diverged across shards"
        completed += len(decisions)
    # The subset is not allowed to abort wholesale: most plans at this
    # intensity complete, proving the masked path does the masking.
    assert completed >= len(SHARDED_SEEDS) // 2


def test_sweep_covers_both_modes_and_collusion():
    cells = {(_mode(s), _f(s)) for s in CHAOS_SEEDS}
    assert cells == {
        ("sequential", 0),
        ("sequential", 1),
        ("parallel", 0),
        ("parallel", 1),
    }
    assert len(CHAOS_SEEDS) >= 20
    assert CRASH_SEEDS and PARTITION_SEEDS
    # The sharded subset keeps the same spread: both modes, both
    # collusion settings, at least one crash and one partition plan.
    assert {_mode(s) for s in SHARDED_SEEDS} == {"sequential", "parallel"}
    assert {_f(s) for s in SHARDED_SEEDS} == {0, 1}
    assert set(SHARDED_SEEDS) & CRASH_SEEDS
    assert set(SHARDED_SEEDS) & PARTITION_SEEDS
    assert len(SHARD_AXIS) >= 2


def test_chaos_replays_identically(chaos_cohort, references):
    """The same seed reproduces the same injected faults, bit for bit."""
    seed = 10  # a crash seed: the heaviest machinery in one run
    counters = []
    for _ in range(2):
        config = dataclasses.replace(
            _base_config(seed),
            faults=_fault_config(seed),
            resilience=ResilienceConfig.supervised(),
        )
        federation = build_federation(
            config, partition_cohort(chaos_cohort, MEMBERS), chaos_cohort
        )
        try:
            GenDPRProtocol(federation).run()
        except ReproError:
            pass
        counters.append(federation.fault_injector.counters())
    assert counters[0] == counters[1]
