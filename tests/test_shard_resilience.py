"""Fault-tolerant sharded aggregation: crash, retry, tree repair.

Acceptance tier for the shard × resilience composition.  The invariant
is the sharding one, under fire: a sharded study running supervised
must either complete with release decisions **bit-identical** to the
fault-free *unsharded* reference, or abort with a *classified*
:class:`ReproError` subclass — across shard counts, across seeded
fault plans, and under a Byzantine interior node falsifying combine
partials.

The crash-point ECALL indices used here are deterministic: member
index 3 is the first ``shard_emit_partial`` (mid-tree-round for every
shard count, since ``answer_summary`` / ``ingest_shard_task`` precede
it), and leader index 10 is a ``shard_ingest_partial`` inside the
second counts task (past the first task-boundary checkpoint, so the
failover resumes mid-phase).

Set ``SHARD_CHAOS_REPORT_PATH`` to write a machine-readable JSON
report of every run (fault plans, repair/retry counters, outcomes);
the CI ``sharded-chaos`` job uploads it as an artifact.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import StudyConfig, generate_cohort, partition_cohort
from repro.config import (
    FaultConfig,
    IntegrityConfig,
    ObservabilityConfig,
    ResilienceConfig,
    ShardingConfig,
)
from repro.core.federation import build_federation
from repro.core.leader import elect_leader
from repro.core.protocol import GenDPRProtocol
from repro.errors import MemberUnresponsiveError, ReproError
from repro.genomics import SyntheticSpec

MEMBERS = 3
STUDY_ID = "shard-chaos"
STUDY_SEED = 5
SNPS = 80
SHARD_COUNTS = (2, 4)
#: Seeded network-noise plans masked by combine-edge retries.
NOISE_SEEDS = (31, 32, 33, 34)

#: Report records keyed by run label: re-execution within one session
#: replaces the record, so the report never accumulates duplicates.
_collected_runs = {}


def _leader_id() -> str:
    return elect_leader(
        [f"gdo-{i}" for i in range(MEMBERS)], STUDY_SEED, STUDY_ID
    )


def _members_without_leader():
    return [m for m in (f"gdo-{i}" for i in range(MEMBERS)) if m != _leader_id()]


def _decisions(result):
    collusion = None
    if result.collusion is not None:
        collusion = {
            "baseline_safe": list(result.collusion.baseline_safe),
            "outcomes": sorted(
                (list(o.member_ids), o.f, list(o.safe_snps))
                for o in result.collusion.outcomes
            ),
        }
    return {
        "l_prime": list(result.l_prime),
        "l_double_prime": list(result.l_double_prime),
        "l_safe": list(result.l_safe),
        "release_power": result.release_power,
        "collusion": collusion,
    }


def _config(shards: int, faults: FaultConfig, **overrides) -> StudyConfig:
    kwargs = {
        "snp_count": SNPS,
        "study_id": STUDY_ID,
        "seed": STUDY_SEED,
        "sharding": ShardingConfig.over(shards),
        "resilience": ResilienceConfig.supervised(),
        "faults": faults,
        "observability": ObservabilityConfig(enabled=True),
    }
    kwargs.update(overrides)
    return StudyConfig(**kwargs)


@pytest.fixture(scope="module")
def shard_cohort():
    cohort, _ = generate_cohort(
        SyntheticSpec(num_snps=SNPS, num_case=120, num_control=100, seed=5)
    )
    return cohort


@pytest.fixture(scope="module")
def reference(shard_cohort):
    """Fault-free **unsharded** decisions: the ground truth every
    faulted sharded run must reproduce bit-for-bit."""
    config = StudyConfig(snp_count=SNPS, study_id=STUDY_ID, seed=STUDY_SEED)
    federation = build_federation(
        config, partition_cohort(shard_cohort, MEMBERS), shard_cohort
    )
    return _decisions(GenDPRProtocol(federation).run())


@pytest.fixture(scope="module", autouse=True)
def shard_chaos_report():
    """Write the tier's repair/retry report if a path is configured."""
    yield
    path = os.environ.get("SHARD_CHAOS_REPORT_PATH")
    if not path or not _collected_runs:
        return
    runs = [_collected_runs[key] for key in sorted(_collected_runs)]
    completed = sum(1 for r in runs if r["outcome"] == "completed")
    payload = {
        "study_id": STUDY_ID,
        "members": MEMBERS,
        "runs": runs,
        "summary": {
            "total": len(runs),
            "completed_identical": completed,
            "classified_aborts": len(runs) - completed,
            "repairs": sum(
                r.get("repair", {}).get("repairs", 0) for r in runs
            ),
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _run_and_record(shard_cohort, config, label: str):
    """Run one study, append its record, return (outcome, result, fed)."""
    federation = build_federation(
        config, partition_cohort(shard_cohort, MEMBERS), shard_cohort
    )
    record = {
        "label": label,
        "shards": config.sharding.num_shards,
        "plan": federation.fault_injector.plan.describe()
        if federation.fault_injector is not None
        else {},
    }
    if federation.fault_injector is not None:
        record["plan_digest"] = federation.fault_injector.plan.digest()
    result, outcome = None, "completed"
    try:
        result = GenDPRProtocol(federation).run()
    except ReproError as exc:
        outcome = "classified_abort"
        record["error"] = type(exc).__name__
    record["outcome"] = outcome
    if federation.fault_injector is not None:
        record["injected"] = federation.fault_injector.counters()
    record["member_restorations"] = federation.member_restorations
    record["failovers"] = federation.failovers
    if result is not None and result.observability is not None:
        meta = result.observability.meta.get("sharding", {})
        if "repair" in meta:
            record["repair"] = dict(meta["repair"])
    _collected_runs[label] = record
    return outcome, result, federation


class TestMemberCrashRepair:
    """An enclave crash mid-tree-round is survived via tree repair."""

    # Two seeded plans: one kills a member at its first combine
    # emission (counts phase), one kills the other member deeper into
    # the schedule (moments phase for 2 shards, counts for 4).
    PLANS = (("first-emit", 3), ("late-task", 8))

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("plan_name,ecall_index", PLANS)
    def test_crash_is_repaired_bit_identically(
        self, shards, plan_name, ecall_index, shard_cohort, reference
    ):
        victim = _members_without_leader()[0 if ecall_index == 3 else 1]
        faults = FaultConfig(
            enabled=True,
            seed=11,
            crash_points=((victim, ecall_index),),
        )
        outcome, result, federation = _run_and_record(
            shard_cohort,
            _config(shards, faults),
            f"member-crash:{plan_name}:s{shards}",
        )
        assert outcome == "completed"
        assert _decisions(result) == reference
        # The crash fired, the member enclave was replaced, and the
        # repair left its trace in the report.
        assert federation.fault_injector.counters()["crashes"] == 1
        assert federation.member_restorations >= 1
        meta = result.observability.meta["sharding"]
        assert meta["repair"]["repairs"] >= 1
        assert meta["repair"]["epoch"] >= 1
        # The repaired layout is recorded alongside the original, and
        # really is a different (rotated) plan.
        assert meta["repair"]["plan_digest"] != meta["plan_digest"]
        counters = result.observability.metrics["counters"]
        assert counters["shard.repair.repairs"] >= 1
        assert counters["shard.repair.tasks_rerun"] >= 1

    def test_repair_budget_exhaustion_is_classified(
        self, shard_cohort, reference
    ):
        """No budget → the triggering error surfaces, typed."""
        victim = _members_without_leader()[0]
        faults = FaultConfig(
            enabled=True, seed=11, crash_points=((victim, 3),)
        )
        config = _config(
            2,
            faults,
            resilience=ResilienceConfig.supervised(max_repairs=0),
        )
        federation = build_federation(
            config, partition_cohort(shard_cohort, MEMBERS), shard_cohort
        )
        with pytest.raises(MemberUnresponsiveError) as excinfo:
            GenDPRProtocol(federation).run()
        assert excinfo.value.report.member_id == victim
        _collected_runs["member-crash:budget-exhausted"] = {
            "label": "member-crash:budget-exhausted",
            "shards": 2,
            "outcome": "classified_abort",
            "error": "MemberUnresponsiveError",
            "member_restorations": federation.member_restorations,
            "failovers": federation.failovers,
        }


class TestLeaderCrashMidShardPhase:
    """Leader loss inside a tree round resumes from the last
    completed combine boundary, not the phase start."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_failover_resumes_mid_phase(self, shards, shard_cohort, reference):
        faults = FaultConfig(
            enabled=True, seed=12, crash_points=((_leader_id(), 10),)
        )
        outcome, result, federation = _run_and_record(
            shard_cohort, _config(shards, faults), f"leader-crash:s{shards}"
        )
        assert outcome == "completed"
        assert _decisions(result) == reference
        assert federation.failovers >= 1
        # The supervisor's recovery work is visible in the report; the
        # per-task checkpoint trail let the re-run phase skip the first
        # completed counts task instead of starting over.
        counters = result.observability.metrics["counters"]
        assert counters["resilience.failovers"] >= 1
        assert counters["resilience.leader_crashes"] >= 1


class TestNoisyCombineEdges:
    """Drop/duplicate/delay/corrupt on combine edges are masked by
    the bounded retry loop — or abort classified, never diverge."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", NOISE_SEEDS)
    def test_identical_or_classified(
        self, shards, seed, shard_cohort, reference
    ):
        faults = FaultConfig.chaos(seed, intensity=0.15)
        outcome, result, _federation = _run_and_record(
            shard_cohort,
            _config(shards, faults),
            f"noise:{seed}:s{shards}",
        )
        if outcome == "completed":
            assert _decisions(result) == reference

    def test_noise_sweep_masked_at_least_once(self):
        """The sweep exercised the retry machinery, not just luck."""
        noise = [
            r
            for r in _collected_runs.values()
            if r["label"].startswith("noise:")
        ]
        assert len(noise) == len(NOISE_SEEDS) * len(SHARD_COUNTS)
        assert any(r["outcome"] == "completed" for r in noise)
        injected = sum(
            sum(r.get("injected", {}).values()) for r in noise
        )
        assert injected > 0


class TestCombineEquivocation:
    """A Byzantine interior node emitting falsified leaf partials is
    caught by the dual-run commitment comparison, quarantined, and
    repaired around — or the abort is classified."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_equivocator_quarantined_or_classified(
        self, shards, shard_cohort, reference
    ):
        target = _members_without_leader()[0]
        faults = FaultConfig.byzantine(
            13,
            intensity=0.0,
            shard_flip_rate=1.0,
            shard_flip_target=target,
        )
        config = _config(shards, faults, integrity=IntegrityConfig.on())
        outcome, result, federation = _run_and_record(
            shard_cohort, config, f"equivocate:s{shards}"
        )
        monitor = federation.integrity_monitor
        # Rate 1.0 guarantees the very first counts task was falsified,
        # so a detection must have been recorded either way.
        assert monitor.detections >= 1
        if outcome == "completed":
            assert _decisions(result) == reference
            quarantined = monitor.quarantined()
            assert any(r.member_id == target for r in quarantined)
            assert federation.member_restorations >= 1
            assert (
                result.observability.meta["sharding"]["repair"]["repairs"]
                >= 1
            )
        else:
            abort = _collected_runs[f"equivocate:s{shards}"]
            assert abort["error"].endswith("Error")

    def test_flips_were_injected_and_detected(self):
        runs = [
            r
            for r in _collected_runs.values()
            if r["label"].startswith("equivocate:")
        ]
        assert len(runs) == len(SHARD_COUNTS)
        for run in runs:
            assert run["injected"]["shard_equivocations"] >= 1


class TestFaultFreeComposition:
    """Supervised sharding with no armed faults changes nothing."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_matches_reference_with_zero_repairs(
        self, shards, shard_cohort, reference
    ):
        outcome, result, federation = _run_and_record(
            shard_cohort,
            _config(shards, FaultConfig.off()),
            f"fault-free:s{shards}",
        )
        assert outcome == "completed"
        assert _decisions(result) == reference
        assert federation.member_restorations == 0
        assert federation.failovers == 0
        meta = result.observability.meta["sharding"]
        assert "repair" not in meta
        counters = result.observability.metrics["counters"]
        assert counters.get("shard.repair.repairs", 0) == 0
        assert counters.get("shard.repair.tasks_rerun", 0) == 0
