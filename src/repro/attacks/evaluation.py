"""Attack power evaluation.

Turns the detectors in :mod:`repro.attacks.membership` into the
aggregate numbers the paper reasons about: empirical identification
power (true-positive rate over actual case members) and false-positive
rate (over non-members), for a chosen SNP set.

The central validation of the reproduction lives here: released sets
chosen by GenDPR must keep the LR attack's power below the configured
threshold, while the same attack run over the *withheld* SNPs (or over
a colluder-isolated sub-population) climbs well above it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Type, Union

import numpy as np

from ..errors import GenomicsError
from ..genomics.population import Cohort
from .membership import HomerAttack, LrAttack

Detector = Union[Type[LrAttack], Type[HomerAttack]]


@dataclass(frozen=True)
class AttackEvaluation:
    """Empirical performance of one detector on one SNP set."""

    snps: tuple
    power: float
    false_positive_rate: float
    alpha: float
    detector: str

    @property
    def advantage(self) -> float:
        """Detector advantage over random guessing at its operating point."""
        return self.power - self.false_positive_rate


def evaluate_attack(
    cohort: Cohort,
    snp_indices: Sequence[int],
    *,
    alpha: float = 0.1,
    detector: Detector = LrAttack,
    holdout_fraction: float = 0.5,
) -> AttackEvaluation:
    """Measure a detector's power and FPR for a released SNP set.

    The reference population is split in half: one half calibrates the
    detector's threshold (the adversary's auxiliary data), the other
    half measures the false-positive rate on genuine non-members, so
    the FPR estimate is not biased by calibrating and testing on the
    same individuals.  Power is measured over the full case population.

    Args:
        cohort: the study cohort (case genomes are the attack targets).
        snp_indices: the SNPs whose statistics the release exposes.
        alpha: the detector's tolerated false-positive rate.
        detector: :class:`LrAttack` or :class:`HomerAttack`.
        holdout_fraction: share of the reference kept for FPR testing.
    """
    snps = [int(s) for s in snp_indices]
    if not snps:
        raise GenomicsError("cannot attack an empty SNP set")
    if not 0.0 < holdout_fraction < 1.0:
        raise GenomicsError("holdout_fraction must be in (0, 1)")

    case = cohort.case.array()[:, snps]
    reference = cohort.reference.array()[:, snps]
    split = max(1, int(reference.shape[0] * (1.0 - holdout_fraction)))
    if split >= reference.shape[0]:
        raise GenomicsError("reference population too small to split")
    calibration, holdout = reference[:split], reference[split:]

    case_freqs = cohort.case.allele_counts(snps).astype(np.float64) / (
        cohort.case.num_individuals
    )
    ref_freqs = cohort.reference.allele_counts(snps).astype(np.float64) / (
        cohort.reference.num_individuals
    )

    attack = detector(case_freqs, ref_freqs, calibration, alpha=alpha)
    power = float(np.mean(attack.infer_batch(case)))
    fpr = float(np.mean(attack.infer_batch(holdout)))
    return AttackEvaluation(
        snps=tuple(snps),
        power=power,
        false_positive_rate=fpr,
        alpha=alpha,
        detector=detector.__name__,
    )


def compare_released_vs_withheld(
    cohort: Cohort,
    released: Sequence[int],
    candidate_pool: Sequence[int],
    *,
    alpha: float = 0.1,
) -> dict:
    """Attack power on the released set vs the withheld complement.

    ``candidate_pool`` is typically ``L''`` (the LD survivors the
    LR-test chose from); the withheld set is its complement w.r.t. the
    released one.  Returns both evaluations for reporting.
    """
    released_set = set(int(s) for s in released)
    withheld = [s for s in candidate_pool if int(s) not in released_set]
    outcome = {
        "released": evaluate_attack(cohort, released, alpha=alpha)
        if released
        else None,
        "withheld": evaluate_attack(cohort, withheld, alpha=alpha)
        if withheld
        else None,
    }
    return outcome
