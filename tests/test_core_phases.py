"""StudyResult / CollusionReport invariants and validation."""

from __future__ import annotations

import pytest

from repro.core.phases import (
    CollusionReport,
    CombinationOutcome,
    StudyResult,
)
from repro.core.timing import PhaseTimings
from repro.errors import ProtocolError


def _result(l_prime, l_double_prime, l_safe, l_des=10):
    return StudyResult(
        study_id="s",
        leader_id="gdo-0",
        num_members=2,
        l_des=l_des,
        l_prime=l_prime,
        l_double_prime=l_double_prime,
        l_safe=l_safe,
        timings=PhaseTimings(),
    )


class TestStudyResultValidation:
    def test_valid_chain(self):
        result = _result([0, 1, 2, 3], [1, 3], [3])
        assert result.phase_counts() == {"MAF": 4, "LD": 2, "LR": 1}

    def test_lprime_outside_des_rejected(self):
        with pytest.raises(ProtocolError):
            _result([99], [], [])

    def test_ld_not_subset_rejected(self):
        with pytest.raises(ProtocolError):
            _result([0, 1], [2], [])

    def test_safe_not_subset_rejected(self):
        with pytest.raises(ProtocolError):
            _result([0, 1], [1], [0])

    def test_empty_chain_allowed(self):
        result = _result([], [], [])
        assert result.retained_after_lr == 0

    def test_bad_sizes_rejected(self):
        with pytest.raises(ProtocolError):
            StudyResult(
                study_id="s",
                leader_id="x",
                num_members=0,
                l_des=10,
                l_prime=[],
                l_double_prime=[],
                l_safe=[],
                timings=PhaseTimings(),
            )
        with pytest.raises(ProtocolError):
            _result([], [], [], l_des=0)

    def test_summary_contains_counts(self):
        summary = _result([0, 1], [1], [1]).summary()
        assert "MAF 2" in summary and "LR 1" in summary


class TestCollusionReport:
    def test_vulnerable_accounting(self):
        report = CollusionReport(
            outcomes=[
                CombinationOutcome(("a", "b"), 1, (1, 2, 3)),
                CombinationOutcome(("a", "c"), 1, (2, 3, 4)),
            ],
            baseline_safe=(1, 2, 3, 4, 5),
        )
        assert report.combinations_evaluated == 2
        assert report.vulnerable_snps((2, 3)) == (1, 4, 5)
        assert report.vulnerable_snps((1, 2, 3, 4, 5)) == ()
