"""Ablation — AEAD scheme throughput on protocol payloads.

DESIGN.md substitutes a Philox-stream AEAD for hardware AES on bulk
payloads so that cryptography stays off the critical path, as it is in
the paper's AES-NI enclaves.  This ablation measures both schemes on
the three payload sizes the protocol actually moves — an allele-count
vector, an LD moment batch, and a member LR-matrix — demonstrating that
the pure-Python reference AES would dominate the running time (and
thereby justifying the substitution).
"""

from __future__ import annotations

import time

from repro.bench import render_table
from repro.crypto import AesCtrHmacAead, StreamAead

PAYLOADS = [
    ("counts vector (10k SNPs)", 4 * 10_000),
    ("LD moment batch", 40 * 2_048),
    ("LR matrix (2,123 x 187)", 8 * 2_123 * 187),
]


def test_ablation_aead_throughput(benchmark, save_result):
    key = bytes(range(32))
    schemes = [
        ("Stream AEAD (protocol default)", StreamAead(key)),
        ("AES-CTR-HMAC (reference)", AesCtrHmacAead(key)),
    ]

    # Cap how many bytes the pure-Python AES actually processes; its
    # cost is linear in the payload, so the full-size figure is an exact
    # extrapolation (marked in the table) rather than a multi-minute run.
    aes_measure_cap = 128 * 1024

    def run_all():
        rows = []
        for payload_name, size in PAYLOADS:
            for scheme_name, aead in schemes:
                measured = size
                if isinstance(aead, AesCtrHmacAead):
                    measured = min(size, aes_measure_cap)
                data = bytes(measured)
                begin = time.perf_counter()
                frame = aead.encrypt(data)
                aead.decrypt(frame)
                elapsed = (time.perf_counter() - begin) * (size / measured)
                rows.append(
                    [
                        payload_name,
                        scheme_name + ("*" if measured < size else ""),
                        f"{size:,}",
                        f"{elapsed * 1000:.2f}",
                        f"{size / max(elapsed, 1e-9) / 1e6:.2f}",
                    ]
                )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_result(
        "ablation_crypto",
        "Ablation: AEAD round-trip cost on real protocol payload sizes.\n"
        + render_table(["Payload", "Scheme", "Bytes", "ms", "MB/s"], rows)
        + "\n(*linear extrapolation from a capped measurement)",
    )
    # The stream AEAD must beat the pure-Python AES by a wide margin on
    # the large LR-matrix payload, or the substitution loses its basis.
    stream_ms = float(rows[-2][3])
    aes_ms = float(rows[-1][3])
    assert stream_ms < aes_ms / 10
