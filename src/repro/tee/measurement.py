"""Enclave code measurement (the MRENCLAVE analogue).

Intel SGX identifies an enclave by a hash of its initial code and data
pages.  The simulation measures the *source code* of the enclave class
(plus an explicit version label), which preserves the property the
protocol relies on: two parties running byte-identical trusted code
obtain the same measurement, and any tampering with the trusted module
changes it and breaks attestation.
"""

from __future__ import annotations

import hashlib
import hmac
import inspect
from dataclasses import dataclass
from typing import Type

from ..errors import MeasurementError

MEASUREMENT_SIZE = 32


@dataclass(frozen=True, order=True)
class Measurement:
    """A 32-byte enclave identity hash."""

    value: bytes

    def __post_init__(self) -> None:
        if len(self.value) != MEASUREMENT_SIZE:
            raise MeasurementError(
                f"measurement must be {MEASUREMENT_SIZE} bytes"
            )

    def hex(self) -> str:
        return self.value.hex()

    def matches(self, other: "Measurement") -> bool:
        """Constant-time identity check (use instead of ``==`` in
        attestation paths, where the comparison gates trust)."""
        return hmac.compare_digest(self.value, other.value)

    def __repr__(self) -> str:  # short form keeps logs readable
        return f"Measurement({self.value.hex()[:12]}…)"


_MEASUREMENT_CACHE: dict = {}


def measure_class(enclave_class: Type, version: str = "1") -> Measurement:
    """Measure an enclave class: hash of its qualified name, source and version.

    The measurement is cached per (class, version): like SGX, which
    hashes an enclave's pages once at load, all instances of one
    trusted-code build in a process share one measurement even if the
    source file changes on disk afterwards.

    Falls back to the qualified name alone when source is unavailable
    (e.g. classes defined in a REPL), which still distinguishes enclave
    types, just not code revisions.
    """
    cache_key = (enclave_class, version)
    cached = _MEASUREMENT_CACHE.get(cache_key)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    hasher.update(b"repro.enclave-measurement/v1\x00")
    hasher.update(enclave_class.__qualname__.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(version.encode("utf-8"))
    hasher.update(b"\x00")
    try:
        hasher.update(inspect.getsource(enclave_class).encode("utf-8"))
    except (OSError, TypeError):
        pass
    measurement = Measurement(hasher.digest())
    _MEASUREMENT_CACHE[cache_key] = measurement
    return measurement


def measure_blob(code: bytes, version: str = "1") -> Measurement:
    """Measure raw code bytes (used by tests and tampering experiments)."""
    hasher = hashlib.sha256()
    hasher.update(b"repro.enclave-measurement/blob/v1\x00")
    hasher.update(version.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(code)
    return Measurement(hasher.digest())
