"""``repro lint`` — the CLI front-end of the static analyser.

Exit codes: ``0`` clean, ``1`` non-baselined error findings (or usage
errors, matching the rest of the CLI).  ``--update-baseline`` rewrites
the baseline to accept the current findings and exits 0 — the
grandfathering workflow for adopting a new rule.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Optional

from ..errors import LintConfigError
from .baseline import Baseline
from .config import LintConfig, find_config, load_config
from .engine import run_lint
from .reporting import human_report, json_report


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach ``repro lint`` arguments to a subcommand parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--config",
        help="lint.toml path (default: nearest lint.toml above the "
        "first input path)",
    )
    parser.add_argument(
        "--baseline",
        help="baseline JSON path (default: from config, resolved "
        "relative to the config file)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to accept all current findings",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--output",
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all registered)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="run the whole-program dataflow rules R6-R8 "
        "(interprocedural secret-taint analysis)",
    )
    parser.add_argument(
        "--flow-artifacts",
        metavar="DIR",
        help="write callgraph.json and declassifications.json (the "
        "flow-pass artifacts) into this directory; implies --flow",
    )
    parser.set_defaults(func=run_from_args)


def _resolve_config(args: argparse.Namespace, first_path: Path):
    if args.config:
        config_path: Optional[Path] = Path(args.config)
        if not config_path.is_file():
            raise LintConfigError(f"config file not found: {config_path}")
    else:
        config_path = find_config(first_path)
    config = load_config(config_path) if config_path else LintConfig()
    if args.rules:
        selected = tuple(
            token.strip() for token in args.rules.split(",") if token.strip()
        )
        config = replace(config, enabled_rules=selected)
    if getattr(args, "flow", False) or getattr(args, "flow_artifacts", None):
        config = config.with_flow(True)
    return config, config_path


def _resolve_baseline_path(
    args: argparse.Namespace,
    config: LintConfig,
    config_path: Optional[Path],
) -> Optional[Path]:
    if args.baseline:
        return Path(args.baseline)
    if config.baseline_path is None:
        return None
    root = config_path.parent if config_path else Path.cwd()
    return root / config.baseline_path


def run_from_args(args: argparse.Namespace) -> int:
    paths = [Path(raw) for raw in args.paths]
    config, config_path = _resolve_config(args, paths[0])
    baseline_path = _resolve_baseline_path(args, config, config_path)
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()

    result = run_lint(paths, config, baseline)

    if args.update_baseline:
        if baseline_path is None:
            raise LintConfigError(
                "--update-baseline needs a baseline path (config or "
                "--baseline)"
            )
        Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"baseline updated: {baseline_path} now grandfathers "
            f"{len(result.findings)} finding(s)"
        )
        return 0

    if getattr(args, "flow_artifacts", None):
        artifact_dir = Path(args.flow_artifacts)
        artifact_dir.mkdir(parents=True, exist_ok=True)
        for name, key in (
            ("callgraph.json", "callgraph"),
            ("declassifications.json", "declassifications"),
        ):
            (artifact_dir / name).write_text(
                json.dumps(
                    result.artifacts.get(key, {}), indent=2, sort_keys=True
                )
                + "\n",
                encoding="utf-8",
            )
        print(f"flow artifacts written to {artifact_dir}")

    if args.format == "json":
        rendered = json.dumps(
            json_report(result, config, args.paths), indent=2, sort_keys=True
        )
    else:
        rendered = human_report(result)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(f"lint report written to {args.output}")
    else:
        print(rendered)
    if not result.clean:
        print(
            f"error: {len(result.errors)} lint error(s); see report above",
            file=sys.stderr,
        )
        return 1
    return 0
