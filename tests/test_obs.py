"""Observability subsystem (:mod:`repro.obs`).

Covers the four pillars and their contracts:

* span nesting/ordering invariants (property-based),
* histogram percentile estimates bracket true sorted-list quantiles,
* exporter round-trip (JSONL → parsed spans identical),
* the null-sink guarantee: a run with observability disabled records
  nothing and *cannot* allocate collector state,
* end-to-end: a traced protocol run whose phase spans sum to the
  ``PhaseTimings`` totals and whose metrics match the run's accounting.
"""

from __future__ import annotations

import json
import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ObservabilityConfig, StudyConfig, run_study
from repro.cli import main, save_cohort_bundle
from repro.core.timing import ALL_LABELS
from repro.errors import ObservabilityError
from repro.genomics import SyntheticSpec, generate_cohort
from repro.obs import (
    NULL_SINK,
    NULL_SPAN,
    TRACER,
    Histogram,
    MetricsRegistry,
    RunReport,
    Span,
    SpanCollector,
    config_fingerprint,
    exponential_buckets,
    read_jsonl,
    render_span_tree,
    to_chrome_trace,
    traced,
    write_jsonl,
)


# ---------------------------------------------------------------------------
# Tracing core
# ---------------------------------------------------------------------------

#: Arbitrary span-nesting shapes: a tree is a list of child trees.
TREES = st.recursive(
    st.just([]), lambda kids: st.lists(kids, max_size=3), max_leaves=12
)


def _walk(tree, depth=0):
    with TRACER.span(f"node-{depth}", depth=depth):
        for child in tree:
            _walk(child, depth + 1)


class TestSpanNesting:
    @settings(max_examples=60, deadline=None)
    @given(TREES)
    def test_nesting_invariants(self, tree):
        collector = SpanCollector()
        with TRACER.activated(collector):
            _walk(tree)
        spans = collector.spans()
        by_id = {s.span_id: s for s in spans}
        assert len(by_id) == len(spans)  # unique ids
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == 1  # exactly the synthetic root

        order = {s.span_id: i for i, s in enumerate(spans)}
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            # Temporal containment: children start and end inside the parent.
            assert parent.start_ns <= span.start_ns
            assert span.end_ns <= parent.end_ns
            # Completion order: a child is collected before its parent.
            assert order[span.span_id] < order[parent.span_id]
            # Depth attribute mirrors structural depth.
            assert span.attributes["depth"] == parent.attributes["depth"] + 1

    def test_sibling_ordering(self):
        collector = SpanCollector()
        with TRACER.activated(collector):
            with TRACER.span("parent"):
                for i in range(4):
                    with TRACER.span("child", index=i):
                        pass
        children = [s for s in collector.spans() if s.name == "child"]
        starts = [s.start_ns for s in children]
        assert starts == sorted(starts)
        assert [s.attributes["index"] for s in children] == [0, 1, 2, 3]

    def test_event_parenting_and_annotation(self):
        collector = SpanCollector()
        with TRACER.activated(collector):
            with TRACER.span("outer") as handle:
                TRACER.event("ping", n=1)
                handle.annotate(extra="yes")
        event, outer = collector.spans()
        assert event.name == "ping" and event.is_event
        assert event.parent_id == outer.span_id
        assert outer.attributes["extra"] == "yes"

    def test_exception_is_recorded_and_stack_unwound(self):
        collector = SpanCollector()
        with TRACER.activated(collector):
            with pytest.raises(ValueError):
                with TRACER.span("bad"):
                    raise ValueError("boom")
            assert TRACER.current_span_id() is None
        (span,) = collector.spans()
        assert span.attributes["error"] == "ValueError"

    def test_duration_override(self):
        collector = SpanCollector()
        with TRACER.activated(collector):
            with TRACER.span("modelled") as handle:
                handle.set_duration_seconds(2.5)
        (span,) = collector.spans()
        assert span.duration_ns == int(2.5e9)

    def test_traced_decorator(self):
        @traced("decorated", kind="test")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3  # disabled: plain call
        collector = SpanCollector()
        with TRACER.activated(collector):
            assert add(3, 4) == 7
        (span,) = collector.spans()
        assert span.name == "decorated"
        assert span.attributes == {"kind": "test"}

    def test_max_spans_drops_instead_of_growing(self):
        collector = SpanCollector(max_spans=2)
        with TRACER.activated(collector):
            for _ in range(5):
                TRACER.event("e")
        assert len(collector) == 2
        assert collector.dropped == 3

    def test_activation_restores_previous_sink(self):
        assert TRACER.collector is NULL_SINK
        with TRACER.activated(SpanCollector()):
            inner = SpanCollector()
            with TRACER.activated(inner, capture_messages=False):
                assert TRACER.collector is inner
                assert not TRACER.capture_messages
            assert TRACER.capture_messages
        assert TRACER.collector is NULL_SINK
        assert not TRACER.enabled

    def test_thread_local_parenting(self):
        collector = SpanCollector()
        errors = []

        def worker(tag):
            try:
                with TRACER.span("outer", tag=tag):
                    with TRACER.span("inner", tag=tag):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with TRACER.activated(collector):
            threads = [
                threading.Thread(target=worker, args=(t,)) for t in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        spans = collector.spans()
        by_id = {s.span_id: s for s in spans}
        inners = [s for s in spans if s.name == "inner"]
        assert len(inners) == 4
        for inner in inners:
            # Each inner span is parented to the outer span of ITS thread.
            assert by_id[inner.parent_id].attributes["tag"] == inner.attributes["tag"]


# ---------------------------------------------------------------------------
# Histograms / metrics registry
# ---------------------------------------------------------------------------

BOUNDS = exponential_buckets(0.001, 2.0, 32)


class TestHistogram:
    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_percentile_brackets_true_quantile(self, values, q):
        histogram = Histogram("h", bounds=BOUNDS)
        histogram.observe_many(values)
        rank = max(1, math.ceil(q * len(values)))
        true_quantile = sorted(values)[rank - 1]
        estimate = histogram.percentile(q)
        # Upper bracket: the estimate never understates the quantile.
        assert true_quantile <= estimate
        # Lower bracket: the boundary below the estimate is exceeded.
        below = [b for b in BOUNDS if b < estimate]
        if below and estimate in BOUNDS:
            assert true_quantile > below[-1]

    def test_counts_sum_min_max(self):
        histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
        histogram.observe_many([0.5, 5.0, 50.0, 500.0])
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(555.5)
        assert histogram.min == 0.5
        assert histogram.max == 500.0
        assert histogram.mean == pytest.approx(555.5 / 4)
        # Overflow value is reported via the observed maximum.
        assert histogram.percentile(1.0) == 500.0

    def test_empty_percentile_is_none(self):
        assert Histogram("h").percentile(0.5) is None

    def test_invalid_parameters(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", bounds=(3.0, 2.0))
        with pytest.raises(ObservabilityError):
            Histogram("h").percentile(1.5)
        with pytest.raises(ObservabilityError):
            Histogram("h").observe(float("nan"))


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")
        assert len(registry) == 3

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ObservabilityError):
            registry.gauge("name")

    def test_counter_is_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_concurrent_increments(self):
        counter = MetricsRegistry().counter("c")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000

    def test_as_dict_layout(self):
        registry = MetricsRegistry()
        registry.counter("a.count").inc(2)
        registry.gauge("b.gauge").set(1.5)
        registry.histogram("c.hist").observe(3.0)
        dump = registry.as_dict()
        assert dump["counters"] == {"a.count": 2}
        assert dump["gauges"] == {"b.gauge": 1.5}
        assert dump["histograms"]["c.hist"]["count"] == 1
        json.dumps(dump)  # JSON-safe


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


def _sample_spans():
    collector = SpanCollector()
    with TRACER.activated(collector):
        with TRACER.span("study", study_id="s"):
            with TRACER.span("phase", label="LD analysis"):
                TRACER.event("net.send", wire_bytes=128, tag="ld")
            with TRACER.span("phase", label="LR-test analysis"):
                pass
    return collector.spans()


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        spans = _sample_spans()
        path = str(tmp_path / "trace.jsonl")
        assert write_jsonl(spans, path) == len(spans)
        parsed = read_jsonl(path)
        assert parsed == spans  # dataclass equality: loss-free round trip

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(_sample_spans(), path)
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                payload = json.loads(line)
                assert {"name", "span_id", "start_ns", "duration_ns"} <= set(payload)

    def test_malformed_jsonl_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ObservabilityError):
            read_jsonl(str(path))
        path.write_text('{"name": "x"}\n')  # missing required fields
        with pytest.raises(ObservabilityError):
            read_jsonl(str(path))

    def test_chrome_trace_format(self):
        spans = _sample_spans()
        document = to_chrome_trace(spans)
        events = document["traceEvents"]
        assert len(events) == len(spans)
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1  # the net.send event
        for event, span in zip(events, spans):
            assert event["ts"] == pytest.approx(span.start_ns / 1000.0)
            assert event["args"] == span.attributes
        for event in complete:
            assert event["dur"] >= 0.0
        json.dumps(document)

    def test_render_span_tree(self):
        text = render_span_tree(_sample_spans())
        lines = text.splitlines()
        assert lines[0].startswith("study")
        assert any(line.startswith("  phase") for line in lines)
        assert any("net.send" in line for line in lines)

    def test_render_elides_event_floods(self):
        collector = SpanCollector()
        with TRACER.activated(collector):
            with TRACER.span("root"):
                for i in range(10):
                    TRACER.event("net.send", i=i)
        text = render_span_tree(collector.spans(), max_events=3)
        assert "7 more events" in text


# ---------------------------------------------------------------------------
# Null sink guard: disabled observability records and allocates nothing
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tiny_cohort():
    cohort, _ = generate_cohort(
        SyntheticSpec(num_snps=60, num_case=80, num_control=70, seed=11)
    )
    return cohort


class TestNullSinkGuard:
    def test_null_sink_cannot_hold_state(self):
        # Structural guarantee: no __dict__, no slots — nothing to grow.
        assert type(NULL_SINK).__slots__ == ()
        assert not hasattr(NULL_SINK, "__dict__")
        assert len(NULL_SINK) == 0
        assert NULL_SINK.spans() == ()

    def test_disabled_span_is_the_shared_singleton(self):
        assert TRACER.span("anything", a=1, b=2) is NULL_SPAN
        assert TRACER.event("anything", a=1) is None
        assert TRACER.span("x").annotate(k="v") is NULL_SPAN

    def test_disabled_protocol_run_records_nothing(self, tiny_cohort):
        assert not TRACER.enabled
        assert TRACER.collector is NULL_SINK
        result = run_study(
            tiny_cohort, StudyConfig(snp_count=60, study_id="untraced"), 2
        )
        # The run exercised every instrumented layer (phases, ECALLs,
        # sends, buffer registration) against the null sink:
        assert result.observability is None
        assert TRACER.collector is NULL_SINK
        assert len(NULL_SINK) == 0 and NULL_SINK.spans() == ()
        assert TRACER.current_span_id() is None


# ---------------------------------------------------------------------------
# End to end: traced runs, RunReport, CLI
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_run(tiny_cohort):
    config = StudyConfig(
        snp_count=60,
        study_id="traced",
        observability=ObservabilityConfig.tracing(),
    )
    return config, run_study(tiny_cohort, config, 3)


class TestTracedRun:
    def test_report_attached(self, traced_run):
        _, result = traced_run
        report = result.observability
        assert isinstance(report, RunReport)
        assert report.study_id == "traced"
        assert report.meta["num_members"] == 3
        assert report.meta["spans_dropped"] == 0

    def test_phase_spans_sum_to_phase_timings(self, traced_run):
        _, result = traced_run
        phases = result.observability.phase_seconds()
        assert set(phases) == set(ALL_LABELS)
        for label in ALL_LABELS:
            assert phases[label] == pytest.approx(
                result.timings.get(label), abs=1e-6
            )
        assert sum(phases.values()) == pytest.approx(
            result.timings.total_seconds, abs=1e-5
        )

    def test_span_taxonomy(self, traced_run):
        _, result = traced_run
        counts = result.observability.span_counts()
        assert counts["study"] == 1
        assert counts["phase"] == 4
        assert counts["round"] >= 3
        assert counts["ecall"] >= counts["round"]
        assert counts["net.send"] == result.network_messages
        by_id = {s.span_id: s for s in result.observability.spans}
        study = next(s for s in result.observability.spans if s.name == "study")
        for span in result.observability.spans:
            if span.name == "phase":
                assert span.parent_id == study.span_id
            if span.name == "round":
                assert by_id[span.parent_id].name in ("phase", "ecall")

    def test_traced_message_bytes_match_accounting(self, traced_run):
        _, result = traced_run
        sends = [
            s for s in result.observability.spans if s.name == "net.send"
        ]
        assert sum(s.attributes["wire_bytes"] for s in sends) == result.network_bytes

    def test_metrics_match_result(self, traced_run):
        _, result = traced_run
        metrics = result.observability.metrics
        assert metrics["counters"]["net.messages"] == result.network_messages
        assert metrics["counters"]["net.wire_bytes"] == result.network_bytes
        total_ms = metrics["gauges"]["phase.total_ms"]
        assert total_ms == pytest.approx(
            result.timings.total_seconds * 1000.0, rel=1e-6
        )
        for gdo, peak in result.enclave_peak_memory.items():
            key = f"tee.peak_memory_bytes.{gdo.replace('-', '_')}"
            assert metrics["gauges"][key] == peak

    def test_report_json_round_trip(self, traced_run, tmp_path):
        _, result = traced_run
        report = result.observability
        clone = RunReport.from_json(report.to_json())
        assert clone.spans == report.spans
        assert clone.metrics == report.metrics
        assert clone.config_fingerprint == report.config_fingerprint
        path = str(tmp_path / "report.json")
        report.save(path)
        assert RunReport.load(path).spans == report.spans

    def test_newer_schema_rejected(self, traced_run):
        _, result = traced_run
        payload = result.observability.to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ObservabilityError):
            RunReport.from_dict(payload)

    def test_render_mentions_phases_and_study(self, traced_run):
        _, result = traced_run
        text = result.observability.render()
        assert "traced" in text
        for label in ALL_LABELS:
            assert label in text

    def test_fingerprint_ignores_observability_only(self, traced_run):
        config, _ = traced_run
        untraced = StudyConfig(snp_count=60, study_id="traced")
        assert config_fingerprint(config) == config_fingerprint(untraced)
        other = StudyConfig(snp_count=61, study_id="traced")
        assert config_fingerprint(config) != config_fingerprint(other)

    def test_capture_messages_off(self, tiny_cohort):
        config = StudyConfig(
            snp_count=60,
            study_id="no-messages",
            observability=ObservabilityConfig.tracing(capture_messages=False),
        )
        result = run_study(tiny_cohort, config, 2)
        counts = result.observability.span_counts()
        assert "net.send" not in counts
        assert "net.recv" not in counts
        assert counts["phase"] == 4

    def test_max_spans_cap(self, tiny_cohort):
        config = StudyConfig(
            snp_count=60,
            study_id="capped",
            observability=ObservabilityConfig.tracing(max_spans=10),
        )
        result = run_study(tiny_cohort, config, 2)
        assert len(result.observability.spans) == 10
        assert result.observability.meta["spans_dropped"] > 0


class TestCli:
    @pytest.fixture()
    def cohort_file(self, tmp_path, tiny_cohort):
        path = str(tmp_path / "cohort.npz")
        save_cohort_bundle(path, tiny_cohort)
        return path

    def test_run_trace_and_report(self, cohort_file, tmp_path, capsys):
        trace_path = str(tmp_path / "out.jsonl")
        report_path = str(tmp_path / "report.json")
        assert main(
            [
                "run",
                "--cohort", cohort_file,
                "--members", "2",
                "--trace", trace_path,
                "--report", report_path,
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "trace written to" in out
        assert "run report written to" in out

        # Acceptance: the JSONL trace is valid and its phase spans sum
        # (within tolerance) to the PhaseTimings totals the CLI printed.
        spans = read_jsonl(trace_path)
        assert spans
        phase_ms = sum(
            s.duration_seconds for s in spans if s.name == "phase"
        ) * 1000.0
        report = RunReport.load(report_path)
        assert phase_ms == pytest.approx(
            report.metrics["gauges"]["phase.total_ms"], abs=1e-3
        )

    def test_report_command(self, cohort_file, tmp_path, capsys):
        report_path = str(tmp_path / "report.json")
        chrome_path = str(tmp_path / "chrome.json")
        main(["run", "--cohort", cohort_file, "--members", "2",
              "--report", report_path])
        capsys.readouterr()
        assert main(["report", report_path, "--chrome", chrome_path]) == 0
        out = capsys.readouterr().out
        assert "RunReport" in out
        assert "Phases" in out
        with open(chrome_path, encoding="utf-8") as handle:
            assert "traceEvents" in json.load(handle)

    def test_report_rejects_garbage(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{]")
        assert main(["report", str(path)]) == 1
        assert "error" in capsys.readouterr().err
