"""AES block cipher: FIPS-197 known answers, round trips, error paths."""

from __future__ import annotations

import pytest

from repro.crypto.aes import AES, BLOCK_SIZE, INV_SBOX, SBOX, expand_key
from repro.errors import InvalidKeyError

#: FIPS-197 Appendix C known-answer vectors (plaintext is shared).
_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
_VECTORS = [
    (bytes(range(16)), "69c4e0d86a7b0430d8cdb78070b4c55a"),
    (bytes(range(24)), "dda97ca4864cdfe06eaf70a0ec0d7191"),
    (bytes(range(32)), "8ea2b7ca516745bfeafc49904b496089"),
]


@pytest.mark.parametrize("key,expected", _VECTORS)
def test_fips197_known_answers(key, expected):
    assert AES(key).encrypt_block(_PLAINTEXT).hex() == expected


@pytest.mark.parametrize("key,expected", _VECTORS)
def test_fips197_decrypt_inverts(key, expected):
    assert AES(key).decrypt_block(bytes.fromhex(expected)) == _PLAINTEXT


def test_sbox_is_a_permutation():
    assert sorted(SBOX) == list(range(256))
    assert sorted(INV_SBOX) == list(range(256))


def test_sbox_inverse_consistency():
    for value in range(256):
        assert INV_SBOX[SBOX[value]] == value


def test_sbox_known_entries():
    # FIPS-197 Figure 7 spot checks.
    assert SBOX[0x00] == 0x63
    assert SBOX[0x01] == 0x7C
    assert SBOX[0x53] == 0xED
    assert SBOX[0xFF] == 0x16


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_roundtrip_random_blocks(key_len):
    from repro.crypto.rng import DeterministicRng

    rng = DeterministicRng(f"aes-{key_len}")
    cipher = AES(rng.bytes(key_len))
    for _ in range(20):
        block = rng.bytes(BLOCK_SIZE)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_key_schedule_length():
    assert len(expand_key(bytes(16))) == 4 * 11
    assert len(expand_key(bytes(24))) == 4 * 13
    assert len(expand_key(bytes(32))) == 4 * 15


@pytest.mark.parametrize("bad_len", [0, 8, 15, 17, 31, 33, 64])
def test_invalid_key_length_rejected(bad_len):
    with pytest.raises(InvalidKeyError):
        AES(bytes(bad_len))


@pytest.mark.parametrize("bad_len", [0, 15, 17, 32])
def test_invalid_block_length_rejected(bad_len):
    cipher = AES(bytes(16))
    with pytest.raises(ValueError):
        cipher.encrypt_block(bytes(bad_len))
    with pytest.raises(ValueError):
        cipher.decrypt_block(bytes(bad_len))


def test_distinct_keys_distinct_ciphertexts():
    block = bytes(16)
    one = AES(bytes(16)).encrypt_block(block)
    two = AES(bytes([1] * 16)).encrypt_block(block)
    assert one != two


def test_encryption_is_not_identity():
    block = bytes(range(16))
    assert AES(bytes(32)).encrypt_block(block) != block
