"""GWAS statistics substrate.

* :mod:`~repro.stats.contingency` — singlewise/pairwise tables.
* :mod:`~repro.stats.maf` — global minor-allele frequencies (Phase 1).
* :mod:`~repro.stats.chisq` — association tests and SNP ranking.
* :mod:`~repro.stats.ld` — r-squared linkage from pooled moments (Phase 2).
* :mod:`~repro.stats.lr_test` — SecureGenome LR-test and the empirical
  safe-subset search (Phase 3).
* :mod:`~repro.stats.power` — analytical power approximations (ablation).
"""

from .chisq import (
    chi_square_pvalues,
    most_ranked,
    paper_chi_square,
    pearson_chi_square,
    rank_pvalues,
)
from .contingency import (
    PairwiseTable,
    SinglewiseTable,
    pairwise_table,
    singlewise_table,
)
from .ld import PairMoments, is_dependent, ld_pvalue, r_squared, r_squared_direct
from .lr_test import (
    LrSelectionResult,
    detection_threshold,
    empirical_power,
    lr_matrix,
    lr_scores,
    lr_weights,
    select_safe_subset,
)
from .maf import aggregate_counts, allele_frequencies, folded_maf, maf_filter
from .power import (
    LrMoments,
    analytical_power,
    lr_moments,
    power_curve,
    select_safe_subset_analytical,
)
from .utility import (
    UtilityReport,
    retention_rate,
    significance_mass_retained,
    top_k_recall,
    utility_report,
)

__all__ = [
    "chi_square_pvalues",
    "most_ranked",
    "paper_chi_square",
    "pearson_chi_square",
    "rank_pvalues",
    "PairwiseTable",
    "SinglewiseTable",
    "pairwise_table",
    "singlewise_table",
    "PairMoments",
    "is_dependent",
    "ld_pvalue",
    "r_squared",
    "r_squared_direct",
    "LrSelectionResult",
    "detection_threshold",
    "empirical_power",
    "lr_matrix",
    "lr_scores",
    "lr_weights",
    "select_safe_subset",
    "aggregate_counts",
    "allele_frequencies",
    "folded_maf",
    "maf_filter",
    "LrMoments",
    "analytical_power",
    "lr_moments",
    "power_curve",
    "select_safe_subset_analytical",
    "UtilityReport",
    "retention_rate",
    "significance_mass_retained",
    "top_k_recall",
    "utility_report",
]
