"""R6/R7/R8 — the whole-program dataflow rules.

These rules ride on the interprocedural taint analysis and only run
under ``repro lint --flow`` (or ``flow.enabled = true`` in the config):

* **R6 secret-leak** — a secret (genotype, phenotype, key material,
  sealed plaintext, per-SNP partial) reaches a leak sink (logging,
  metrics, tracer, run report, raw wire send, exception payload, CLI
  output) without passing a sanctioned sink or declassifier first.
* **R7 boundary-crossing** — a function inside the enclave scope
  returns or yields tainted data to a caller *outside* the boundary
  through something other than a declared ECALL result path or a
  declassifier.
* **R8 declassification-audit** — every declassifier call site must
  carry an inline ``# lint: declassify(<reason>)`` marker, and every
  marker in the program is inventoried in the JSON report so the
  release surface is reviewable as a single list.

Each rule collects the modules it sees during ``check`` and runs the
shared (memoized) analysis once in ``finalize`` — R6, R7 and R8 all
reuse the same :class:`~repro.lint.flow.analysis.FlowResult`.
"""

from __future__ import annotations

import re
from typing import Any, ClassVar, Dict, Iterable, List, Mapping, Optional, Tuple

from ..astutil import innermost_extent, statement_extents
from ..findings import Finding, Severity
from ..rules import ModuleInfo, Rule, register
from .model import TaintModel

#: ``# lint: declassify(retained SNP set is a protocol output)``.
DECLASSIFY_MARKER = re.compile(
    r"#\s*lint:\s*declassify\((?P<reason>[^)]*)\)"
)


def find_declassify_marker(text: str) -> Optional["re.Match[str]"]:
    """The declassify marker on ``text``, ignoring quoted mentions.

    Docstrings and messages that *describe* the marker syntax wrap it
    in quotes or backticks; a real marker's ``#`` is preceded only by
    code or whitespace.
    """
    match = DECLASSIFY_MARKER.search(text)
    if match is None:
        return None
    if match.start() > 0 and text[match.start() - 1] in "'\"`":
        return None
    return match


class _FlowRule(Rule):
    """Shared plumbing: module collection + lazy shared analysis."""

    requires_flow: ClassVar[bool] = True
    default_scopes: ClassVar[Tuple[str, ...]] = ("*",)

    def __init__(self, options: Mapping[str, Any]):
        super().__init__(options)
        self.modules: List[ModuleInfo] = []
        self.model = TaintModel.from_config(
            self.options.get("__flow__", {}) or {}
        )
        self._result: Optional[Any] = None

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        self.modules.append(module)
        return ()

    def flow_result(self):  # -> FlowResult (lazy import avoids a cycle)
        if self._result is None:
            from .analysis import analyze

            self._result = analyze(self.modules, self.model)
        return self._result

    def _site_finding(self, site, message: str) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=site.path,
            module=site.module,
            line=site.line,
            column=site.column,
            message=message,
            line_content=site.content,
        )


@register
class SecretLeakRule(_FlowRule):
    """R6: taint reaches a leak sink without a sanctioned sanitizer."""

    rule_id = "R6"
    name = "secret-leak"
    rationale = (
        "Genotype data, per-SNP counts and key material must only leave "
        "the program through authenticated-channel encryption or sealing "
        "(Pascoal et al., §5 — the enclave is the only trusted component)."
    )
    severity = Severity.ERROR

    def finalize(self) -> Iterable[Finding]:
        result = self.flow_result()
        for leak in result.leaks:
            kinds = ", ".join(sorted(leak.taints))
            message = (
                f"secret data ({kinds}) reaches {leak.sink_label} sink "
                f"'{leak.sink_name}' without a sanctioned sanitizer"
            )
            if leak.via:
                message += " via " + " -> ".join(leak.via)
            yield self._site_finding(leak.site, message)

    def artifacts(self) -> Mapping[str, Any]:
        result = self.flow_result()
        return {
            "callgraph": result.graph.as_dict(),
            "flow": {
                "rounds": result.rounds,
                "functions_analyzed": len(result.summaries),
                "source_calls": [
                    {
                        "kind": call.kind,
                        "caller": call.caller,
                        "path": call.site.path,
                        "line": call.site.line,
                    }
                    for call in result.source_calls
                ],
                "tainted_returns": result.tainted_functions(),
            },
        }


@register
class BoundaryCrossingRule(_FlowRule):
    """R7: enclave-scope taint returned to a non-enclave caller."""

    rule_id = "R7"
    name = "boundary-crossing"
    rationale = (
        "Only declared ECALL result paths and audited declassifiers may "
        "carry secret-derived values across the enclave trust boundary; "
        "any other crossing widens the attack surface the attestation "
        "argument depends on."
    )
    severity = Severity.ERROR

    def finalize(self) -> Iterable[Finding]:
        result = self.flow_result()
        for crossing in result.crossings:
            kinds = ", ".join(sorted(crossing.kinds))
            yield self._site_finding(
                crossing.site,
                f"'{crossing.caller}' (outside the "
                f"{self.model.boundary_scope} boundary) receives secret "
                f"data ({kinds}) from enclave function "
                f"'{crossing.callee}' outside declared ECALL result paths",
            )


@register
class DeclassificationAuditRule(_FlowRule):
    """R8: every declassifier call site carries an inline justification."""

    rule_id = "R8"
    name = "declassification-audit"
    rationale = (
        "Every release of secret-derived data must be an explicit, "
        "reviewable decision: a declassifier call without a "
        "'# lint: declassify(<reason>)' marker is an unaudited release."
    )
    severity = Severity.ERROR

    def __init__(self, options: Mapping[str, Any]):
        super().__init__(options)
        self._inventory: List[Dict[str, Any]] = []

    def _marker_for(
        self, module: ModuleInfo, line: int, extents
    ) -> Optional[str]:
        """The declassify reason anchored to the statement at ``line``."""
        extent = innermost_extent(extents, line) or (line, line)
        for lineno in range(extent[0], extent[1] + 1):
            if 1 <= lineno <= len(module.lines):
                match = find_declassify_marker(module.lines[lineno - 1])
                if match is not None:
                    return match.group("reason").strip()
        return None

    def finalize(self) -> Iterable[Finding]:
        result = self.flow_result()
        modules = {module.module: module for module in self.modules}
        extents_by_module = {
            name: statement_extents(module.tree)
            for name, module in modules.items()
        }
        self._inventory = []
        anchored: Dict[Tuple[str, int], bool] = {}

        for call in result.declass_calls:
            module = modules.get(call.site.module)
            reason: Optional[str] = None
            if module is not None:
                extents = extents_by_module[module.module]
                reason = self._marker_for(module, call.site.line, extents)
                extent = innermost_extent(extents, call.site.line) or (
                    call.site.line,
                    call.site.line,
                )
                for lineno in range(extent[0], extent[1] + 1):
                    anchored[(module.module, lineno)] = True
            entry: Dict[str, Any] = {
                "target": call.target,
                "caller": call.caller,
                "module": call.site.module,
                "path": call.site.path,
                "line": call.site.line,
                "reason": reason,
                "marked": reason is not None and reason != "",
            }
            self._inventory.append(entry)
            if reason is None:
                yield self._site_finding(
                    call.site,
                    f"declassifier call '{call.target}' lacks a "
                    "'# lint: declassify(<reason>)' marker",
                )
            elif not reason:
                yield self._site_finding(
                    call.site,
                    f"declassify marker on '{call.target}' call has an "
                    "empty reason — state why this release is safe",
                )

        # Inventory orphan markers too: a declassify comment with no
        # declassifier call on its statement is stale documentation.
        for name, module in sorted(modules.items()):
            extents = extents_by_module[name]
            for lineno, text in enumerate(module.lines, start=1):
                match = find_declassify_marker(text)
                if match is None:
                    continue
                extent = innermost_extent(extents, lineno) or (lineno, lineno)
                covered = any(
                    anchored.get((name, line))
                    for line in range(extent[0], extent[1] + 1)
                )
                if covered:
                    continue
                self._inventory.append(
                    {
                        "target": None,
                        "caller": None,
                        "module": name,
                        "path": module.display_path,
                        "line": lineno,
                        "reason": match.group("reason").strip(),
                        "marked": True,
                        "orphan": True,
                    }
                )

        self._inventory.sort(
            key=lambda entry: (entry["path"], entry["line"])
        )

    def artifacts(self) -> Mapping[str, Any]:
        return {"declassifications": list(self._inventory)}
