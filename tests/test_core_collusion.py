"""Collusion-tolerant GenDPR (Section 5.6)."""

from __future__ import annotations

import math

import pytest

from repro import CollusionPolicy, StudyConfig, run_study
from repro.errors import CollusionConfigError


class TestCollusionPolicy:
    def test_none(self):
        assert not CollusionPolicy.none().enabled

    def test_static(self):
        policy = CollusionPolicy.static(2)
        assert policy.enabled and policy.f_values == (2,)
        with pytest.raises(CollusionConfigError):
            CollusionPolicy.static(0)

    def test_conservative(self):
        assert CollusionPolicy.conservative(4).f_values == (1, 2, 3)
        with pytest.raises(CollusionConfigError):
            CollusionPolicy.conservative(1)

    def test_validate_for(self):
        CollusionPolicy.static(2).validate_for(3)
        with pytest.raises(CollusionConfigError):
            CollusionPolicy.static(3).validate_for(3)

    def test_duplicates_rejected(self):
        with pytest.raises(CollusionConfigError):
            CollusionPolicy((1, 1))

    def test_negative_rejected(self):
        with pytest.raises(CollusionConfigError):
            CollusionPolicy((-1,))


class TestCollusionRun:
    def test_report_present(self, collusion_result):
        report = collusion_result.collusion
        assert report is not None
        assert report.baseline_safe  # plain release non-empty
        # G=3, f=1 -> C(3,2) = 3 combinations.
        assert report.combinations_evaluated == 3
        for outcome in report.outcomes:
            assert outcome.f == 1
            assert len(outcome.member_ids) == 2

    def test_final_set_is_intersection_compatible(self, collusion_result):
        """Every SNP in the tolerant release survived every combination."""
        final = set(collusion_result.l_safe)
        for outcome in collusion_result.collusion.outcomes:
            assert final <= set(outcome.safe_snps)

    def test_vulnerable_accounting(self, collusion_result):
        report = collusion_result.collusion
        vulnerable = report.vulnerable_snps(tuple(collusion_result.l_safe))
        assert set(vulnerable) == set(report.baseline_safe) - set(
            collusion_result.l_safe
        )

    def test_conservative_mode_combination_count(self, small_cohort):
        config = StudyConfig(
            snp_count=small_cohort.num_snps,
            collusion=CollusionPolicy.conservative(3),
            study_id="conservative",
        )
        result = run_study(small_cohort, config, 3)
        expected = sum(math.comb(3, 3 - f) for f in (1, 2))
        assert result.collusion.combinations_evaluated == expected

    def test_conservative_mode_checks_more_combinations(
        self, small_cohort, collusion_result
    ):
        """f={1,2} evaluates strictly more combinations than f=1 alone,
        and its release survives every one of them.

        (The conservative safe set is *not* necessarily a subset of the
        static one: intersecting at each phase changes the LD walk's
        pairings, so different block representatives can survive.)
        """
        config = StudyConfig(
            snp_count=small_cohort.num_snps,
            collusion=CollusionPolicy.conservative(3),
            seed=5,
            study_id="test-collusion",  # same seed/id -> same leader
        )
        conservative = run_study(small_cohort, config, 3)
        assert (
            conservative.collusion.combinations_evaluated
            > collusion_result.collusion.combinations_evaluated
        )
        final = set(conservative.l_safe)
        for outcome in conservative.collusion.outcomes:
            assert final <= set(outcome.safe_snps)

    def test_f_equals_g_minus_one(self, small_cohort):
        """Single-GDO combinations: each member's data alone is checked."""
        config = StudyConfig(
            snp_count=small_cohort.num_snps,
            collusion=CollusionPolicy.static(2),
            study_id="f-g-1",
        )
        result = run_study(small_cohort, config, 3)
        assert result.collusion.combinations_evaluated == 3
        for outcome in result.collusion.outcomes:
            assert len(outcome.member_ids) == 1

    def test_infeasible_f_rejected(self, small_cohort):
        config = StudyConfig(
            snp_count=small_cohort.num_snps,
            collusion=CollusionPolicy.static(3),
            study_id="bad-f",
        )
        with pytest.raises(CollusionConfigError):
            run_study(small_cohort, config, 3)

    def test_plain_baseline_matches_plain_run(self, small_cohort, collusion_result):
        """The report's baseline equals an actual f=0 GenDPR run."""
        config = StudyConfig(
            snp_count=small_cohort.num_snps,
            seed=5,
            study_id="test-collusion",
        )
        plain = run_study(small_cohort, config, 3)
        assert list(collusion_result.collusion.baseline_safe) == plain.l_safe
