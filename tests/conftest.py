"""Shared fixtures.

Expensive artifacts (cohorts, full protocol runs) are session-scoped:
many tests assert different properties of the same run, and results are
deterministic, so re-running the protocol per test would only burn time.
"""

from __future__ import annotations

import pytest

from repro import (
    CollusionPolicy,
    PrivacyThresholds,
    StudyConfig,
    generate_cohort,
    partition_cohort,
    run_study,
)
from repro.core.federation import build_federation
from repro.core.protocol import GenDPRProtocol
from repro.genomics import SyntheticSpec

#: Small-but-meaningful cohort dimensions used across the suite.
SMALL_SNPS = 240
SMALL_CASE = 360
SMALL_CONTROL = 300


@pytest.fixture(scope="session")
def small_spec() -> SyntheticSpec:
    return SyntheticSpec(
        num_snps=SMALL_SNPS,
        num_case=SMALL_CASE,
        num_control=SMALL_CONTROL,
        num_sites=6,
        site_effect_sd=0.04,
        seed=77,
    )


@pytest.fixture(scope="session")
def small_cohort(small_spec):
    cohort, _truth = generate_cohort(small_spec)
    return cohort


@pytest.fixture(scope="session")
def small_truth(small_spec):
    _cohort, truth = generate_cohort(small_spec)
    return truth


@pytest.fixture(scope="session")
def study_config(small_cohort) -> StudyConfig:
    return StudyConfig(
        snp_count=small_cohort.num_snps,
        thresholds=PrivacyThresholds(),
        seed=5,
        study_id="test-study",
    )


@pytest.fixture(scope="session")
def datasets(small_cohort):
    return partition_cohort(small_cohort, 3)


@pytest.fixture(scope="session")
def federation(small_cohort, study_config, datasets):
    return build_federation(study_config, datasets, small_cohort)


@pytest.fixture(scope="session")
def study_result(federation):
    return GenDPRProtocol(federation).run()


@pytest.fixture(scope="session")
def collusion_result(small_cohort):
    config = StudyConfig(
        snp_count=small_cohort.num_snps,
        collusion=CollusionPolicy.static(1),
        seed=5,
        study_id="test-collusion",
    )
    return run_study(small_cohort, config, num_members=3)
