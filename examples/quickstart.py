#!/usr/bin/env python3
"""Quickstart: run one GenDPR study end to end.

Builds a synthetic federation cohort, runs the three-phase distributed
verification across three genome data owners, and prints what a GWAS
federation actually gets out of GenDPR: the safe SNP subset, the
per-phase timings, and the traffic that crossed between sites.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import StudyConfig, SyntheticSpec, generate_cohort, run_study


def main() -> None:
    # 1. A study cohort: 1,200 case genomes (the population with the
    #    phenotype of interest) and 1,000 controls, over 800 SNPs.  The
    #    control population doubles as the public reference set, as in
    #    the paper's evaluation.
    spec = SyntheticSpec(num_snps=800, num_case=1200, num_control=1000, seed=1)
    cohort, _truth = generate_cohort(spec)
    print(f"Cohort: {cohort.describe()}")

    # 2. Study parameters: the SecureGenome thresholds the paper adopts
    #    (MAF >= 0.05, LD p-value >= 1e-5, LR-test alpha=0.1 / beta=0.9)
    #    are the defaults of PrivacyThresholds.
    config = StudyConfig(snp_count=800, study_id="quickstart")

    # 3. Run the distributed protocol over a 3-member federation.  Each
    #    member's genomes stay on its premises; only encrypted
    #    intermediate statistics move between the (simulated) enclaves.
    result = run_study(cohort, config, num_members=3)

    print(f"\n{result.summary()}\n")
    print(f"Leader GDO:          {result.leader_id}")
    print(f"Desired SNPs (L_des): {result.l_des}")
    print(f"After MAF     (L'):   {result.retained_after_maf}")
    print(f"After LD      (L''):  {result.retained_after_ld}")
    print(f"Safe release (L_safe): {result.retained_after_lr}")
    print(f"Residual attack power: {result.release_power:.3f} "
          f"(threshold {config.thresholds.power_threshold})")

    print("\nPer-task running time (ms):")
    for label, ms in result.timings.as_milliseconds().items():
        print(f"  {label:<30s} {ms:10.1f}")

    print(f"\nInter-site traffic: {result.network_bytes:,} bytes in "
          f"{result.network_messages} messages")
    print(f"Raw genomes held in federation: {cohort.case.nbytes:,} bytes "
          f"(never transmitted)")


if __name__ == "__main__":
    main()
