"""Machine-readable run reports.

A :class:`RunReport` is the single artifact a traced run leaves behind:
spans, the metrics snapshot, a fingerprint of the study configuration
that produced it, and free-form metadata — one JSON document that a
dashboard, a regression checker, or ``repro report`` can consume
without re-running anything.  The schema is documented in
``docs/OBSERVABILITY.md``; ``schema_version`` gates forward
compatibility.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import ObservabilityError
from .export import render_span_tree, span_from_dict, span_to_dict
from .span import Span

SCHEMA_VERSION = 1

#: Config fields that do not affect study *outcomes* and are excluded
#: from the fingerprint, so traced and untraced runs of one study match —
#: as do sequential and parallel executions, whose outcome equivalence
#: the test suite enforces.  Fault injection and resilience knobs are
#: excluded for the same reason: a faulted run either completes with
#: bit-identical outcomes or aborts with a classified error (enforced
#: by the chaos suite), so they are not part of a run's identity.  The
#: integrity checks verify outcomes rather than change them, so they
#: are excluded on the same grounds.
FINGERPRINT_EXCLUDED_FIELDS = (
    "observability",
    "execution",
    "faults",
    "resilience",
    "integrity",
)


def config_fingerprint(config: Any) -> str:
    """SHA-256 over a canonical JSON rendering of a (dataclass) config.

    Observability switches are excluded (see
    :data:`FINGERPRINT_EXCLUDED_FIELDS`): enabling tracing must not
    change a run's identity.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    elif isinstance(config, dict):
        payload = dict(config)
    else:
        raise ObservabilityError(
            f"cannot fingerprint a {type(config).__name__}; "
            "expected a dataclass or dict"
        )
    for excluded in FINGERPRINT_EXCLUDED_FIELDS:
        payload.pop(excluded, None)
    canonical = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class RunReport:
    """Spans + metrics + config fingerprint of one run, as one document."""

    study_id: str
    config_fingerprint: str
    spans: List[Span] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # -- (de)serialisation ----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "study_id": self.study_id,
            "config_fingerprint": self.config_fingerprint,
            "meta": dict(self.meta),
            "metrics": self.metrics,
            "spans": [span_to_dict(span) for span in self.spans],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunReport":
        try:
            version = int(payload["schema_version"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError("run report misses schema_version") from exc
        if version > SCHEMA_VERSION:
            raise ObservabilityError(
                f"run report schema v{version} is newer than supported "
                f"v{SCHEMA_VERSION}"
            )
        try:
            return cls(
                study_id=str(payload["study_id"]),
                config_fingerprint=str(payload["config_fingerprint"]),
                spans=[span_from_dict(s) for s in payload.get("spans", [])],
                metrics=dict(payload.get("metrics") or {}),
                meta=dict(payload.get("meta") or {}),
                schema_version=version,
            )
        except (KeyError, TypeError) as exc:
            raise ObservabilityError(f"malformed run report: {exc}") from exc

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"run report is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ObservabilityError("run report must be a JSON object")
        return cls.from_dict(payload)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path, encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    # -- queries -----------------------------------------------------------------

    def phase_seconds(self) -> Dict[str, float]:
        """Corrected seconds per protocol phase, summed from phase spans."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            if span.name != "phase":
                continue
            label = str(span.attributes.get("label", "?"))
            totals[label] = totals.get(label, 0.0) + span.duration_seconds
        return totals

    def span_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for span in self.spans:
            counts[span.name] = counts.get(span.name, 0) + 1
        return counts

    # -- rendering --------------------------------------------------------------

    def render(self) -> str:
        """Human-readable summary for ``repro report``."""
        lines = [
            f"RunReport (schema v{self.schema_version})",
            f"  study:       {self.study_id}",
            f"  config:      {self.config_fingerprint[:16]}...",
        ]
        for key, value in sorted(self.meta.items()):
            if key == "quarantined":
                continue  # rendered as its own section below
            lines.append(f"  {key + ':':<12} {value}")

        quarantined = self.meta.get("quarantined") or []
        if quarantined:
            lines.append("")
            lines.append(f"Quarantined nodes ({len(quarantined)}):")
            for report in quarantined:
                lines.append(
                    f"  {report.get('member_id', '?'):<12s} "
                    f"step={report.get('round_kind', '?'):<10s} "
                    f"cause={report.get('cause', '?')} "
                    f"(failovers so far: {report.get('attempts', 0)})"
                )

        phases = self.phase_seconds()
        if phases:
            lines.append("")
            lines.append("Phases (parallel-corrected):")
            for label, seconds in phases.items():
                lines.append(f"  {label:<32s} {seconds * 1000.0:10.1f} ms")
            lines.append(
                f"  {'Total':<32s} {sum(phases.values()) * 1000.0:10.1f} ms"
            )

        counters: Dict[str, Any] = self.metrics.get("counters", {})
        gauges: Dict[str, Any] = self.metrics.get("gauges", {})
        histograms: Dict[str, Any] = self.metrics.get("histograms", {})
        if counters or gauges or histograms:
            lines.append("")
            lines.append("Metrics:")
            for name, value in sorted(counters.items()):
                lines.append(f"  {name:<36s} {value:,}")
            for name, value in sorted(gauges.items()):
                lines.append(f"  {name:<36s} {value:,.4g}")
            for name, histogram in sorted(histograms.items()):
                count = histogram.get("count", 0)
                p50, p99 = histogram.get("p50"), histogram.get("p99")
                p50_s = "-" if p50 is None else f"{p50:.4g}"
                p99_s = "-" if p99 is None else f"{p99:.4g}"
                lines.append(
                    f"  {name:<36s} n={count:,} p50<={p50_s} p99<={p99_s}"
                )

        counts = self.span_counts()
        if counts:
            summary = ", ".join(f"{n}×{c}" for n, c in sorted(counts.items()))
            lines.append("")
            lines.append(f"Spans ({len(self.spans)} total): {summary}")
            tree = render_span_tree(self.spans)
            if tree:
                lines.append("")
                lines.append(tree)
        return "\n".join(lines)


def phase_durations(spans: List[Span]) -> Dict[str, float]:
    """Phase label → corrected seconds, for a bare span list (no report)."""
    totals: Dict[str, float] = {}
    for span in spans:
        if span.name == "phase":
            label = str(span.attributes.get("label", "?"))
            totals[label] = totals.get(label, 0.0) + span.duration_seconds
    return totals
