"""R1 fixture — enclave-scope module using only sanctioned APIs."""

import time

from repro.crypto.rng import DeterministicRng


def pure_phase(data, meter):
    begin = time.perf_counter()  # sanctioned: monotonic metering clock
    rng = DeterministicRng(b"study-seed")  # sanctioned: seeded DRBG
    mask = rng.bytes(len(data))
    elapsed = time.perf_counter() - begin
    return bytes(a ^ b for a, b in zip(data, mask)), elapsed
