"""The legacy seed catalog: the fixed chaos sweeps as genomes.

Before the fuzzer, chaos coverage was two hand-written sweeps — 24
crash-style plans (``tests/test_chaos.py``) and 18 Byzantine plans
(``tests/test_chaos_byzantine.py``) — each deriving its fault config
and run axes from the seed by fixed rules.  This module is the single
source of those rules: the chaos tiers replay them as regression
suites, and the fuzz engine replays them to anchor its
coverage-frontier comparison (the report's claim is "the corpus
reaches strictly more behaviour keys than these 42 seeds").

Crash points name the leader, and leader election depends on the study
id, so every constructor takes the federation shape explicitly — the
chaos tiers pass their own leader, the engine passes the oracle's.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple

from ..config import FaultConfig
from .genome import PlanGenome

#: The crash-style sweep seeds (tests/test_chaos.py).
CHAOS_SEEDS: Tuple[int, ...] = tuple(range(1, 25))
#: Chaos seeds whose plan additionally crashes the leader mid-study.
CHAOS_CRASH_SEEDS = frozenset(s for s in CHAOS_SEEDS if s % 5 == 0)
#: Chaos seeds whose plan additionally opens a short partition window.
CHAOS_PARTITION_SEEDS = frozenset(s for s in CHAOS_SEEDS if s % 7 == 0)

#: The Byzantine sweep seeds (tests/test_chaos_byzantine.py).
BYZANTINE_SEEDS: Tuple[int, ...] = tuple(range(101, 119))
#: Byzantine seeds arming broadcast equivocation.
BYZANTINE_EQUIVOCATE_SEEDS = frozenset(
    s for s in BYZANTINE_SEEDS if s % 3 == 0
)
#: Byzantine seeds serving a *stale* checkpoint at failover.
BYZANTINE_STALE_SEEDS = frozenset(
    s for s in BYZANTINE_SEEDS if s % 5 == 0 and s % 7 != 0
)
#: Byzantine seeds serving a bit-flipped checkpoint at failover.
BYZANTINE_CORRUPT_SEEDS = frozenset(s for s in BYZANTINE_SEEDS if s % 7 == 0)


def seed_mode(seed: int) -> str:
    """Execution-mode axis: the sweeps alternate by seed parity."""
    return "parallel" if seed % 2 else "sequential"


def seed_f(seed: int) -> int:
    """Collusion axis: two of every four consecutive seeds run f=1."""
    return 1 if seed % 4 >= 2 else 0


def first_follower(members: Sequence[str], leader: str) -> str:
    """The member the sweeps aim partition/flip faults at."""
    return next(m for m in members if m != leader)


def chaos_fault_config(
    seed: int, *, members: Sequence[str], leader: str
) -> FaultConfig:
    """The crash-tier plan of one seed (drop/dup/delay/corrupt mix,
    plus a leader crash on every fifth seed and a partition window on
    every seventh)."""
    chaos = FaultConfig.chaos(seed, intensity=0.15)
    crash_points = (
        ((leader, 4),) if seed in CHAOS_CRASH_SEEDS else ()
    )
    partition_windows = (
        ((first_follower(members, leader), 1 + seed % 6, 2),)
        if seed in CHAOS_PARTITION_SEEDS
        else ()
    )
    return dataclasses.replace(
        chaos, crash_points=crash_points, partition_windows=partition_windows
    )


def byzantine_fault_config(
    seed: int, *, members: Sequence[str], leader: str
) -> FaultConfig:
    """The Byzantine-tier plan of one seed (REPLAY/WITHHOLD base mix,
    equivocation on every third seed, checkpoint tampering on the
    stale/corrupt seeds — paired with one leader crash at ECALL 5 so
    the tampered restore actually happens)."""
    tamper = (
        "corrupt"
        if seed in BYZANTINE_CORRUPT_SEEDS
        else "stale"
        if seed in BYZANTINE_STALE_SEEDS
        else ""
    )
    return FaultConfig.byzantine(
        seed,
        intensity=0.1,
        equivocate_rate=0.35 if seed in BYZANTINE_EQUIVOCATE_SEEDS else 0.0,
        checkpoint_tamper=tamper,
        crash_points=((leader, 5),) if tamper else (),
    )


def chaos_seed_genome(
    seed: int, *, members: Sequence[str], leader: str
) -> PlanGenome:
    """One crash-tier sweep cell as a genome (supervised, no integrity)."""
    return PlanGenome(
        faults=chaos_fault_config(seed, members=members, leader=leader),
        mode=seed_mode(seed),
        f=seed_f(seed),
        shards=1,
        supervised=True,
        integrity=False,
    )


def byzantine_seed_genome(
    seed: int, *, members: Sequence[str], leader: str
) -> PlanGenome:
    """One Byzantine sweep cell as a genome (supervised, integrity on)."""
    return PlanGenome(
        faults=byzantine_fault_config(seed, members=members, leader=leader),
        mode=seed_mode(seed),
        f=seed_f(seed),
        shards=1,
        supervised=True,
        integrity=True,
    )


def legacy_genomes(
    *, members: Sequence[str], leader: str
) -> Tuple[PlanGenome, ...]:
    """All 42 legacy sweep cells, chaos tier first then Byzantine."""
    return tuple(
        chaos_seed_genome(s, members=members, leader=leader)
        for s in CHAOS_SEEDS
    ) + tuple(
        byzantine_seed_genome(s, members=members, leader=leader)
        for s in BYZANTINE_SEEDS
    )
