"""Mutually attested secure channels between enclaves.

All GenDPR communication "is encrypted and happens only between TEEs"
(Section 5.1); GDOs "agree on keys and other credentials during the
remote attestation phase".  This module implements that handshake:

1. Each side draws an ephemeral Diffie-Hellman key pair and a nonce, and
   obtains a platform quote whose report data binds both.
2. The sides exchange :class:`HandshakeMessage`s and verify each other's
   quote against the *expected trusted-code measurement* — an enclave
   running modified code, or a fake enclave, fails here.
3. Both derive the same channel key from the DH secret, bound to the
   pair of enclave identities and nonces.

The resulting :class:`ChannelEndpoint`s AEAD-protect every frame with a
per-direction sequence number, so replayed, reordered or cross-channel
frames are rejected.  Each endpoint additionally folds every frame it
protects or successfully opens into a running SHA-256 *transcript*
digest per direction; enclaves cross-check these digests at phase
boundaries (see :mod:`repro.core.enclave_logic`) to turn host-level
history tampering — withholding or splicing across retries — into a
deterministic :class:`~repro.errors.TranscriptDivergenceError` instead
of a silent divergence.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Tuple

from ..crypto import dh
from ..crypto.authenticated import StreamAead
from ..crypto.rng import DeterministicRng
from ..errors import AttestationError, AuthenticationError, ChannelError
from .attestation import Platform, Quote, QuoteVerifier, pack_report_data
from .enclave import Enclave
from .measurement import Measurement

_NONCE_LEN = 16


@dataclass(frozen=True)
class HandshakeMessage:
    """One side's contribution to the attested key agreement."""

    enclave_id: str
    dh_public: int
    nonce: bytes
    quote: Quote

    def wire_size(self) -> int:
        """Approximate serialized size in bytes (for bandwidth accounting)."""
        return (
            len(self.enclave_id.encode("utf-8"))
            + (self.dh_public.bit_length() + 7) // 8
            + len(self.nonce)
            + len(self.quote.measurement.value)
            + len(self.quote.report_data)
            + len(self.quote.signature)
            + len(self.quote.platform_id.encode("utf-8"))
        )


def _handshake_offer(
    enclave: Enclave, platform: Platform, rng: DeterministicRng
) -> Tuple[dh.KeyPair, HandshakeMessage]:
    keypair = dh.generate_keypair(rng)
    nonce = rng.bytes(_NONCE_LEN)
    public_bytes = keypair.public.to_bytes(
        (dh.SAFE_PRIME.bit_length() + 7) // 8, "big"
    )
    report_data = pack_report_data(
        enclave.enclave_id.encode("utf-8"), public_bytes, nonce
    )
    quote = platform.quote_enclave(enclave, report_data)
    return keypair, HandshakeMessage(
        enclave_id=enclave.enclave_id,
        dh_public=keypair.public,
        nonce=nonce,
        quote=quote,
    )


def _verify_offer(
    message: HandshakeMessage,
    verifier: QuoteVerifier,
    expected_measurement: Measurement,
) -> None:
    verifier.verify(message.quote, expected_measurement)
    public_bytes = message.dh_public.to_bytes(
        (dh.SAFE_PRIME.bit_length() + 7) // 8, "big"
    )
    expected_report = pack_report_data(
        message.enclave_id.encode("utf-8"), public_bytes, message.nonce
    )
    if not hmac.compare_digest(message.quote.report_data, expected_report):
        raise AttestationError(
            "quote report data does not bind the handshake parameters"
        )


class ChannelEndpoint:
    """One enclave's end of an established secure channel."""

    def __init__(
        self,
        local_id: str,
        peer_id: str,
        key: bytes,
    ):
        self.local_id = local_id
        self.peer_id = peer_id
        self._aead = StreamAead(key)
        self._send_seq = 0
        self._recv_seq = 0
        self._closed = False
        # Per-channel state reused across frames (the per-frame fast
        # path): direction prefixes are fixed for the channel lifetime,
        # and the AEAD above keeps its derived key schedule.
        self._send_prefix = self._direction(local_id, peer_id) + b"\x00"
        self._recv_prefix = self._direction(peer_id, local_id) + b"\x00"
        # Running transcript digests, one per direction.  Updating a
        # rolling hash is the only per-frame cost; digests materialise
        # solely in transcript_snapshot() at phase boundaries.  Each is
        # seeded by the *flow* direction (sender->receiver), which both
        # endpoints compute identically — so this end's sent digest and
        # the peer's recv digest agree exactly when both processed the
        # same frame sequence.
        self._sent_transcript = hashlib.sha256(
            b"repro.transcript/v1:" + self._send_prefix
        )
        self._recv_transcript = hashlib.sha256(
            b"repro.transcript/v1:" + self._recv_prefix
        )

    def _direction(self, sender: str, receiver: str) -> bytes:
        return f"dir:{sender}->{receiver}".encode("utf-8")

    def protect(self, payload: bytes, kind: bytes = b"") -> bytes:
        """Encrypt+authenticate an outbound payload into a wire frame."""
        if self._closed:
            raise ChannelError("channel is closed")
        header = self._send_seq.to_bytes(8, "big")
        associated = self._send_prefix + kind + header
        self._send_seq += 1
        frame = header + self._aead.encrypt(payload, associated_data=associated)
        self._sent_transcript.update(frame)
        return frame

    def open(self, frame: bytes, kind: bytes = b"") -> bytes:
        """Verify and decrypt an inbound wire frame (strictly in order)."""
        if self._closed:
            raise ChannelError("channel is closed")
        if len(frame) < 8:
            raise ChannelError("frame too short")
        header, body = frame[:8], frame[8:]
        sequence = int.from_bytes(header, "big")
        if sequence != self._recv_seq:
            raise ChannelError(
                f"out-of-order frame: expected seq {self._recv_seq}, got {sequence}"
            )
        associated = self._recv_prefix + kind + header
        try:
            payload = self._aead.decrypt(body, associated_data=associated)
        except AuthenticationError as exc:
            raise ChannelError("frame failed authentication") from exc
        self._recv_seq += 1
        # Only authenticated frames enter the transcript: a forged or
        # corrupted delivery raised above and must not desynchronise
        # the histories the peers later cross-check.
        self._recv_transcript.update(frame)
        return payload

    def transcript_snapshot(self) -> Tuple[bytes, bytes]:
        """``(sent_digest, recv_digest)`` over all frames so far.

        ``hashlib`` digests are non-destructive, so snapshots can be
        taken at every phase boundary while the transcripts keep
        accumulating.  A healthy channel satisfies
        ``local.sent == peer.recv`` and ``local.recv == peer.sent``
        whenever no frame is in flight.
        """
        return self._sent_transcript.digest(), self._recv_transcript.digest()

    def close(self) -> None:
        self._closed = True

    @staticmethod
    def overhead() -> int:
        """Bytes added per frame (sequence header + AEAD framing)."""
        from ..crypto.authenticated import AEAD_OVERHEAD

        return 8 + AEAD_OVERHEAD


def establish_channel(
    enclave_a: Enclave,
    platform_a: Platform,
    enclave_b: Enclave,
    platform_b: Platform,
    verifier: QuoteVerifier,
    *,
    rng: DeterministicRng,
) -> Tuple[ChannelEndpoint, ChannelEndpoint, int]:
    """Run the mutual attestation handshake between two enclaves.

    Both enclaves must run the same trusted code (equal measurements) —
    GenDPR federations deploy one audited trusted module everywhere.

    Returns ``(endpoint_a, endpoint_b, handshake_bytes)`` where the last
    element is the handshake traffic volume for bandwidth accounting.
    """
    if not enclave_a.measurement.matches(enclave_b.measurement):
        raise AttestationError(
            "enclaves run different trusted code; refusing to pair"
        )
    expected = enclave_a.measurement
    keypair_a, offer_a = _handshake_offer(enclave_a, platform_a, rng.fork("hs-a"))
    keypair_b, offer_b = _handshake_offer(enclave_b, platform_b, rng.fork("hs-b"))

    # Each side validates the other's quote before deriving any key.
    _verify_offer(offer_b, verifier, expected)
    _verify_offer(offer_a, verifier, expected)

    context = b"repro.channel/v1\x00" + b"\x00".join(
        sorted(
            [
                offer_a.enclave_id.encode("utf-8") + offer_a.nonce,
                offer_b.enclave_id.encode("utf-8") + offer_b.nonce,
            ]
        )
    )
    key_a = dh.derive_channel_key(keypair_a, offer_b.dh_public, context=context)
    key_b = dh.derive_channel_key(keypair_b, offer_a.dh_public, context=context)
    # Defensive: cannot happen if DH math is correct; constant-time
    # because the operands are secret channel keys.
    if not hmac.compare_digest(key_a, key_b):
        raise ChannelError("key agreement mismatch")

    endpoint_a = ChannelEndpoint(offer_a.enclave_id, offer_b.enclave_id, key_a)
    endpoint_b = ChannelEndpoint(offer_b.enclave_id, offer_a.enclave_id, key_b)
    handshake_bytes = offer_a.wire_size() + offer_b.wire_size()
    return endpoint_a, endpoint_b, handshake_bytes
