"""Decoder robustness: adversarial bytes must fail cleanly."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.net import decode, encode


@given(st.binary(min_size=0, max_size=200))
@settings(max_examples=200, deadline=None)
def test_random_bytes_never_crash(data):
    """decode() either succeeds or raises SerializationError — nothing else."""
    try:
        decode(data)
    except SerializationError:
        pass


@given(st.binary(min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_truncated_valid_payloads_fail_cleanly(data):
    encoded = encode({"payload": data, "n": len(data)})
    for cut in (1, len(encoded) // 2, len(encoded) - 1):
        with pytest.raises(SerializationError):
            decode(encoded[:cut])


@given(
    st.binary(min_size=8, max_size=80),
    st.integers(min_value=0, max_value=79),
)
@settings(max_examples=100, deadline=None)
def test_bitflipped_payloads_never_crash(data, position):
    encoded = bytearray(encode([data.decode("latin1"), 12, None]))
    if position < len(encoded):
        encoded[position] ^= 0xFF
    try:
        decoded = decode(bytes(encoded))
    except SerializationError:
        return
    # A flip can land in the payload body and still decode; that's fine
    # because the AEAD layer above rejects modified frames — the codec
    # only has to avoid crashing or looping.
    assert decoded is not None or decoded is None


def test_huge_declared_length_rejected():
    # Tag 's' followed by an absurd length must not allocate.
    with pytest.raises(SerializationError):
        decode(b"s" + (2**63).to_bytes(8, "big"))


def test_huge_array_dims_rejected():
    bad = (
        b"a"
        + (3).to_bytes(8, "big")
        + b"<f8"
        + (100).to_bytes(8, "big")  # 100 dimensions
    )
    with pytest.raises(SerializationError):
        decode(bad)


def test_bad_utf8_string_rejected():
    payload = b"\xff\xfe"
    bad = b"s" + len(payload).to_bytes(8, "big") + payload
    with pytest.raises(SerializationError):
        decode(bad)


def test_bad_dtype_rejected():
    name = b"bogus-dtype"
    bad = (
        b"a"
        + len(name).to_bytes(8, "big")
        + name
        + (0).to_bytes(8, "big")
        + (0).to_bytes(8, "big")
    )
    with pytest.raises(SerializationError):
        decode(bad)


def test_non_string_dict_key_payload_rejected():
    # Hand-craft a dict whose key decodes to an int.
    bad = b"d" + (1).to_bytes(8, "big") + encode(5) + encode("value")
    with pytest.raises(SerializationError):
        decode(bad)
