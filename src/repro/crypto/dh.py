"""Finite-field Diffie-Hellman key agreement.

During remote attestation, GenDPR enclaves "agree on keys and other
credentials ... to connect the trust-chain from boot to communication"
(Section 5.1).  This module supplies that key agreement: classic DH over a
fixed safe-prime group, with the shared secret fed through HKDF to derive
the channel keys.

The group is a 768-bit safe prime generated deterministically for this
project (seed 2022) and re-verified prime at import time with
Miller-Rabin, so a transcription error cannot silently weaken the group.
768 bits keeps handshakes fast in pure Python; the simulation's security
argument rests on the TEE trust model, not on this group's concrete
hardness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CryptoError
from .kdf import hkdf
from .rng import DeterministicRng, system_random_bytes

#: 768-bit safe prime p = 2q + 1 (generator of the full group below).
SAFE_PRIME = int(
    "f0fa2d246b24b9fe7a9b4f7d4144acc4158517de87ec559dae15f097a838f0e3"
    "cb6b85445ea7d45474650c2993fc2e0f793c67c5d85f82ec21d22b4af159d9b0"
    "912c9151d2a31b6292a0bde829d7ebe4c078763abbb778451e1a577acb8eacfb",
    16,
)
GENERATOR = 2
_SECRET_BYTES = 48


def _is_probable_prime(n: int, rounds: int = 30) -> bool:
    if n < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % small == 0:
            return n == small
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = DeterministicRng(b"dh-primality")
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _check_group() -> None:
    if not _is_probable_prime(SAFE_PRIME):
        raise CryptoError("DH modulus failed primality check")
    if not _is_probable_prime((SAFE_PRIME - 1) // 2):
        raise CryptoError("DH modulus is not a safe prime")


_check_group()


@dataclass(frozen=True)
class KeyPair:
    """A DH private/public key pair."""

    private: int
    public: int


def generate_keypair(rng: DeterministicRng | None = None) -> KeyPair:
    """Generate a key pair; deterministic when given an explicit RNG."""
    raw = rng.bytes(_SECRET_BYTES) if rng is not None else system_random_bytes(
        _SECRET_BYTES
    )
    private = (int.from_bytes(raw, "big") % (SAFE_PRIME - 3)) + 2
    return KeyPair(private=private, public=pow(GENERATOR, private, SAFE_PRIME))


def validate_public_key(public: int) -> None:
    """Reject degenerate peer values (1, 0, p-1, out of range)."""
    if not 2 <= public <= SAFE_PRIME - 2:
        raise CryptoError("peer DH public key is out of range")


def shared_secret(own: KeyPair, peer_public: int) -> bytes:
    """Raw DH shared secret as fixed-width big-endian bytes."""
    validate_public_key(peer_public)
    secret = pow(peer_public, own.private, SAFE_PRIME)
    width = (SAFE_PRIME.bit_length() + 7) // 8
    return secret.to_bytes(width, "big")


def derive_channel_key(
    own: KeyPair, peer_public: int, *, context: bytes, length: int = 32
) -> bytes:
    """Agree on a symmetric channel key bound to ``context``.

    ``context`` must encode both endpoints' identities (and the attestation
    transcript) so a key negotiated for one pairing can never be replayed
    for another.
    """
    return hkdf(
        shared_secret(own, peer_public),
        salt=b"repro.dh.channel",
        info=context,
        length=length,
    )
