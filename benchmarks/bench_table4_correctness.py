"""Table 4 — correctness and effectiveness of the SNP selection.

Paper: for {7,430, 14,860} genomes x {1,000, 2,500, 5,000, 10,000}
SNPs, GenDPR retains *exactly* the same SNPs as the centralized
SecureGenome baseline after every phase, while the naive distributed
scheme matches only the MAF phase and then selects smaller, partly
disjoint LD/LR sets (the bold rows of the paper's table).

This bench reproduces all eight rows for the three systems and asserts
the two headline properties.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    PAPER_CASE_FULL,
    PAPER_CASE_HALF,
    bench_scale,
    centralized_row,
    gendpr_row,
    naive_row,
    paper_cohort,
    render_selection_table,
)

SNP_COUNTS = (1_000, 2_500, 5_000, 10_000)


@pytest.mark.parametrize("case_size", [PAPER_CASE_HALF, PAPER_CASE_FULL])
def test_table4_selection(benchmark, save_result, case_size):
    def run_all():
        rows = []
        for snps in SNP_COUNTS:
            cohort, _ = paper_cohort(case_size, snps)
            rows.append(centralized_row(cohort, snps, 3))
            rows.append(gendpr_row(cohort, snps, 3))
            rows.append(naive_row(cohort, snps, 3))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    name = f"table4_{case_size}genomes"
    save_result(
        name,
        render_selection_table(rows)
        + f"\n(case genomes: {rows[0]['genomes']:,}, scale={bench_scale()})",
    )

    by_snps = {}
    for row in rows:
        by_snps.setdefault(row["snps"], {})[row["system"]] = row
    for snps, systems in by_snps.items():
        central, gendpr = systems["Centralized"], systems["GenDPR"]
        naive = systems["Naive distributed"]
        # Headline claim: GenDPR == centralized at every phase.
        assert (central["maf"], central["ld"], central["lr"]) == (
            gendpr["maf"],
            gendpr["ld"],
            gendpr["lr"],
        ), f"GenDPR diverged from centralized at {snps} SNPs"
        # Naive matches MAF but under-selects once LD/LR need global data.
        assert naive["ld"] <= gendpr["ld"]
    benchmark.extra_info["rows"] = rows
