"""SNP panels, genotype matrices, cohorts and partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import equal_partition_sizes
from repro.errors import GenomicsError, PartitionError
from repro.genomics import (
    Cohort,
    GenotypeMatrix,
    SnpInfo,
    SnpPanel,
    partition_cohort,
)


def _matrix(rows=20, cols=12, seed=1):
    rng = np.random.Generator(np.random.PCG64(seed))
    return GenotypeMatrix((rng.random((rows, cols)) < 0.4).astype(np.uint8))


class TestSnpPanel:
    def test_synthetic_panel(self):
        panel = SnpPanel.synthetic(10)
        assert len(panel) == 10
        assert len(set(panel.ids())) == 10
        assert panel.index_of(panel[3].snp_id) == 3

    def test_subset(self):
        panel = SnpPanel.synthetic(10)
        sub = panel.subset([2, 5, 7])
        assert sub.ids() == [panel[2].snp_id, panel[5].snp_id, panel[7].snp_id]

    def test_subset_out_of_range(self):
        with pytest.raises(GenomicsError):
            SnpPanel.synthetic(3).subset([5])

    def test_duplicate_ids_rejected(self):
        snp = SnpInfo(snp_id="rs1", chromosome=1, position=5)
        with pytest.raises(GenomicsError):
            SnpPanel([snp, snp])

    def test_unknown_id(self):
        with pytest.raises(GenomicsError):
            SnpPanel.synthetic(3).index_of("rs-nope")

    def test_snp_info_validation(self):
        with pytest.raises(GenomicsError):
            SnpInfo(snp_id="", chromosome=1, position=0)
        with pytest.raises(GenomicsError):
            SnpInfo(snp_id="rs1", chromosome=0, position=0)
        with pytest.raises(GenomicsError):
            SnpInfo(
                snp_id="rs1",
                chromosome=1,
                position=0,
                major_allele="A",
                minor_allele="A",
            )


class TestGenotypeMatrix:
    def test_shape_and_bytes(self):
        matrix = _matrix()
        assert matrix.shape == (20, 12)
        assert matrix.num_individuals == 20
        assert matrix.num_snps == 12
        assert matrix.nbytes == 240
        assert len(matrix) == 20

    def test_rejects_non_binary(self):
        with pytest.raises(GenomicsError):
            GenotypeMatrix(np.full((2, 2), 3, dtype=np.uint8))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(GenomicsError):
            GenotypeMatrix(np.zeros(5, dtype=np.uint8))

    def test_rejects_float(self):
        with pytest.raises(GenomicsError):
            GenotypeMatrix(np.zeros((2, 2), dtype=np.float64))

    def test_accepts_other_int_dtypes(self):
        matrix = GenotypeMatrix(np.ones((2, 2), dtype=np.int32))
        assert matrix.array().dtype == np.uint8

    def test_immutability(self):
        matrix = _matrix()
        with pytest.raises(ValueError):
            matrix.array()[0, 0] = 1

    def test_source_mutation_does_not_leak(self):
        data = np.zeros((2, 2), dtype=np.uint8)
        matrix = GenotypeMatrix(data)
        data[0, 0] = 1
        assert matrix.array()[0, 0] == 0

    def test_equality_and_hash(self):
        a, b = _matrix(seed=5), _matrix(seed=5)
        assert a == b and hash(a) == hash(b)
        assert a != _matrix(seed=6)

    def test_allele_counts(self):
        matrix = _matrix()
        expected = matrix.array().sum(axis=0)
        assert np.array_equal(matrix.allele_counts(), expected)
        assert np.array_equal(matrix.allele_counts([3, 5]), expected[[3, 5]])
        assert matrix.allele_counts().dtype == np.int64

    def test_pair_moments_match_direct(self):
        matrix = _matrix()
        data = matrix.array().astype(np.int64)
        mu_l, mu_r, mu_lr, mu_l2, mu_r2 = matrix.pair_moments(2, 9)
        assert mu_l == data[:, 2].sum()
        assert mu_r == data[:, 9].sum()
        assert mu_lr == (data[:, 2] * data[:, 9]).sum()
        assert mu_l2 == mu_l and mu_r2 == mu_r  # binary data

    def test_pair_moments_batch(self):
        matrix = _matrix()
        pairs = [(0, 1), (3, 7), (11, 2)]
        batch = matrix.pair_moments_batch(pairs)
        for row, (left, right) in enumerate(pairs):
            assert tuple(batch[row]) == matrix.pair_moments(left, right)
        assert matrix.pair_moments_batch([]).shape == (0, 5)

    def test_select_and_split(self):
        matrix = _matrix()
        selected = matrix.select_snps([1, 4])
        assert np.array_equal(selected.array(), matrix.array()[:, [1, 4]])
        rows = matrix.select_individuals([0, 19, 5])
        assert np.array_equal(rows.array(), matrix.array()[[0, 19, 5]])
        with pytest.raises(GenomicsError):
            matrix.select_snps([99])
        with pytest.raises(GenomicsError):
            matrix.select_individuals([99])

    def test_split_stack_roundtrip(self):
        matrix = _matrix()
        parts = matrix.split_rows([7, 6, 7])
        assert [p.num_individuals for p in parts] == [7, 6, 7]
        assert GenotypeMatrix.vstack(parts) == matrix

    def test_split_validation(self):
        matrix = _matrix()
        with pytest.raises(GenomicsError):
            matrix.split_rows([10, 5])
        with pytest.raises(GenomicsError):
            matrix.split_rows([25, -5])

    def test_vstack_validation(self):
        with pytest.raises(GenomicsError):
            GenotypeMatrix.vstack([])
        with pytest.raises(GenomicsError):
            GenotypeMatrix.vstack([_matrix(cols=5), _matrix(cols=6)])

    def test_bytes_roundtrip(self):
        matrix = _matrix()
        assert GenotypeMatrix.from_bytes(matrix.to_bytes(), 12) == matrix
        with pytest.raises(GenomicsError):
            GenotypeMatrix.from_bytes(b"\x00" * 10, 3)
        with pytest.raises(GenomicsError):
            GenotypeMatrix.from_bytes(b"", 0)

    @given(
        rows=st.integers(min_value=1, max_value=30),
        cols=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_counts_invariants_property(self, rows, cols, seed):
        rng = np.random.Generator(np.random.PCG64(seed))
        matrix = GenotypeMatrix((rng.random((rows, cols)) < 0.5).astype(np.uint8))
        counts = matrix.allele_counts()
        assert np.all(counts >= 0) and np.all(counts <= rows)
        # Splitting then summing counts equals pooled counts.
        if rows >= 2:
            half = rows // 2
            a, b = matrix.split_rows([half, rows - half])
            assert np.array_equal(
                a.allele_counts() + b.allele_counts(), counts
            )


class TestCohort:
    def test_validation(self):
        panel = SnpPanel.synthetic(12)
        case, control = _matrix(), _matrix(seed=2)
        cohort = Cohort.control_as_reference(panel, case, control)
        assert cohort.reference is control
        assert "Cohort(" in cohort.describe()

    def test_mismatched_panel_rejected(self):
        panel = SnpPanel.synthetic(10)
        with pytest.raises(GenomicsError):
            Cohort.control_as_reference(panel, _matrix(), _matrix())

    def test_empty_case_rejected(self):
        panel = SnpPanel.synthetic(12)
        empty = GenotypeMatrix(np.zeros((0, 12), dtype=np.uint8))
        with pytest.raises(GenomicsError):
            Cohort.control_as_reference(panel, empty, _matrix())


class TestPartition:
    def _cohort(self):
        panel = SnpPanel.synthetic(12)
        return Cohort.control_as_reference(panel, _matrix(rows=21), _matrix(seed=9))

    def test_equal_partition(self):
        datasets = partition_cohort(self._cohort(), 3)
        assert [d.num_case for d in datasets] == [7, 7, 7]
        assert [d.gdo_id for d in datasets] == ["gdo-0", "gdo-1", "gdo-2"]

    def test_uneven_partition(self):
        datasets = partition_cohort(self._cohort(), 4)
        assert sorted(d.num_case for d in datasets) == [5, 5, 5, 6]

    def test_explicit_sizes(self):
        datasets = partition_cohort(self._cohort(), 2, sizes=[20, 1])
        assert [d.num_case for d in datasets] == [20, 1]

    def test_partition_preserves_rows(self):
        cohort = self._cohort()
        datasets = partition_cohort(cohort, 3)
        stacked = GenotypeMatrix.vstack([d.case for d in datasets])
        assert stacked == cohort.case

    def test_shuffle_seed_changes_assignment_not_content(self):
        cohort = self._cohort()
        plain = partition_cohort(cohort, 3)
        shuffled = partition_cohort(cohort, 3, shuffle_seed=1)
        assert plain[0].case != shuffled[0].case
        pooled = GenotypeMatrix.vstack([d.case for d in shuffled])
        assert np.array_equal(
            np.sort(pooled.array().sum(axis=1)),
            np.sort(cohort.case.array().sum(axis=1)),
        )

    def test_validation(self):
        cohort = self._cohort()
        with pytest.raises(PartitionError):
            partition_cohort(cohort, 0)
        with pytest.raises(PartitionError):
            partition_cohort(cohort, 2, sizes=[10, 10])
        with pytest.raises(PartitionError):
            partition_cohort(cohort, 2, sizes=[21, 0])
        with pytest.raises(PartitionError):
            partition_cohort(cohort, 3, sizes=[7, 14])

    def test_equal_partition_sizes_helper(self):
        assert equal_partition_sizes(10, 3) == [4, 3, 3]
        assert equal_partition_sizes(9, 3) == [3, 3, 3]
        assert sum(equal_partition_sizes(17, 5)) == 17
