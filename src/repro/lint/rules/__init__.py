"""Rule registry for the domain-aware static analyser.

A rule is a class with a ``rule_id``, a human name, the scopes it
patrols by default, and a ``check(module)`` hook producing findings.
Whole-program rules (the lock-order analysis) additionally implement
``finalize()``, called once after every in-scope module has been fed
through ``check``.

Registration is explicit (the :func:`register` decorator) so the rule
set is a reviewable, importable list rather than a filesystem scan.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ClassVar, Dict, Iterable, List, Mapping, Tuple, Type

from ..astutil import ImportTable
from ..config import LintConfig
from ..findings import Finding, Severity


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file, ready for rule checks."""

    path: Path
    display_path: str
    module: str
    source: str
    lines: Tuple[str, ...]
    tree: ast.Module
    scopes: "frozenset[str]"
    imports: ImportTable

    def line_content(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class for lint rules; subclasses are registered explicitly."""

    rule_id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    #: One-line statement of the protocol invariant the rule protects.
    rationale: ClassVar[str] = ""
    default_scopes: ClassVar[Tuple[str, ...]] = ()
    severity: ClassVar[Severity] = Severity.ERROR
    #: Whole-program dataflow rules only run under ``repro lint --flow``.
    requires_flow: ClassVar[bool] = False

    def __init__(self, options: Mapping[str, Any]):
        self.options: Dict[str, Any] = dict(options)

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def finalize(self) -> Iterable[Finding]:
        return ()

    def artifacts(self) -> Mapping[str, Any]:
        """JSON-ready side outputs (inventories, graphs), post-finalize."""
        return {}

    # -- helpers -------------------------------------------------------------

    def finding(
        self,
        module: ModuleInfo,
        node: ast.AST,
        message: str,
        severity: "Severity | None" = None,
    ) -> Finding:
        lineno = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            rule=self.rule_id,
            severity=severity or self.severity,
            path=module.display_path,
            module=module.module,
            line=lineno,
            column=column,
            message=message,
            line_content=module.line_content(lineno),
        )

    def option_tuple(self, key: str, default: Iterable[str]) -> Tuple[str, ...]:
        value = self.options.get(key)
        if value is None:
            return tuple(default)
        return tuple(str(item) for item in value)


REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} lacks a rule_id")
    if cls.rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    REGISTRY[cls.rule_id] = cls
    return cls


@dataclass
class BoundRule:
    """A rule instance bound to the scopes it patrols for this run."""

    rule: Rule
    scopes: Tuple[str, ...]

    def applies_to(self, module_scopes: "frozenset[str]") -> bool:
        if "*" in self.scopes:
            return True
        return any(scope in module_scopes for scope in self.scopes)


def instantiate_rules(config: LintConfig) -> List[BoundRule]:
    """Fresh rule instances for one engine run, honouring the config."""
    bound: List[BoundRule] = []
    for rule_id in sorted(REGISTRY):
        if config.enabled_rules is not None and rule_id not in config.enabled_rules:
            continue
        cls = REGISTRY[rule_id]
        if cls.requires_flow and not config.flow_enabled:
            continue
        options = dict(config.options_for(rule_id))
        if options.pop("__disabled__", False):
            continue
        if cls.requires_flow:
            options["__flow__"] = dict(config.flow)
        scopes = config.scopes_for_rule(rule_id, cls.default_scopes)
        bound.append(BoundRule(rule=cls(options), scopes=scopes))
    return bound


def rule_catalog() -> Dict[str, Dict[str, Any]]:
    """Machine-readable description of every registered rule."""
    return {
        rule_id: {
            "name": cls.name,
            "rationale": cls.rationale,
            "default_scopes": list(cls.default_scopes),
            "severity": cls.severity.value,
        }
        for rule_id, cls in sorted(REGISTRY.items())
    }


def _load_builtin_rules() -> None:
    # Imported for their registration side effect.
    from . import crypto_misuse  # noqa: F401
    from . import determinism  # noqa: F401
    from . import locks  # noqa: F401
    from . import purity  # noqa: F401
    from . import taxonomy  # noqa: F401
    from ..flow import rules as _flow_rules  # noqa: F401


_load_builtin_rules()
