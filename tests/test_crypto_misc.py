"""Stream cipher, signing, DH and deterministic RNG."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import dh
from repro.crypto.rng import DeterministicRng, system_random_bytes
from repro.crypto.signing import SIGNATURE_SIZE, MacSigner, digest
from repro.crypto.stream import NONCE_SIZE, StreamCipher
from repro.errors import AuthenticationError, CryptoError

_KEY = bytes(range(32))


class TestStreamCipher:
    def test_involution(self):
        cipher = StreamCipher(_KEY)
        nonce = bytes(NONCE_SIZE)
        data = bytes(range(256)) * 10
        assert cipher.process(nonce, cipher.process(nonce, data)) == data

    def test_keystream_deterministic_and_nonce_sensitive(self):
        cipher = StreamCipher(_KEY)
        n1, n2 = bytes(16), b"\x01" + bytes(15)
        assert cipher.keystream(n1, 64) == cipher.keystream(n1, 64)
        assert cipher.keystream(n1, 64) != cipher.keystream(n2, 64)

    def test_key_sensitive(self):
        nonce = bytes(16)
        assert StreamCipher(_KEY).keystream(nonce, 32) != StreamCipher(
            bytes(32)
        ).keystream(nonce, 32)

    def test_empty_payload(self):
        cipher = StreamCipher(_KEY)
        assert cipher.process(bytes(16), b"") == b""
        assert cipher.keystream(bytes(16), 0) == b""

    def test_bad_nonce_rejected_even_for_empty(self):
        cipher = StreamCipher(_KEY)
        with pytest.raises(ValueError):
            cipher.process(bytes(8), b"")
        with pytest.raises(ValueError):
            cipher.keystream(bytes(8), 16)

    def test_short_key_rejected(self):
        with pytest.raises(ValueError):
            StreamCipher(b"tiny")

    @given(st.binary(min_size=0, max_size=2048))
    @settings(max_examples=30, deadline=None)
    def test_involution_property(self, data):
        cipher = StreamCipher(_KEY)
        nonce = bytes(16)
        assert cipher.process(nonce, cipher.process(nonce, data)) == data


class TestSigning:
    def test_sign_verify_roundtrip(self):
        signer = MacSigner(_KEY, purpose="test")
        sig = signer.sign(b"message")
        assert len(sig) == SIGNATURE_SIZE
        signer.verify(b"message", sig)  # no raise

    def test_wrong_message_rejected(self):
        signer = MacSigner(_KEY, purpose="test")
        sig = signer.sign(b"message")
        with pytest.raises(AuthenticationError):
            signer.verify(b"other", sig)

    def test_purpose_domain_separation(self):
        sig = MacSigner(_KEY, purpose="a").sign(b"m")
        with pytest.raises(AuthenticationError):
            MacSigner(_KEY, purpose="b").verify(b"m", sig)

    def test_verifier_facade_verifies_but_cannot_sign(self):
        signer = MacSigner(_KEY, purpose="test")
        verifier = signer.verifier()
        verifier.verify(b"m", signer.sign(b"m"))
        assert not hasattr(verifier, "sign")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MacSigner(b"short", purpose="p")
        with pytest.raises(ValueError):
            MacSigner(_KEY, purpose="")

    def test_digest_is_sha256(self):
        assert digest(b"") == bytes.fromhex(
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )


class TestDiffieHellman:
    def test_key_agreement(self):
        rng = DeterministicRng("dh-test")
        alice = dh.generate_keypair(rng.fork("a"))
        bob = dh.generate_keypair(rng.fork("b"))
        assert dh.shared_secret(alice, bob.public) == dh.shared_secret(
            bob, alice.public
        )

    def test_deterministic_with_rng(self):
        one = dh.generate_keypair(DeterministicRng("seed"))
        two = dh.generate_keypair(DeterministicRng("seed"))
        assert one == two

    def test_system_randomness_differs(self):
        assert dh.generate_keypair() != dh.generate_keypair()

    @pytest.mark.parametrize("bad", [0, 1, dh.SAFE_PRIME - 1, dh.SAFE_PRIME])
    def test_degenerate_public_keys_rejected(self, bad):
        own = dh.generate_keypair(DeterministicRng("x"))
        with pytest.raises(CryptoError):
            dh.shared_secret(own, bad)

    def test_channel_key_binds_context(self):
        rng = DeterministicRng("dh-ctx")
        alice = dh.generate_keypair(rng.fork("a"))
        bob = dh.generate_keypair(rng.fork("b"))
        key1 = dh.derive_channel_key(alice, bob.public, context=b"ctx-1")
        key2 = dh.derive_channel_key(alice, bob.public, context=b"ctx-2")
        assert key1 != key2
        assert key1 == dh.derive_channel_key(bob, alice.public, context=b"ctx-1")

    def test_group_is_safe_prime(self):
        assert dh._is_probable_prime(dh.SAFE_PRIME)
        assert dh._is_probable_prime((dh.SAFE_PRIME - 1) // 2)


class TestDeterministicRng:
    def test_reproducible(self):
        assert DeterministicRng(42).bytes(64) == DeterministicRng(42).bytes(64)

    def test_seed_types(self):
        for seed in (0, b"bytes", "string"):
            assert len(DeterministicRng(seed).bytes(16)) == 16

    def test_stream_continuity(self):
        rng = DeterministicRng("x")
        first = rng.bytes(10)
        ref = DeterministicRng("x")
        assert ref.bytes(10) == first
        assert ref.bytes(5) == rng.bytes(5)

    def test_randbelow_range_and_coverage(self):
        rng = DeterministicRng("below")
        values = {rng.randbelow(7) for _ in range(300)}
        assert values == set(range(7))

    def test_randbelow_validation(self):
        with pytest.raises(ValueError):
            DeterministicRng("x").randbelow(0)

    def test_randrange(self):
        rng = DeterministicRng("range")
        for _ in range(100):
            assert 5 <= rng.randrange(5, 9) < 9
        with pytest.raises(ValueError):
            rng.randrange(3, 3)

    def test_choice_and_shuffle(self):
        rng = DeterministicRng("choice")
        items = list(range(20))
        assert rng.choice(items) in items
        with pytest.raises(IndexError):
            rng.choice([])
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # 1/20! chance of false failure

    def test_fork_independence(self):
        rng = DeterministicRng("parent")
        a = rng.fork("a").bytes(32)
        b = rng.fork("b").bytes(32)
        assert a != b
        assert rng.fork("a").bytes(32) == a

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRng("x").bytes(-1)

    def test_system_random_bytes(self):
        assert len(system_random_bytes(32)) == 32
        assert system_random_bytes(16) != system_random_bytes(16)
