"""GWAS release objects.

After the verification pipeline returns ``L_safe``, the federation
computes and publishes GWAS statistics.  Two release shapes are
supported:

* :class:`GwasRelease` — the paper's main output: exact chi-squared
  statistics, p-values and allele frequencies over the safe SNPs only.
* :func:`hybrid_release` — the Section 5.5 extension: exact statistics
  over ``L_safe`` plus Laplace-perturbed statistics over the withheld
  complement, so every requested SNP position receives *some* value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..errors import ProtocolError
from ..stats import chisq
from .dp import LaplaceMechanism


@dataclass(frozen=True)
class SnpStatistic:
    """Released statistics of one SNP."""

    snp_index: int
    chi2: float
    pvalue: float
    case_frequency: float
    reference_frequency: float
    dp_protected: bool = False


@dataclass(frozen=True)
class GwasRelease:
    """An open-access GWAS statistics release."""

    study_id: str
    statistics: List[SnpStatistic]
    n_case: int
    n_reference: int
    residual_power: float = 0.0
    metadata: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        indices = [s.snp_index for s in self.statistics]
        if len(set(indices)) != len(indices):
            raise ProtocolError("release contains duplicate SNPs")

    @property
    def snp_indices(self) -> List[int]:
        return [s.snp_index for s in self.statistics]

    def exact(self) -> List[SnpStatistic]:
        return [s for s in self.statistics if not s.dp_protected]

    def perturbed(self) -> List[SnpStatistic]:
        return [s for s in self.statistics if s.dp_protected]

    def most_significant(self, top: int = 10) -> List[SnpStatistic]:
        """The top-ranked SNPs of the release (ascending p-value)."""
        return sorted(self.statistics, key=lambda s: (s.pvalue, s.snp_index))[:top]


def build_release(
    study_id: str, leader_statistics: Dict[str, object], residual_power: float
) -> GwasRelease:
    """Assemble the exact release from the leader enclave's statistics."""
    snps = list(leader_statistics["snps"])
    chi2_values = np.asarray(leader_statistics["chi2"], dtype=np.float64)
    pvalues = np.asarray(leader_statistics["pvalues"], dtype=np.float64)
    case_freqs = np.asarray(leader_statistics["case_freqs"], dtype=np.float64)
    ref_freqs = np.asarray(leader_statistics["ref_freqs"], dtype=np.float64)
    statistics = [
        SnpStatistic(
            snp_index=int(snp),
            chi2=float(chi2_values[i]),
            pvalue=float(pvalues[i]),
            case_frequency=float(case_freqs[i]),
            reference_frequency=float(ref_freqs[i]),
        )
        for i, snp in enumerate(snps)
    ]
    return GwasRelease(
        study_id=study_id,
        statistics=statistics,
        n_case=int(leader_statistics["n_case"]),
        n_reference=int(leader_statistics["n_reference"]),
        residual_power=residual_power,
    )


def hybrid_release(
    exact: GwasRelease,
    *,
    all_snps: int,
    withheld_case_counts: Dict[int, int],
    withheld_reference_counts: Dict[int, int],
    epsilon: float,
    seed: int = 0,
) -> GwasRelease:
    """Extend an exact release with DP-perturbed withheld SNPs.

    Args:
        exact: the noise-free release over ``L_safe``.
        all_snps: size of the originally desired set ``L_des``.
        withheld_case_counts / withheld_reference_counts: true allele
            counts of the withheld SNPs (``L_des \\ L_safe``), as the
            leader enclave holds them.
        epsilon: per-count privacy budget for the Laplace mechanism
            (each withheld SNP consumes ``2 * epsilon``: one count per
            population).
        seed: mechanism seed, recorded for reproducibility.
    """
    if set(withheld_case_counts) != set(withheld_reference_counts):
        raise ProtocolError("withheld count dictionaries disagree on SNPs")
    overlap = set(exact.snp_indices) & set(withheld_case_counts)
    if overlap:
        raise ProtocolError(f"SNPs {sorted(overlap)} are both safe and withheld")
    if any(not 0 <= s < all_snps for s in withheld_case_counts):
        raise ProtocolError("withheld SNP index out of range")

    mechanism_case = LaplaceMechanism(epsilon=epsilon, seed=seed)
    mechanism_ref = LaplaceMechanism(epsilon=epsilon, seed=seed + 1)
    withheld = sorted(withheld_case_counts)
    case_noisy = mechanism_case.perturb_counts(
        np.array([withheld_case_counts[s] for s in withheld], dtype=np.float64),
        exact.n_case,
    )
    ref_noisy = mechanism_ref.perturb_counts(
        np.array(
            [withheld_reference_counts[s] for s in withheld], dtype=np.float64
        ),
        exact.n_reference,
    )
    chi2_noisy = chisq.pearson_chi_square(
        case_noisy, ref_noisy, exact.n_case, exact.n_reference
    )
    pvalues = chisq.chi_square_pvalues(chi2_noisy)
    perturbed = [
        SnpStatistic(
            snp_index=int(snp),
            chi2=float(chi2_noisy[i]),
            pvalue=float(pvalues[i]),
            case_frequency=float(case_noisy[i] / exact.n_case),
            reference_frequency=float(ref_noisy[i] / exact.n_reference),
            dp_protected=True,
        )
        for i, snp in enumerate(withheld)
    ]
    return GwasRelease(
        study_id=exact.study_id,
        statistics=list(exact.statistics) + perturbed,
        n_case=exact.n_case,
        n_reference=exact.n_reference,
        residual_power=exact.residual_power,
        metadata=dict(
            exact.metadata,
            dp_epsilon=str(epsilon),
            dp_seed=str(seed),
        ),
    )
