"""Ablation — LD-phase communication batching.

The paper's Algorithm 1 exchanges correlation moments strictly per
adjacent pair (one round per comparison).  This implementation
prefetches a sliding window of pairs in one round and falls back to
speculative lookahead on misses — identical decisions, far fewer
rounds.  The ablation runs the LD-heavy scenario under three window
settings and reports retained SNPs (which must be identical), message
counts and wall time, quantifying the design choice DESIGN.md calls
out.
"""

from __future__ import annotations

from repro.bench import PAPER_CASE_FULL, paper_cohort, paper_config, render_table
from repro.core import enclave_logic
from repro.core.protocol import run_study

SNPS = 2_500
SETTINGS = [(1, 1), (4, 16), (8, 32)]


def _run_with_window(cohort, window: int, lookahead: int):
    original_window = enclave_logic._LD_WINDOW
    original_lookahead = enclave_logic._LD_LOOKAHEAD
    enclave_logic._LD_WINDOW = window
    enclave_logic._LD_LOOKAHEAD = lookahead
    try:
        config = paper_config(SNPS, study_id=f"ld-ablation-w{window}")
        return run_study(cohort, config, num_members=3)
    finally:
        enclave_logic._LD_WINDOW = original_window
        enclave_logic._LD_LOOKAHEAD = original_lookahead


def test_ablation_ld_batching(benchmark, save_result):
    cohort, _ = paper_cohort(PAPER_CASE_FULL, SNPS)

    def run_all():
        return [
            (window, lookahead, _run_with_window(cohort, window, lookahead))
            for window, lookahead in SETTINGS
        ]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [
            f"window={window} lookahead={lookahead}",
            result.retained_after_ld,
            result.network_messages,
            f"{result.timings.total_seconds * 1000:.1f}",
        ]
        for window, lookahead, result in results
    ]
    save_result(
        "ablation_ld",
        "Ablation: LD-phase batching (decisions must be identical).\n"
        + render_table(
            ["Setting", "LD retained", "Messages", "Total ms"], rows
        ),
    )
    retained_sets = {tuple(r.l_double_prime) for _, _, r in results}
    assert len(retained_sets) == 1, "batching must never change LD decisions"
    # Wider windows strictly reduce message counts.
    messages = [r.network_messages for _, _, r in results]
    assert messages[0] >= messages[1] >= messages[2]
