"""R3 fixture — crypto-scope misuse: variable-time compares, literal
secrets, digest truncation."""

import hashlib

SESSION_KEY = b"0123456789abcdef"  # R3: literal key material


def verify_frame(frame_tag, expected_tag, stored_digest, payload):
    if frame_tag == expected_tag:  # R3: variable-time tag compare
        return True
    if stored_digest != hashlib.sha256(payload).digest():  # R3: digest !=
        return False
    return None


def weak_fingerprint(payload):
    return hashlib.sha256(payload).digest()[:8]  # R3: digest truncation


def encrypt(cipher_cls, payload):
    cipher = cipher_cls(key=b"k" * 32, nonce=b"\x00" * 16)  # R3: literals
    return cipher.encrypt(payload)
