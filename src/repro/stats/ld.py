"""Linkage disequilibrium from pooled correlation moments (Phase 2).

The paper computes the r-squared correlation between a SNP pair from the
five sums each member outsources — mu_l, mu_r, mu_lr, mu_l2, mu_r2 —
plus the pooled population size N_T.  These are ordinary second-moment
sums, so the leader can add members' contributions and the reference
set's and obtain exactly the statistics of the pooled population,
without ever pooling genotypes.  That is the crux of GenDPR's Phase 2
correction over the naive scheme.

Significance: under independence, ``N_T * r^2`` is asymptotically
chi-squared with 1 dof; a p-value *below* the LD cut-off marks the pair
as dependent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import GenomicsError


@dataclass(frozen=True)
class PairMoments:
    """The correlation sums exchanged for one SNP pair.

    All fields are plain sums over one population's individuals, so
    moments from disjoint populations combine by field-wise addition.
    """

    mu_l: int
    mu_r: int
    mu_lr: int
    mu_l2: int
    mu_r2: int
    count: int

    def validate(self) -> "PairMoments":
        """Check internal consistency; call on untrusted inputs.

        Validation is explicit rather than automatic because the LD walk
        constructs millions of (trusted, already-valid) instances via
        :meth:`__add__`; only moments parsed from peer messages need the
        check.
        """
        if self.count < 0:
            raise GenomicsError("population count must be non-negative")
        for name in ("mu_l", "mu_r", "mu_lr", "mu_l2", "mu_r2"):
            value = getattr(self, name)
            if value < 0 or value > self.count:
                raise GenomicsError(
                    f"{name}={value} impossible for {self.count} binary genotypes"
                )
        return self

    def __add__(self, other: "PairMoments") -> "PairMoments":
        return PairMoments(
            mu_l=self.mu_l + other.mu_l,
            mu_r=self.mu_r + other.mu_r,
            mu_lr=self.mu_lr + other.mu_lr,
            mu_l2=self.mu_l2 + other.mu_l2,
            mu_r2=self.mu_r2 + other.mu_r2,
            count=self.count + other.count,
        )

    @classmethod
    def zero(cls) -> "PairMoments":
        return cls(0, 0, 0, 0, 0, 0)

    @classmethod
    def sum(cls, parts: Iterable["PairMoments"]) -> "PairMoments":
        total = cls.zero()
        for part in parts:
            total = total + part
        return total


def r_squared(moments: PairMoments) -> float:
    """Pearson r^2 of a SNP pair from pooled moments.

    A pair involving a constant SNP (zero variance) has r^2 = 0: a fixed
    column carries no linkage information.
    """
    n = moments.count
    if n < 2:
        return 0.0
    covariance = n * moments.mu_lr - moments.mu_l * moments.mu_r
    var_left = n * moments.mu_l2 - moments.mu_l**2
    var_right = n * moments.mu_r2 - moments.mu_r**2
    if var_left <= 0 or var_right <= 0:
        return 0.0
    value = (covariance * covariance) / (var_left * var_right)
    # Guard against floating drift just above 1 for perfectly linked pairs.
    return min(1.0, float(value))


def chi2_sf_1df(statistic: float) -> float:
    """Upper tail of the 1-dof chi-squared distribution.

    Closed form ``erfc(sqrt(x/2))`` — identical to scipy's value (the
    tests check agreement) but ~100x faster for the scalar calls the LD
    walk makes per pair.
    """
    if statistic <= 0:
        return 1.0
    return math.erfc(math.sqrt(statistic / 2.0))


def ld_pvalue(moments: PairMoments) -> float:
    """p-value of the r^2 statistic (``N_T * r^2`` vs chi-squared, 1 dof)."""
    n = moments.count
    if n < 2:
        return 1.0
    return chi2_sf_1df(n * r_squared(moments))


def is_dependent(moments: PairMoments, ld_cutoff: float) -> bool:
    """Phase 2 decision: dependent iff the p-value falls below the cut-off."""
    if not 0.0 < ld_cutoff < 1.0:
        raise GenomicsError("ld_cutoff must be in (0, 1)")
    return ld_pvalue(moments) < ld_cutoff


# ----------------------------------------------------------------------
# Batched kernels (and their scalar test oracles)
# ----------------------------------------------------------------------
#
# The enclave's hot paths call these with a shard's worth of columns at
# a time; every kernel has a loop-per-element reference implementation
# next to it, and the property tests assert element-wise identity over
# randomized genotype matrices (integer arithmetic throughout, so the
# identity is exact, not approximate).


def window_pairs(snps: Sequence[int], window: int) -> np.ndarray:
    """Sliding-window pair list of a greedy LD walk, vectorised.

    Returns the ``(P, 2)`` int64 array of pairs ``(snps[i], snps[j])``
    with ``i < j <= min(i + window, len(snps) - 1)`` — the pairs the
    walk over ``snps`` can compare without a candidate outliving a
    whole block.  Replaces the quadratic-constant Python comprehension
    the enclave used per combination walk.
    """
    if window < 1:
        raise GenomicsError("window must be at least 1")
    snps_arr = np.asarray(list(snps), dtype=np.int64)
    n = snps_arr.size
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)
    counts = np.minimum(window, n - 1 - np.arange(n - 1, dtype=np.int64))
    lefts = np.repeat(np.arange(n - 1, dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    offsets = (
        np.arange(int(counts.sum()), dtype=np.int64)
        - np.repeat(starts, counts)
        + 1
    )
    return np.stack((snps_arr[lefts], snps_arr[lefts + offsets]), axis=1)


def window_pairs_scalar(snps: Sequence[int], window: int) -> np.ndarray:
    """Loop reference of :func:`window_pairs` (test oracle)."""
    if window < 1:
        raise GenomicsError("window must be at least 1")
    items = [int(s) for s in snps]
    pairs = [
        (items[i], items[j])
        for i in range(len(items) - 1)
        for j in range(i + 1, min(i + 1 + window, len(items)))
    ]
    return np.asarray(pairs, dtype=np.int64).reshape(len(pairs), 2)


def pair_moments_kernel(
    gathered: np.ndarray, inverse: np.ndarray, *, batch: int = 4096
) -> np.ndarray:
    """Five correlation sums per pair over *binary* genotype columns.

    Args:
        gathered: ``N x K`` matrix of the distinct genotype columns the
            pairs touch (0/1 entries).
        inverse: ``P x 2`` indices into ``gathered``'s columns, one row
            per requested pair.
        batch: pairs per transient joint-count slab, bounding the
            working set to ``N x batch``.

    Returns ``P x 5`` int64 rows ``(mu_l, mu_r, mu_lr, mu_l2, mu_r2)``.
    For binary genotypes ``x^2 == x``, so the squared sums repeat the
    linear ones — kept explicit because the wire format and the pooled
    r² algebra carry all five.
    """
    index = np.asarray(inverse, dtype=np.int64)
    if index.ndim != 2 or index.shape[1] != 2:
        raise GenomicsError("pair index array must have shape (P, 2)")
    num_pairs = index.shape[0]
    out = np.empty((num_pairs, 5), dtype=np.int64)
    if num_pairs == 0:
        return out
    data = np.asarray(gathered)
    column_sums = data.sum(axis=0, dtype=np.int64)
    out[:, 0] = column_sums[index[:, 0]]
    out[:, 1] = column_sums[index[:, 1]]
    for start in range(0, num_pairs, batch):
        stop = min(start + batch, num_pairs)
        left = data[:, index[start:stop, 0]]
        right = data[:, index[start:stop, 1]]
        out[start:stop, 2] = (left & right).sum(axis=0, dtype=np.int64)
    out[:, 3] = out[:, 0]
    out[:, 4] = out[:, 1]
    return out


def pair_moments_scalar(gathered: np.ndarray, inverse: np.ndarray) -> np.ndarray:
    """Loop reference of :func:`pair_moments_kernel` (test oracle)."""
    data = np.asarray(gathered)
    index = np.asarray(inverse, dtype=np.int64)
    out = np.empty((index.shape[0], 5), dtype=np.int64)
    for row, (left_col, right_col) in enumerate(index.tolist()):
        mu_l = mu_r = mu_lr = 0
        for value_l, value_r in zip(
            data[:, left_col].tolist(), data[:, right_col].tolist()
        ):
            mu_l += value_l
            mu_r += value_r
            mu_lr += value_l & value_r
        out[row] = (mu_l, mu_r, mu_lr, mu_l, mu_r)
    return out


def r_squared_direct(column_left, column_right) -> float:
    """r^2 straight from two genotype columns (test oracle).

    Used by tests to cross-check the moment-based computation against a
    direct correlation, and by the naive baseline which has the columns
    locally.
    """
    left = np.asarray(column_left, dtype=np.float64)
    right = np.asarray(column_right, dtype=np.float64)
    if left.shape != right.shape:
        raise GenomicsError("columns differ in length")
    if left.size < 2 or left.std() == 0 or right.std() == 0:
        return 0.0
    correlation = np.corrcoef(left, right)[0, 1]
    if math.isnan(correlation):
        return 0.0
    return min(1.0, float(correlation**2))
