"""Data-oblivious computation primitives.

The paper's conclusion names an oblivious GenDPR as future work: SGX
enclaves leak memory access patterns, and an adversary observing which
cache lines the trusted module touches can reconstruct data-dependent
branches — e.g. which SNPs survived a filter.  This module implements
the standard oblivious building blocks and oblivious variants of the
protocol's leakiest steps, so the overhead the paper anticipates can be
measured (see ``benchmarks/bench_ablation_oblivious.py``).

Design rules all functions here follow:

* every element of every input is touched exactly the same number of
  times regardless of the data (linear scans, fixed networks);
* branches depend only on public values (sizes, loop indices), never on
  secrets — selections are computed with arithmetic masks; and
* outputs have data-independent *shapes* (fixed-length masks instead of
  variable-length index lists).

These are simulations of obliviousness — Python offers no constant-time
guarantees — but they preserve exactly the property a reviewer of the
algorithm needs: the sequence of array positions touched is a function
of public parameters only.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import TEEError


def oblivious_select(values: np.ndarray, index: int) -> float:
    """Read ``values[index]`` while touching every element.

    A direct ``values[index]`` would reveal ``index`` through the access
    pattern; the oblivious version multiplies every element by an
    equality mask and sums.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise TEEError("oblivious_select works on vectors")
    if not 0 <= index < array.size:
        raise TEEError("index out of range")
    mask = np.arange(array.size) == index  # touches every position
    return float(np.sum(array * mask))


def oblivious_write(values: np.ndarray, index: int, value: float) -> np.ndarray:
    """Write ``value`` at ``index`` touching every element; returns a copy."""
    array = np.asarray(values, dtype=np.float64).copy()
    if not 0 <= index < array.size:
        raise TEEError("index out of range")
    mask = np.arange(array.size) == index
    return array * ~mask + value * mask


def oblivious_choose(condition: bool, if_true: float, if_false: float) -> float:
    """Branch-free two-way selection."""
    flag = 1.0 if condition else 0.0  # the caller's condition is secret;
    # both arms are evaluated and combined arithmetically.
    return flag * if_true + (1.0 - flag) * if_false


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def oblivious_sort(values: np.ndarray) -> np.ndarray:
    """Bitonic sort: a fixed comparison network independent of the data.

    The sequence of compare-exchange index pairs depends only on the
    (padded) length, so an observer of the access pattern learns nothing
    about the values.  Input is padded to a power of two with ``+inf``
    sentinels that sort to the end and are stripped before returning.
    """
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise TEEError("oblivious_sort works on vectors")
    n = array.size
    if n == 0:
        return array.copy()
    size = _next_power_of_two(n)
    padded = np.concatenate([array, np.full(size - n, np.inf)])

    # Classic iterative bitonic network: for each stage k and sub-stage
    # j, compare-exchange every pair (i, i^j) with a direction given by
    # bit k of i — all indices are functions of (size) alone.
    k = 2
    while k <= size:
        j = k // 2
        while j >= 1:
            indices = np.arange(size)
            partners = indices ^ j
            active = partners > indices
            i_idx = indices[active]
            p_idx = partners[active]
            ascending = (i_idx & k) == 0
            left = padded[i_idx]
            right = padded[p_idx]
            swap = np.where(ascending, left > right, left < right)
            new_left = np.where(swap, right, left)
            new_right = np.where(swap, left, right)
            padded[i_idx] = new_left
            padded[p_idx] = new_right
            j //= 2
        k *= 2
    return padded[:n]


def oblivious_quantile_threshold(scores: np.ndarray, alpha: float) -> float:
    """Oblivious analogue of :func:`repro.stats.lr_test.detection_threshold`.

    Sorts with the bitonic network and reads the quantile position with
    an oblivious select, so neither the order statistics nor the chosen
    rank leak through access patterns (the rank is public given alpha
    and the public population size, but the pattern stays uniform).
    """
    if not 0 < alpha < 1:
        raise TEEError("alpha must be in (0, 1)")
    array = np.asarray(scores, dtype=np.float64)
    if array.size == 0:
        raise TEEError("scores are empty")
    ordered = oblivious_sort(array)
    rank = int(np.ceil((1.0 - alpha) * array.size)) - 1
    rank = min(max(rank, 0), array.size - 1)
    return oblivious_select(ordered, rank)


def oblivious_maf_mask(
    frequencies: np.ndarray, maf_cutoff: float
) -> np.ndarray:
    """Phase 1 as an oblivious computation.

    The non-oblivious filter returns a variable-length index list whose
    *length and construction pattern* reveal which SNPs are rare.  The
    oblivious variant returns a fixed-shape 0/1 mask computed with pure
    elementwise arithmetic — identical information for the caller, no
    data-dependent accesses.
    """
    freqs = np.asarray(frequencies, dtype=np.float64)
    folded = np.minimum(freqs, 1.0 - freqs)
    return (folded >= maf_cutoff).astype(np.uint8)


def oblivious_empirical_power(
    case_scores: np.ndarray, reference_scores: np.ndarray, alpha: float
) -> float:
    """Oblivious analogue of the empirical power estimate.

    Every case score is compared against the threshold (vectorised
    full-array comparison); the count is a sum over the whole mask.
    """
    case = np.asarray(case_scores, dtype=np.float64)
    if case.size == 0:
        raise TEEError("case scores are empty")
    threshold = oblivious_quantile_threshold(reference_scores, alpha)
    return float(np.sum((case > threshold).astype(np.float64)) / case.size)


def oblivious_prefix_selection(
    case_matrix: np.ndarray,
    reference_matrix: np.ndarray,
    order: np.ndarray,
    *,
    alpha: float,
    beta: float,
) -> Tuple[np.ndarray, float]:
    """An oblivious variant of the Phase 3 safe-subset search.

    The greedy's control flow is data-dependent (skip vs keep); here
    every candidate column is processed with the identical instruction
    sequence: the running score vectors are updated through arithmetic
    masks, so an observer sees one fixed pass over the matrix columns
    regardless of which SNPs end up selected.

    Returns a fixed-shape 0/1 selection mask (over positions of
    ``order``) and the final power — the same decisions as
    :func:`repro.stats.lr_test.select_safe_subset` (tests assert this),
    at the oblivious-execution price the ablation bench quantifies.
    """
    case = np.asarray(case_matrix, dtype=np.float64)
    reference = np.asarray(reference_matrix, dtype=np.float64)
    order = np.asarray(order, dtype=np.int64)
    selected = np.zeros(order.size, dtype=np.uint8)
    case_running = np.zeros(case.shape[0], dtype=np.float64)
    ref_running = np.zeros(reference.shape[0], dtype=np.float64)
    power = 0.0
    for position in range(order.size):
        column = int(order[position])
        trial_case = case_running + case[:, column]
        trial_ref = ref_running + reference[:, column]
        trial_power = oblivious_empirical_power(trial_case, trial_ref, alpha)
        keep = trial_power < beta
        mask = 1.0 if keep else 0.0
        # Branch-free state update: both arms computed, mask-combined.
        case_running = mask * trial_case + (1.0 - mask) * case_running
        ref_running = mask * trial_ref + (1.0 - mask) * ref_running
        power = mask * trial_power + (1.0 - mask) * power
        selected = oblivious_write(selected, position, mask).astype(np.uint8)
    return selected, float(power)
