"""Chaos suite: seeded fault-plan sweep over the supervised runtime.

Every run of the sweep must either complete with release decisions
**bit-identical** to the fault-free reference of its (execution mode,
collusion) cell, or abort with a *classified* :class:`ReproError`
subclass — never hang, never return a divergent answer.

The invariant itself lives in :mod:`repro.fuzz.oracle` — the same
harness the fuzzer (``repro fuzz``) and the Byzantine tier execute —
and the seeded plans live in :mod:`repro.fuzz.seeds`, so this module
is a *replayer*: it sweeps the 24 legacy crash-style genomes (plus a
sharded subset) and asserts the oracle saw no violation.

Set ``CHAOS_REPORT_PATH`` to write a machine-readable JSON report of
every sweep run (fault plans + digests, injected-event counters,
outcomes); the CI ``chaos`` job uploads it as an artifact.  Records
are keyed by sweep cell, so re-running a test within one session
replaces its record instead of appending a duplicate.  Any failure
reproduces locally from its seed alone: the plan is a pure function
of the config (see ``docs/RESILIENCE.md``).
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro import generate_cohort
from repro.fuzz.genome import genome_config
from repro.fuzz.oracle import DecisionOracle
from repro.fuzz.seeds import (
    CHAOS_CRASH_SEEDS,
    CHAOS_PARTITION_SEEDS,
    CHAOS_SEEDS,
    chaos_seed_genome,
    seed_f,
    seed_mode,
)
from repro.genomics import SyntheticSpec

MEMBERS = 3
STUDY_ID = "chaos-sweep"
STUDY_SEED = 5

#: Subset of the sweep re-run sharded (per shard count in SHARD_AXIS):
#: the same seeded plans, now also stressing tree rounds and repair.
#: Hand-picked to cover both modes, both collusion settings, a leader
#: crash (10, 15, 20) and a partition window (7).
SHARDED_SEEDS = [1, 2, 7, 10, 15, 20]
SHARD_AXIS = (2, 4)

#: Chaos-report records keyed by (seed, shards): re-execution within
#: one session *replaces* the cell's record, so the report never
#: accumulates duplicates.
_collected_runs = {}


@pytest.fixture(scope="module")
def oracle():
    cohort, _ = generate_cohort(
        SyntheticSpec(num_snps=80, num_case=120, num_control=100, seed=5)
    )
    return DecisionOracle(
        cohort=cohort,
        members=MEMBERS,
        study_id=STUDY_ID,
        study_seed=STUDY_SEED,
    )


def _genome(oracle, seed, shards=1):
    genome = chaos_seed_genome(
        seed, members=oracle.member_ids, leader=oracle.leader_id
    )
    return dataclasses.replace(genome, shards=shards)


def _execute(oracle, seed, shards=1):
    # max_attempts/max_failovers pin the tier's historical supervision
    # budget (the ResilienceConfig.supervised() defaults).
    config = genome_config(
        _genome(oracle, seed, shards),
        snp_count=80,
        study_id=STUDY_ID,
        study_seed=STUDY_SEED,
        max_attempts=4,
        max_failovers=2,
    )
    return oracle.execute(config)


def _collect(run, seed, shards=1, **extra):
    _collected_runs[(seed, shards)] = run.record(
        seed=seed,
        shards=shards,
        mode=seed_mode(seed),
        f=seed_f(seed),
        failovers=run.failovers,
        **extra,
    )


@pytest.fixture(scope="module", autouse=True)
def chaos_report():
    """Write the sweep's fault-injection report if a path is configured."""
    yield
    path = os.environ.get("CHAOS_REPORT_PATH")
    if not path or not _collected_runs:
        return
    runs = [_collected_runs[key] for key in sorted(_collected_runs)]
    completed = sum(1 for r in runs if r["outcome"] == "completed")
    payload = {
        "study_id": STUDY_ID,
        "members": MEMBERS,
        "runs": runs,
        "summary": {
            "total": len(runs),
            "completed_identical": completed,
            "classified_aborts": len(runs) - completed,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_chaos_run_is_identical_or_classified(seed, oracle):
    run = _execute(oracle, seed)
    _collect(run, seed)
    assert run.violation is None, run.violation


_sharded_decisions = {}


@pytest.mark.parametrize("shards", SHARD_AXIS)
@pytest.mark.parametrize("seed", SHARDED_SEEDS)
def test_sharded_chaos_run_is_identical_or_classified(seed, shards, oracle):
    """The chaos invariant survives composition with sharding.

    The same seeded plans, re-run with SNP-range sharding at each
    shard count: tree rounds now carry the combine traffic, so drops,
    delays and crashes land on combine edges and are masked by retry
    and tree repair — or abort classified.  Completed runs must match
    the *unsharded* fault-free reference, which also pins decision
    identity across shard counts.
    """
    run = _execute(oracle, seed, shards)
    _collect(run, seed, shards, member_restorations=run.member_restorations)
    assert run.violation is None, run.violation
    if run.verdict == "completed":
        _sharded_decisions[(seed, shards)] = (
            "completed",
            tuple(run.result.l_safe),
        )
    else:
        _sharded_decisions[(seed, shards)] = ("abort", run.error)


def test_sharded_sweep_decisions_identical_across_shard_counts():
    """Every completed (seed, shards) cell released the same SNP set.

    Runs after the sharded sweep (pytest executes in definition
    order), so the decision table is complete.
    """
    assert len(_sharded_decisions) == len(SHARDED_SEEDS) * len(SHARD_AXIS)
    completed = 0
    for seed in SHARDED_SEEDS:
        decisions = {
            _sharded_decisions[(seed, shards)]
            for shards in SHARD_AXIS
            if _sharded_decisions[(seed, shards)][0] == "completed"
        }
        assert len(decisions) <= 1, f"seed {seed} diverged across shards"
        completed += len(decisions)
    # The subset is not allowed to abort wholesale: most plans at this
    # intensity complete, proving the masked path does the masking.
    assert completed >= len(SHARDED_SEEDS) // 2


def test_sweep_covers_both_modes_and_collusion():
    cells = {(seed_mode(s), seed_f(s)) for s in CHAOS_SEEDS}
    assert cells == {
        ("sequential", 0),
        ("sequential", 1),
        ("parallel", 0),
        ("parallel", 1),
    }
    assert len(CHAOS_SEEDS) >= 20
    assert CHAOS_CRASH_SEEDS and CHAOS_PARTITION_SEEDS
    # The sharded subset keeps the same spread: both modes, both
    # collusion settings, at least one crash and one partition plan.
    assert {seed_mode(s) for s in SHARDED_SEEDS} == {
        "sequential",
        "parallel",
    }
    assert {seed_f(s) for s in SHARDED_SEEDS} == {0, 1}
    assert set(SHARDED_SEEDS) & CHAOS_CRASH_SEEDS
    assert set(SHARDED_SEEDS) & CHAOS_PARTITION_SEEDS
    assert len(SHARD_AXIS) >= 2


def test_chaos_replays_identically(oracle):
    """The same seed reproduces the same injected faults, bit for bit."""
    seed = 10  # a crash seed: the heaviest machinery in one run
    counters = [_execute(oracle, seed).injected for _ in range(2)]
    assert counters[0] == counters[1]


def test_report_records_dedupe_and_carry_digest(oracle):
    """Re-running a sweep cell replaces its report record (no dupes),
    and every record is traceable to its exact plan via the digest."""
    run = _execute(oracle, 1)
    before = len(_collected_runs)
    _collect(run, 1)
    _collect(run, 1)
    assert len(_collected_runs) == before
    record = _collected_runs[(1, 1)]
    assert record["plan_digest"] == run.federation.fault_injector.plan.digest()
    assert record["plan"] == run.federation.fault_injector.plan.describe()
