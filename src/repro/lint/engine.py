"""The lint engine: file discovery, parsing, rule dispatch, filtering.

A run proceeds in four stages:

1. **Discover** — expand the given paths to ``.py`` files (skipping
   ``__pycache__`` and hidden directories).
2. **Parse + scope** — each file becomes a
   :class:`~repro.lint.rules.ModuleInfo` with its dotted module name,
   import table and matched scopes.  Syntax errors become findings of
   the synthetic ``SYNTAX`` rule rather than aborting the run.
3. **Check** — every registered rule whose scopes intersect a module's
   scopes runs over it; whole-program rules emit extra findings from
   ``finalize()`` once all modules are seen.
4. **Filter** — inline ``# lint: disable=R3`` suppressions and the
   baseline remove accepted findings; what remains is reported and
   drives the exit code.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import LintConfigError
from .astutil import (
    ImportTable,
    innermost_extent,
    module_name_for_path,
    statement_extents,
)
from .baseline import Baseline
from .config import LintConfig
from .findings import Finding, Severity
from .rules import BoundRule, ModuleInfo, instantiate_rules

#: ``# lint: disable`` or ``# lint: disable=R1,R3`` on the finding line.
_SUPPRESSION = re.compile(
    r"#\s*lint:\s*disable"
    r"(?:=(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*))?"
)

SYNTAX_RULE = "SYNTAX"


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    modules: List[ModuleInfo] = field(default_factory=list)
    suppressed_inline: int = 0
    baselined: int = 0
    unused_baseline_entries: List[Dict[str, object]] = field(
        default_factory=list
    )
    all_findings: List[Finding] = field(default_factory=list)
    #: Findings accepted by the baseline (reported, but non-failing).
    baselined_findings: List[Finding] = field(default_factory=list)
    #: Merged ``Rule.artifacts()`` outputs (inventories, call graph).
    artifacts: Dict[str, object] = field(default_factory=dict)
    #: Rule ids that actually ran (flow rules are absent without --flow).
    rules_run: List[str] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [
            finding
            for finding in self.findings
            if finding.severity is Severity.ERROR
        ]

    @property
    def clean(self) -> bool:
        return not self.errors

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            key = finding.severity.value
            counts[key] = counts.get(key, 0) + 1
        return counts


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py list."""
    found: List[Path] = []
    seen = set()
    for path in paths:
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise LintConfigError(f"no such file or directory: {path}")
        for candidate in candidates:
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in candidate.parts
            ):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            found.append(candidate)
    return found


def load_module(path: Path, config: LintConfig) -> "ModuleInfo | Finding":
    """Parse one file; a syntax error yields a SYNTAX finding instead."""
    display = str(path)
    source = path.read_text(encoding="utf-8")
    module_name = module_name_for_path(path)
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return Finding(
            rule=SYNTAX_RULE,
            severity=Severity.ERROR,
            path=display,
            module=module_name,
            line=exc.lineno or 1,
            column=(exc.offset or 0) + 1,
            message=f"file does not parse: {exc.msg}",
            line_content=(exc.text or "").strip(),
        )
    lines = tuple(source.splitlines())
    return ModuleInfo(
        path=path,
        display_path=display,
        module=module_name,
        source=source,
        lines=lines,
        tree=tree,
        scopes=config.scope_map.scopes_for(module_name),
        imports=ImportTable.collect(tree, module_name),
    )


def _suppressed_rules(line: str) -> Optional["frozenset[str]"]:
    """Rule ids disabled on this line; empty frozenset means *all*."""
    match = _SUPPRESSION.search(line)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return frozenset()
    return frozenset(
        token.strip() for token in rules.split(",") if token.strip()
    )


def _is_suppressed(
    finding: Finding,
    module: Optional[ModuleInfo],
    extents: Optional[List[Tuple[int, int]]] = None,
) -> bool:
    """Inline-suppression check, anchored to whole logical statements.

    A ``# lint: disable`` comment anywhere on the statement the finding
    sits on suppresses it — so decorated defs and parenthesized calls
    spanning several physical lines can carry the marker on any of
    them, not only the exact finding line.  Compound-statement extents
    cover headers only, so a marker inside a function body never
    suppresses a finding on the ``def`` line.
    """
    if module is None:
        return False
    extent = (
        innermost_extent(extents, finding.line)
        if extents is not None
        else None
    ) or (finding.line, finding.line)
    for lineno in range(extent[0], extent[1] + 1):
        line = (
            module.lines[lineno - 1]
            if 1 <= lineno <= len(module.lines)
            else ""
        )
        disabled = _suppressed_rules(line)
        if disabled is None:
            continue
        if not disabled or finding.rule in disabled:
            return True
    return False


def run_lint(
    paths: Sequence[Path],
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Run every configured rule over ``paths``; see module docstring."""
    config = config or LintConfig()
    baseline = baseline if baseline is not None else Baseline()
    result = LintResult()
    bound_rules: List[BoundRule] = instantiate_rules(config)

    raw: List[Tuple[Finding, Optional[ModuleInfo]]] = []
    modules_by_name: Dict[str, ModuleInfo] = {}
    for path in discover_files(paths):
        result.files_scanned += 1
        loaded = load_module(path, config)
        if isinstance(loaded, Finding):
            raw.append((loaded, None))
            continue
        result.modules.append(loaded)
        modules_by_name[loaded.module] = loaded
        for bound in bound_rules:
            if not bound.applies_to(loaded.scopes):
                continue
            for finding in bound.rule.check(loaded):
                raw.append((finding, loaded))
    for bound in bound_rules:
        for finding in bound.rule.finalize():
            raw.append((finding, modules_by_name.get(finding.module)))
        for key, value in bound.rule.artifacts().items():
            result.artifacts[key] = value
    result.rules_run = [bound.rule.rule_id for bound in bound_rules]

    extent_cache: Dict[str, List[Tuple[int, int]]] = {}
    for finding, module in sorted(
        raw, key=lambda item: (item[0].path, item[0].line, item[0].rule)
    ):
        result.all_findings.append(finding)
        extents = None
        if module is not None:
            if module.module not in extent_cache:
                extent_cache[module.module] = statement_extents(module.tree)
            extents = extent_cache[module.module]
        if _is_suppressed(finding, module, extents):
            result.suppressed_inline += 1
            continue
        if baseline.covers(finding):
            result.baselined += 1
            result.baselined_findings.append(finding)
            continue
        result.findings.append(finding)
    result.unused_baseline_entries = baseline.unused_entries()
    return result
