"""GenDPR protocol orchestration.

:class:`GenDPRProtocol` drives one study across a provisioned
federation: it invokes the leader enclave's phase ECALLs, supplies the
OCALL through which the leader exchanges encrypted frames with member
enclaves, and assembles the :class:`~repro.core.phases.StudyResult`.

Everything that *decides* happens inside the trusted module
(:mod:`repro.core.enclave_logic`); this orchestrator is part of the
untrusted middleware and only ever touches ciphertext frames, timing
and accounting.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..config import StudyConfig
from ..errors import ProtocolError
from ..genomics.partition import partition_cohort
from ..genomics.population import Cohort
from ..net import Envelope, SimulatedNetwork
from .federation import Federation, build_federation
from .phases import CollusionReport, CombinationOutcome, StudyResult
from .timing import (
    DATA_AGGREGATION,
    INDEXING,
    LD_ANALYSIS,
    LR_ANALYSIS,
    PhaseClock,
    PhaseTimings,
    RoundAccounting,
)


class GenDPRProtocol:
    """Runs one GenDPR study over a federation."""

    def __init__(self, federation: Federation):
        self._federation = federation
        self._accounting = RoundAccounting()

    @property
    def federation(self) -> Federation:
        return self._federation

    # -- OCALL ---------------------------------------------------------------

    def _ocall_exchange(self, kind: str, frames: Dict[str, bytes]) -> Dict[str, bytes]:
        """Route leader frames to members and collect their answers.

        Per-member enclave compute time is recorded so the phase clock
        can apply the parallel-round correction (members run on separate
        servers in a real deployment).
        """
        federation = self._federation
        network = federation.network
        leader_id = federation.leader_id
        responses: Dict[str, bytes] = {}
        member_times: Dict[str, float] = {}
        for member_id, frame in frames.items():
            if member_id == leader_id:
                raise ProtocolError("leader cannot ocall itself")
            network.send(
                Envelope(sender=leader_id, receiver=member_id, tag=kind, body=frame)
            )
            inbound = network.receive(member_id, kind)
            begin = time.perf_counter()
            reply = federation.hosts[member_id].handle_envelope(inbound)
            member_times[member_id] = time.perf_counter() - begin
            if reply is not None:
                network.send(reply)
                responses[member_id] = network.receive(leader_id, kind).body
        self._accounting.record_round(member_times)
        return responses

    # -- Study execution ---------------------------------------------------------

    def run(self) -> StudyResult:
        """Execute the three verification phases and build the result."""
        federation = self._federation
        config = federation.config
        leader_host = federation.leader_host
        leader = leader_host.enclave
        store = leader_host.store
        ref_store = leader_host.reference_store
        if store is None or ref_store is None:
            raise ProtocolError("leader is missing its sealed datasets")

        timings = PhaseTimings()
        clock = PhaseClock(timings)
        accounting = self._accounting

        with clock.task(DATA_AGGREGATION, accounting):
            leader.ecall(
                "lead_collect_summaries",
                store,
                ref_store,
                self._ocall_exchange,
                label="summaries",
            )

        with clock.task(INDEXING, accounting):
            l_prime = leader.ecall("lead_run_maf", label="maf")
            leader.ecall(
                "lead_broadcast_retained", "prime", self._ocall_exchange,
                label="broadcast",
            )

        with clock.task(LD_ANALYSIS, accounting):
            l_double_prime = leader.ecall(
                "lead_run_ld", store, ref_store, self._ocall_exchange, label="ld"
            )
            leader.ecall(
                "lead_broadcast_retained", "double_prime", self._ocall_exchange,
                label="broadcast",
            )

        with clock.task(LR_ANALYSIS, accounting):
            l_safe = leader.ecall(
                "lead_run_lr", store, ref_store, self._ocall_exchange, label="lr"
            )
            leader.ecall(
                "lead_broadcast_retained", "safe", self._ocall_exchange,
                label="broadcast",
            )

        return self._build_result(timings, l_prime, l_double_prime, l_safe)

    def _build_result(
        self, timings, l_prime, l_double_prime, l_safe
    ) -> StudyResult:
        federation = self._federation
        config = federation.config
        leader = federation.leader_host.enclave

        collusion: Optional[CollusionReport] = None
        if config.collusion.enabled:
            outcomes = leader.ecall("lead_combo_outcomes", label="report")
            report = CollusionReport(
                baseline_safe=tuple(
                    int(s)
                    for s in leader.ecall("lead_plain_safe", label="report")
                )
            )
            for outcome in outcomes:
                if outcome["f"] == 0:
                    continue
                report.outcomes.append(
                    CombinationOutcome(
                        member_ids=tuple(outcome["members"]),
                        f=int(outcome["f"]),
                        safe_snps=tuple(int(s) for s in outcome["safe"]),
                    )
                )
            collusion = report

        totals = federation.network.total_stats()
        reports = federation.resource_reports()
        return StudyResult(
            study_id=config.study_id,
            leader_id=federation.leader_id,
            num_members=len(federation.hosts),
            l_des=config.snp_count,
            l_prime=list(l_prime),
            l_double_prime=list(l_double_prime),
            l_safe=list(l_safe),
            timings=timings,
            network_bytes=totals.wire_bytes,
            network_messages=totals.messages,
            enclave_peak_memory={
                gdo: report.peak_memory_bytes for gdo, report in reports.items()
            },
            enclave_cpu_utilization={
                gdo: report.cpu_utilization for gdo, report in reports.items()
            },
            release_power=float(leader.ecall("lead_release_power", label="report")),
            collusion=collusion,
        )

    def release_statistics(self) -> Dict[str, object]:
        """The leader's chi-squared statistics over the safe set."""
        return self._federation.leader_host.enclave.ecall(
            "lead_release_statistics", label="release"
        )


def run_study(
    cohort: Cohort,
    config: StudyConfig,
    num_members: int,
    *,
    network: Optional[SimulatedNetwork] = None,
    shuffle_seed: Optional[int] = None,
) -> StudyResult:
    """Convenience one-call API: partition, provision, run.

    This is the library's front door for the common case; examples and
    benchmarks use it, while tests that need to poke at internals build
    the federation explicitly.
    """
    if config.snp_count != cohort.num_snps:
        raise ProtocolError(
            f"config covers {config.snp_count} SNPs, cohort has {cohort.num_snps}"
        )
    datasets = partition_cohort(cohort, num_members, shuffle_seed=shuffle_seed)
    federation = build_federation(config, datasets, cohort, network=network)
    return GenDPRProtocol(federation).run()
