"""Runtime taint-tag cross-check against the static flow analysis.

The dynamic half of R6-R8: genotype columns leaving sealed storage are
tagged at the source, release/observation points are instrumented, and
every observed escape must map onto a statically-known declassification
site (R8's inventory).  The acceptance bar is **zero** statically
unknown escapes over a real sealed-storage workload.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.lint import LintConfig, run_lint
from repro.lint.config import load_config
from repro.lint.flow.runtime import (
    EscapeRecord,
    TaintMonitor,
    TaintedArray,
    TaintedColumnReader,
    taint_array,
    taint_of,
    unknown_escapes,
)
from repro.tee.enclave import Enclave, ecall
from repro.tee.storage import ColumnReader, seal_matrix

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_KEY = bytes(range(32))


class DataEnclave(Enclave):
    @ecall
    def noop(self) -> None:
        return None


@pytest.fixture()
def enclave():
    return DataEnclave(_KEY, "flow-runtime-test")


@pytest.fixture(scope="module")
def inventory():
    """The real declassification inventory from the static analysis."""
    config = load_config(REPO_ROOT / "lint.toml").with_flow(True)
    result = run_lint([REPO_ROOT / "src" / "repro"], config)
    entries = result.artifacts["declassifications"]
    assert entries, "static inventory must not be empty"
    return entries


def _matrix(rows=20, cols=12, seed=7):
    rng = np.random.Generator(np.random.PCG64(seed))
    return (rng.random((rows, cols)) < 0.3).astype(np.uint8)


class TestTaintedArray:
    def test_tag_survives_views_and_slices(self):
        arr = taint_array(np.arange(12), ["genotype"], "test")
        assert isinstance(arr, TaintedArray)
        assert taint_of(arr) == {"genotype"}
        assert taint_of(arr[3:7]) == {"genotype"}
        assert taint_of(arr.reshape(3, 4)) == {"genotype"}

    def test_tag_survives_ufuncs(self):
        arr = taint_array(np.arange(6, dtype=np.float64), ["key"], "test")
        assert taint_of(arr + 1.0) == {"key"}
        assert taint_of(arr * arr) == {"key"}
        assert taint_of(np.sqrt(arr)) == {"key"}

    def test_untagged_arrays_are_clean(self):
        assert taint_of(np.arange(4)) == frozenset()
        assert taint_of(np.arange(4).view(TaintedArray)) == frozenset()

    def test_taint_of_recurses_containers(self):
        arr = taint_array(np.arange(3), ["sealed"], "test")
        assert taint_of([arr, np.arange(2)]) == {"sealed"}
        assert taint_of({"a": (arr,)}) == {"sealed"}
        assert taint_of([1, "x", None]) == frozenset()


class TestTaintMonitor:
    def test_probe_records_only_tagged_values(self):
        monitor = TaintMonitor()
        tagged = taint_array(np.arange(3), ["genotype"], "store")
        monitor.probe("stdout", np.arange(3))
        monitor.probe("stdout", tagged)
        escapes = monitor.escapes()
        assert len(escapes) == 1
        assert escapes[0].sink == "stdout"
        assert escapes[0].kinds == {"genotype"}
        assert escapes[0].origin == "store"
        assert monitor.probe_counts() == {"stdout": 2}

    def test_instrument_wraps_and_restores(self):
        class Sink:
            def emit(self, value):
                return "emitted"

        monitor = TaintMonitor()
        restore = monitor.instrument(Sink, "emit", sink="report")
        sink = Sink()
        tagged = taint_array(np.arange(3), ["phenotype"], "panel")
        assert sink.emit(tagged) == "emitted"
        assert sink.emit(np.arange(3)) == "emitted"
        restore()
        sink.emit(tagged)  # after restore: not recorded
        escapes = monitor.escapes()
        assert len(escapes) == 1
        assert escapes[0].sink == "report"
        assert monitor.probe_counts() == {"report": 2}

    def test_reset_clears_state(self):
        monitor = TaintMonitor()
        monitor.probe("x", taint_array(np.arange(2), ["key"], "k"))
        monitor.reset()
        assert monitor.escapes() == []
        assert monitor.probe_counts() == {}


class TestTaintedColumnReader:
    def test_columns_leave_storage_tagged(self, enclave):
        data = _matrix()
        store = seal_matrix(enclave, data, "flowtag", chunk_bytes=20 * 4)
        with TaintedColumnReader(ColumnReader(enclave, store)) as reader:
            assert reader.num_rows == 20
            assert reader.num_cols == 12
            col = reader.column(3)
            assert isinstance(col, TaintedArray)
            assert taint_of(col) == {"genotype", "sealed"}
            np.testing.assert_array_equal(np.asarray(col), data[:, 3])
            sums = reader.column_sums()
            assert taint_of(sums) == {"genotype", "sealed"}
            for _start, chunk in reader.iter_chunks():
                assert taint_of(chunk) == {"genotype", "sealed"}

    def test_derived_values_stay_tagged(self, enclave):
        data = _matrix()
        store = seal_matrix(enclave, data, "flowtag2")
        with TaintedColumnReader(ColumnReader(enclave, store)) as reader:
            counts = reader.column(0).astype(np.float64)
            maf = counts.sum() / (2.0 * len(counts))
            # Scalar reductions on tagged arrays keep the provenance.
            assert taint_of(np.asarray(maf)) in (
                {"genotype", "sealed"},
                frozenset(),  # numpy may return a plain scalar
            )


class TestCrossCheck:
    """Observed escapes vs. the statically-known release surface."""

    def test_sanctioned_workload_has_zero_unknown_escapes(
        self, enclave, inventory
    ):
        monitor = TaintMonitor()
        data = _matrix()
        store = seal_matrix(enclave, data, "workload")
        with TaintedColumnReader(
            ColumnReader(enclave, store), monitor
        ) as reader:
            total = np.asarray(reader.column_sums()).sum()
            # The only release: sealed back up (a sanctioned sink) —
            # sealing takes bytes, which drop the tag by construction.
            from repro.tee.sealing import seal

            restore = monitor.instrument(
                type(enclave), "noop", sink="release"
            )
            try:
                seal(enclave, bytes([int(total) % 256]), "result")
                enclave.noop()
            finally:
                restore()
        assert monitor.escapes() == []
        assert unknown_escapes(monitor.escapes(), inventory) == []

    def test_escape_at_inventoried_site_is_known(self, inventory):
        entry = inventory[0]
        known = EscapeRecord(
            sink="release",
            kinds=frozenset({"genotype"}),
            origin="store",
            stack=(
                (str(entry["path"]), int(entry["line"]), "run"),
            ),
        )
        assert unknown_escapes([known], inventory) == []

    def test_injected_leak_is_reported_unknown(self, inventory):
        monitor = TaintMonitor()
        tagged = taint_array(np.arange(4), ["genotype"], "store")
        monitor.probe("stdout", tagged)
        unknown = unknown_escapes(monitor.escapes(), inventory)
        assert len(unknown) == 1
        assert unknown[0].kinds == {"genotype"}

    def test_unknown_escapes_matches_by_basename_and_line(self):
        inventory = [{"path": "src/repro/core/protocol.py", "line": 42}]
        hit = EscapeRecord(
            sink="s",
            kinds=frozenset({"key"}),
            origin="o",
            stack=(("/abs/elsewhere/protocol.py", 42, "f"),),
        )
        miss = EscapeRecord(
            sink="s",
            kinds=frozenset({"key"}),
            origin="o",
            stack=(("/abs/elsewhere/protocol.py", 43, "f"),),
        )
        assert unknown_escapes([hit, miss], inventory) == [miss]
