"""Sealing and remote attestation."""

from __future__ import annotations

import pytest

from repro.errors import AttestationError, SealingError
from repro.tee.attestation import (
    REPORT_DATA_SIZE,
    AttestationService,
    Quote,
    pack_report_data,
)
from repro.tee.enclave import Enclave, ecall
from repro.tee.sealing import SealedBlob, seal, unseal

_KEY = bytes(range(32))


class StorageEnclave(Enclave):
    @ecall
    def noop(self) -> None:
        return None


class DifferentEnclave(Enclave):
    @ecall
    def other(self) -> None:
        return None


class TestSealing:
    def test_roundtrip(self):
        enclave = StorageEnclave(_KEY, "e1")
        blob = seal(enclave, b"secret data", label="slot")
        assert unseal(enclave, blob) == b"secret data"

    def test_same_code_same_platform_unseals(self):
        one = StorageEnclave(_KEY, "e1")
        two = StorageEnclave(_KEY, "e2")  # same class + platform key
        blob = seal(one, b"secret")
        assert unseal(two, blob) == b"secret"

    def test_different_code_cannot_unseal(self):
        blob = seal(StorageEnclave(_KEY, "e1"), b"secret")
        with pytest.raises(SealingError):
            unseal(DifferentEnclave(_KEY, "e2"), blob)

    def test_different_platform_cannot_unseal(self):
        blob = seal(StorageEnclave(_KEY, "e1"), b"secret")
        with pytest.raises(SealingError):
            unseal(StorageEnclave(bytes(32), "e1"), blob)

    def test_label_binding(self):
        enclave = StorageEnclave(_KEY, "e1")
        blob = seal(enclave, b"secret", label="slot-a")
        swapped = SealedBlob(data=blob.data, label="slot-b")
        with pytest.raises(SealingError):
            unseal(enclave, swapped)

    def test_tampered_blob_rejected(self):
        enclave = StorageEnclave(_KEY, "e1")
        blob = seal(enclave, b"secret")
        raw = bytearray(blob.data)
        raw[-1] ^= 1
        with pytest.raises(SealingError):
            unseal(enclave, SealedBlob(data=bytes(raw), label=blob.label))

    def test_not_a_blob_rejected(self):
        enclave = StorageEnclave(_KEY, "e1")
        with pytest.raises(SealingError):
            unseal(enclave, SealedBlob(data=b"garbage", label=""))

    def test_blob_len(self):
        blob = seal(StorageEnclave(_KEY, "e1"), bytes(100))
        assert len(blob) > 100


class TestAttestation:
    def _setup(self):
        service = AttestationService(master_secret=_KEY)
        platform = service.register_platform("machine-1")
        enclave = StorageEnclave(platform.root_key, "e1")
        return service, platform, enclave

    def test_quote_verifies(self):
        service, platform, enclave = self._setup()
        quote = platform.quote_enclave(enclave, pack_report_data(b"hello"))
        service.verify_quote(quote, enclave.measurement)  # no raise

    def test_verifier_facade(self):
        service, platform, enclave = self._setup()
        quote = platform.quote_enclave(enclave, pack_report_data(b"x"))
        service.verifier().verify(quote, enclave.measurement)

    def test_wrong_measurement_rejected(self):
        service, platform, enclave = self._setup()
        other = DifferentEnclave(platform.root_key, "e2")
        quote = platform.quote_enclave(other, pack_report_data(b"x"))
        with pytest.raises(AttestationError, match="measurement"):
            service.verify_quote(quote, enclave.measurement)

    def test_forged_signature_rejected(self):
        service, platform, enclave = self._setup()
        quote = platform.quote_enclave(enclave, pack_report_data(b"x"))
        forged = Quote(
            platform_id=quote.platform_id,
            measurement=quote.measurement,
            report_data=quote.report_data,
            signature=bytes(32),
        )
        with pytest.raises(AttestationError):
            service.verify_quote(forged, enclave.measurement)

    def test_tampered_report_data_rejected(self):
        service, platform, enclave = self._setup()
        quote = platform.quote_enclave(enclave, pack_report_data(b"x"))
        tampered = Quote(
            platform_id=quote.platform_id,
            measurement=quote.measurement,
            report_data=pack_report_data(b"y"),
            signature=quote.signature,
        )
        with pytest.raises(AttestationError):
            service.verify_quote(tampered, enclave.measurement)

    def test_unregistered_platform_rejected(self):
        service, platform, enclave = self._setup()
        other_service = AttestationService(master_secret=bytes(32))
        quote = platform.quote_enclave(enclave, pack_report_data(b"x"))
        with pytest.raises(AttestationError, match="unregistered"):
            other_service.verify_quote(quote, enclave.measurement)

    def test_revocation(self):
        service, platform, enclave = self._setup()
        quote = platform.quote_enclave(enclave, pack_report_data(b"x"))
        service.revoke_platform("machine-1")
        with pytest.raises(AttestationError, match="revoked"):
            service.verify_quote(quote, enclave.measurement)

    def test_duplicate_platform_registration_rejected(self):
        service, _, _ = self._setup()
        with pytest.raises(AttestationError):
            service.register_platform("machine-1")

    def test_empty_platform_id_rejected(self):
        with pytest.raises(AttestationError):
            AttestationService(_KEY).register_platform("")

    def test_report_data_size_enforced(self):
        assert len(pack_report_data(b"a", b"b")) == REPORT_DATA_SIZE
        with pytest.raises(AttestationError):
            Quote(
                platform_id="p",
                measurement=StorageEnclave(_KEY, "e").measurement,
                report_data=b"short",
                signature=bytes(32),
            )

    def test_report_data_item_order_matters(self):
        assert pack_report_data(b"a", b"b") != pack_report_data(b"b", b"a")
        # Length prefixing prevents concatenation ambiguity.
        assert pack_report_data(b"ab", b"c") != pack_report_data(b"a", b"bc")
