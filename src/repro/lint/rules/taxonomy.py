"""R5 — error taxonomy.

The supervised runtime (PR 3) classifies every failure: chaos runs must
end either bit-identical to the fault-free reference or with a
*classified* :class:`~repro.errors.ReproError` subclass, and the CLI
catches exactly that base type at its boundary.  A stray ``ValueError``
in protocol, network or TEE code escapes both nets — the supervisor
would misfile it as an infrastructure bug and the chaos suite would
count it as an unclassified abort.  Every ``raise`` in the scoped
packages must therefore use a :mod:`repro.errors` class (or a local
subclass of one).

Re-raises (``raise``, ``raise exc``) and exceptions whose origin the
analysis cannot see (callables passed in, attribute lookups outside
``repro.errors``) are left alone: the rule only flags what it can
prove — direct constructions of builtin exceptions.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterable, List, Set, Tuple

from ..astutil import dotted_name
from ..findings import Finding
from . import ModuleInfo, Rule, register

#: Names of every builtin exception type, computed once.
BUILTIN_EXCEPTIONS: "frozenset[str]" = frozenset(
    name
    for name, value in vars(builtins).items()
    if isinstance(value, type) and issubclass(value, BaseException)
)


def _errors_module_imports(module: ModuleInfo) -> Set[str]:
    """Local names bound to classes from a ``…errors`` module."""
    allowed: Set[str] = set()
    for alias, target in module.imports.aliases.items():
        # "repro.errors.ProtocolError", "errors.ProtocolError" …
        head, _, _leaf = target.rpartition(".")
        if head.endswith("errors") or head == "errors":
            allowed.add(alias)
    return allowed


def _local_subclasses(module: ModuleInfo, allowed: Set[str]) -> Set[str]:
    """Classes defined here whose bases chain back to an allowed name."""
    grown = set(allowed)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name in grown:
                continue
            for base in node.bases:
                name = dotted_name(base)
                if name is None:
                    continue
                leaf = name.rsplit(".", 1)[-1]
                if name in grown or leaf in grown:
                    grown.add(node.name)
                    changed = True
                    break
    return grown


@register
class ErrorTaxonomyRule(Rule):
    rule_id = "R5"
    name = "error-taxonomy"
    rationale = (
        "supervisor failure classification is total only if every "
        "protocol/net/TEE raise is a repro.errors subclass"
    )
    default_scopes = (
        "protocol",
        "net",
        "tee",
        "serve",
        "faults",
        "obs",
        "fuzz",
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        allow_names: Tuple[str, ...] = self.option_tuple("allow", ())
        allowed = _errors_module_imports(module)
        allowed |= set(allow_names)
        allowed = _local_subclasses(module, allowed)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if not isinstance(exc, ast.Call):
                continue  # bare/re-raise of a bound exception object
            name = dotted_name(exc.func)
            if name is None:
                continue
            if name in allowed:
                continue
            resolved = module.imports.resolve(name)
            if ".errors." in resolved or resolved.startswith("errors."):
                continue
            if name in BUILTIN_EXCEPTIONS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"raise of builtin {name!r} escapes the repro "
                        "error taxonomy; raise a repro.errors subclass "
                        "so supervisor classification stays total",
                    )
                )
        return findings
