"""Per-study session state inside the service.

A :class:`StudySession` is the unit the service schedules: one
submitted study with its own protocol state — RNG streams (derived from
its own ``StudyConfig``), a network namespace on the shared router (the
pool slot's scope), checkpoints (the supervisor's, if resilience is
enabled) — over the shared warm substrate.  Sessions move through

    QUEUED → RUNNING → DONE | FAILED | CANCELLED

and never backwards; a session that fails or is cancelled aborts alone
while the service keeps draining the queue.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from ..config import StudyConfig
from ..genomics.population import Cohort

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a session can never leave.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class StudySession:
    """One submitted study's lifecycle, results and accounting.

    All mutation happens under the owning service's bookkeeping; readers
    get consistent snapshots via :meth:`to_dict`.  Durations are
    measured with ``perf_counter`` deltas only — the service keeps no
    wall-clock timestamps.
    """

    def __init__(
        self, study_id: str, cohort: Cohort, config: StudyConfig
    ):
        self.study_id = study_id
        self.cohort = cohort
        self.config = config
        self.status = QUEUED
        self.cancel_requested = threading.Event()
        self.finished = threading.Event()
        self.result = None
        self.report = None
        self.error: Optional[BaseException] = None
        self.slot_namespace: Optional[str] = None
        self.warm = False
        self.rounds = 0
        self.round_wait_seconds = 0.0
        self._queued_at = time.perf_counter()
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None

    # -- lifecycle -----------------------------------------------------------

    def mark_running(self) -> None:
        self.status = RUNNING
        self._started_at = time.perf_counter()

    def mark_finished(self, status: str) -> None:
        self.status = status
        self._finished_at = time.perf_counter()
        self.finished.set()

    # -- accounting ----------------------------------------------------------

    @property
    def wait_seconds(self) -> float:
        """Seconds spent queued before the run started (or so far)."""
        if self._started_at is not None:
            return self._started_at - self._queued_at
        if self._finished_at is not None:  # cancelled while queued
            return self._finished_at - self._queued_at
        return time.perf_counter() - self._queued_at

    @property
    def run_seconds(self) -> float:
        """Wall seconds of the protocol run (or so far)."""
        if self._started_at is None:
            return 0.0
        end = self._finished_at
        if end is None:
            end = time.perf_counter()
        return end - self._started_at

    @property
    def total_seconds(self) -> float:
        """Submit-to-terminal wall seconds (or so far)."""
        end = self._finished_at
        if end is None:
            end = time.perf_counter()
        return end - self._queued_at

    def to_dict(self) -> Dict[str, Any]:
        """Status snapshot for the ``status`` API and the CLI."""
        snapshot: Dict[str, Any] = {
            "study_id": self.study_id,
            "status": self.status,
            "wait_seconds": self.wait_seconds,
            "run_seconds": self.run_seconds,
            "total_seconds": self.total_seconds,
            "rounds": self.rounds,
            "round_wait_seconds": self.round_wait_seconds,
            "warm": self.warm,
        }
        if self.slot_namespace is not None:
            snapshot["slot"] = self.slot_namespace
        if self.error is not None:
            snapshot["error"] = type(self.error).__name__
        return snapshot
