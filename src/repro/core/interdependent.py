"""Interdependent release assessment (the I-GWAS problem).

A federation rarely publishes once.  Statistics released in earlier
epochs (or earlier studies over overlapping cohorts) are already in the
adversary's hands, and *their* leakage composes with whatever is
released next: a SNP set that is safe in isolation can push the
cumulative LR detector past the power threshold when combined with
prior publications.  The paper cites this interdependence problem
(I-GWAS, its reference [37]) as the companion line of work; this module
implements the assessment for the repository's dynamic-study driver:

* the LR detector is evaluated over the **union** of everything ever
  published plus the new candidates, and
* new SNPs are admitted, in the study's significance order, only while
  the cumulative power stays below the threshold.

If the already-public set alone exceeds the threshold under the current
(grown) cohort, the assessment is *blocked*: nothing new is released
and the exposure is reported for the federation's governance process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ProtocolError
from ..genomics.population import Cohort
from ..stats import chisq, lr_test


@dataclass(frozen=True)
class InterdependentAssessment:
    """Outcome of one cumulative-exposure assessment."""

    #: SNPs newly admitted by this assessment (disjoint from published).
    admitted: Tuple[int, ...]
    #: Cumulative detector power over published + admitted.
    cumulative_power: float
    #: Power of the already-published set alone under the current cohort.
    prior_power: float
    #: True when the prior exposure alone breaches the threshold.
    blocked: bool

    @property
    def admitted_count(self) -> int:
        return len(self.admitted)


def assess_interdependent_release(
    cohort: Cohort,
    published: Sequence[int],
    candidates: Sequence[int],
    *,
    alpha: float,
    beta: float,
) -> InterdependentAssessment:
    """Admit candidates only while the *cumulative* exposure stays safe.

    Args:
        cohort: the current study cohort (case + reference populations).
        published: SNPs whose statistics are already public.
        candidates: SNPs the current verification deemed safe in
            isolation (e.g. this epoch's ``L_safe``).
        alpha: the detector's tolerated false-positive rate.
        beta: the identification-power threshold.

    Candidates are considered in descending chi-squared significance —
    the study's utility ordering — so the remaining privacy budget goes
    to the most valuable SNPs first.
    """
    published_list = sorted({int(s) for s in published})
    candidate_list = [
        int(s) for s in candidates if int(s) not in set(published_list)
    ]
    if any(
        not 0 <= s < cohort.num_snps for s in published_list + candidate_list
    ):
        raise ProtocolError("SNP index outside the study panel")

    union = published_list + sorted(set(candidate_list))
    if not union:
        return InterdependentAssessment(
            admitted=(), cumulative_power=0.0, prior_power=0.0, blocked=False
        )

    case = cohort.case.array()[:, union]
    reference = cohort.reference.array()[:, union]
    n_case = cohort.case.num_individuals
    n_ref = cohort.reference.num_individuals
    case_freqs = case.sum(axis=0) / n_case
    ref_freqs = reference.sum(axis=0) / n_ref
    case_lr = lr_test.lr_matrix(case, case_freqs, ref_freqs)
    ref_lr = lr_test.lr_matrix(reference, case_freqs, ref_freqs)

    position = {snp: i for i, snp in enumerate(union)}
    published_positions = [position[s] for s in published_list]

    prior_power = 0.0
    if published_positions:
        prior_power = lr_test.empirical_power(
            lr_test.lr_scores(case_lr, published_positions),
            lr_test.lr_scores(ref_lr, published_positions),
            alpha,
        )
        if prior_power >= beta:
            return InterdependentAssessment(
                admitted=(),
                cumulative_power=prior_power,
                prior_power=prior_power,
                blocked=True,
            )

    # Candidate order: descending chi-squared significance on the
    # current cohort (ascending ranking p-value, stable ties).
    ranking = chisq.rank_pvalues(
        cohort.case.allele_counts(),
        cohort.reference.allele_counts(),
        n_case,
        n_ref,
    )
    ordered_candidates = sorted(
        set(candidate_list), key=lambda s: (ranking[s], s)
    )
    order = [position[s] for s in ordered_candidates]

    selection = lr_test.select_safe_subset(
        case_lr,
        ref_lr,
        order,
        alpha=alpha,
        beta=beta,
        preselected=published_positions,
    )
    admitted = tuple(
        sorted(union[c] for c in selection.selected_columns)
    )
    return InterdependentAssessment(
        admitted=admitted,
        cumulative_power=selection.power,
        prior_power=prior_power,
        blocked=False,
    )


def cumulative_release_power(
    cohort: Cohort, released: Sequence[int], *, alpha: float
) -> float:
    """Detector power over an arbitrary released set on this cohort."""
    snps = sorted({int(s) for s in released})
    if not snps:
        return 0.0
    case = cohort.case.array()[:, snps]
    reference = cohort.reference.array()[:, snps]
    case_freqs = case.sum(axis=0) / cohort.case.num_individuals
    ref_freqs = reference.sum(axis=0) / cohort.reference.num_individuals
    return lr_test.empirical_power(
        lr_test.lr_scores(lr_test.lr_matrix(case, case_freqs, ref_freqs)),
        lr_test.lr_scores(lr_test.lr_matrix(reference, case_freqs, ref_freqs)),
        alpha,
    )


def admissible_after_history(
    cohort: Cohort,
    history: List[Sequence[int]],
    candidates: Sequence[int],
    *,
    alpha: float,
    beta: float,
) -> InterdependentAssessment:
    """Convenience wrapper: assess against the union of past releases."""
    published: set = set()
    for release in history:
        published |= {int(s) for s in release}
    return assess_interdependent_release(
        cohort, sorted(published), candidates, alpha=alpha, beta=beta
    )
