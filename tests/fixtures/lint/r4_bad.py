"""R4 fixture — inconsistent lock acquisition orders (cycle) plus a
self-deadlocking nested acquisition."""

import threading


class Worker:
    def __init__(self):
        self._alpha_lock = threading.Lock()
        self._beta_lock = threading.Lock()

    def forward(self):
        with self._alpha_lock:
            with self._beta_lock:  # alpha -> beta
                return 1

    def backward(self):
        with self._beta_lock:
            with self._alpha_lock:  # beta -> alpha: closes the cycle
                return 2

    def stuck(self):
        with self._alpha_lock:
            with self._alpha_lock:  # immediate self-deadlock
                return 3
