"""Cryptographic substrate of the GenDPR reproduction.

Everything the TEE and protocol layers need, implemented from scratch on
the standard library (plus numpy for bulk XOR):

* :mod:`~repro.crypto.aes` — reference AES block cipher (FIPS-197).
* :mod:`~repro.crypto.modes` — CTR/CBC modes and PKCS#7 padding.
* :mod:`~repro.crypto.stream` — fast SHA-256 counter-mode stream cipher.
* :mod:`~repro.crypto.authenticated` — encrypt-then-MAC AEAD frames.
* :mod:`~repro.crypto.kdf` — HKDF and labelled subkey derivation.
* :mod:`~repro.crypto.signing` — HMAC signing for datasets and quotes.
* :mod:`~repro.crypto.dh` — Diffie-Hellman key agreement for attested
  channels.
* :mod:`~repro.crypto.rng` — deterministic DRBG for reproducible runs.
"""

from .aes import AES, BLOCK_SIZE
from .authenticated import (
    AEAD_OVERHEAD,
    AesCtrHmacAead,
    StreamAead,
    default_aead,
)
from .dh import KeyPair, derive_channel_key, generate_keypair, shared_secret
from .kdf import derive_subkey, hkdf
from .modes import CBC, CTR, ciphertext_expansion, pkcs7_pad, pkcs7_unpad
from .rng import DeterministicRng, system_random_bytes
from .signing import SIGNATURE_SIZE, KeyedVerifier, MacSigner, digest
from .stream import NONCE_SIZE, StreamCipher

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "AEAD_OVERHEAD",
    "AesCtrHmacAead",
    "StreamAead",
    "default_aead",
    "KeyPair",
    "derive_channel_key",
    "generate_keypair",
    "shared_secret",
    "derive_subkey",
    "hkdf",
    "CBC",
    "CTR",
    "ciphertext_expansion",
    "pkcs7_pad",
    "pkcs7_unpad",
    "DeterministicRng",
    "system_random_bytes",
    "SIGNATURE_SIZE",
    "KeyedVerifier",
    "MacSigner",
    "digest",
    "NONCE_SIZE",
    "StreamCipher",
]
