"""Figures 5a/5b — running time comparison at 1,000 SNPs.

Paper: per-task running time (Data Aggregation, Indexing/Sorting/
AlleleFreq., LD analysis, LR-test analysis) of the centralized baseline
vs GenDPR with 2/3/5/7 GDOs, for 7,430 (5a) and 14,860 (5b) case
genomes over 1,000 SNPs.  Expected shape: GenDPR is comparable to (and
with more GDOs faster than) the centralized run, the LR-test dominates,
and doubling the genomes roughly doubles the time.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    PAPER_CASE_FULL,
    PAPER_CASE_HALF,
    PAPER_GDO_COUNTS,
    bench_scale,
    centralized_row,
    gendpr_row,
    paper_cohort,
    render_runtime_figure,
)

SNPS = 1_000


@pytest.mark.parametrize(
    "figure,case_size",
    [("fig5a", PAPER_CASE_HALF), ("fig5b", PAPER_CASE_FULL)],
)
def test_fig5_running_time(benchmark, save_result, results_dir, figure, case_size):
    cohort, _ = paper_cohort(case_size, SNPS)
    # One configuration per figure also runs traced, leaving the
    # machine-readable RunReport next to the rendered table; the row
    # contents (and therefore the printed figure) are unchanged.
    report_path = str(results_dir / f"{figure}_gendpr3_runreport.json")

    def run_all():
        rows = [centralized_row(cohort, SNPS, 3)]
        rows += [
            gendpr_row(
                cohort, SNPS, g,
                report_path=report_path if g == 3 else None,
            )
            for g in PAPER_GDO_COUNTS
        ]
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    caption = (
        f"Figure {figure[-2:]}: {cohort.case.num_individuals:,} genomes / "
        f"{SNPS:,} SNPs (scale={bench_scale()})"
    )
    save_result(figure, render_runtime_figure(rows, caption))

    central = rows[0]
    for row in rows[1:]:
        # Paper shape: the distributed protocol stays within a small
        # factor of the centralized baseline despite coordinating many
        # enclaves over encrypted channels.
        assert row["total_ms"] < 25 * max(central["total_ms"], 1.0)
    benchmark.extra_info["rows"] = rows
