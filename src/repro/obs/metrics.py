"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry is the queryable side of observability: where spans answer
"what happened when", metrics answer "how much, in total".  The bridge
module feeds the accounting the codebase already keeps (``LinkStats``,
``ResourceReport``, ``PhaseTimings``) into a registry at report time,
and the paper's tables map onto metric names (see
``docs/OBSERVABILITY.md`` for the full mapping).

Histograms use fixed bucket boundaries, so a percentile estimate is the
upper bound of the bucket containing the requested rank: for data
``x₁…xₙ`` and quantile ``q``, the true order statistic ``t`` satisfies
``lower_bound < t <= percentile(q)``.  That bracketing invariant is what
the property-based tests check.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError


class Counter:
    """Monotonically increasing count (messages, bytes, ECALLs)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-written value (peak memory, simulated clock, utilisation)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` geometric bucket bounds: start, start·factor, …"""
    if start <= 0 or factor <= 1.0 or count < 1:
        raise ObservabilityError("need start > 0, factor > 1, count >= 1")
    return tuple(start * factor**i for i in range(count))


#: Default bounds: 1 µs … ~18 minutes in ¼-decade steps — wide enough
#: for both durations (seconds) and message sizes (bytes).
DEFAULT_BUCKETS = exponential_buckets(1e-6, 4.0, 25)


class Histogram:
    """Fixed-bucket histogram with bracketed percentile estimates.

    A value ``v`` lands in the first bucket whose bound is ``>= v``;
    values above every bound land in an implicit overflow bucket whose
    reported percentile is the observed maximum.
    """

    __slots__ = ("name", "_bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be strictly increasing"
            )
        self.name = name
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    @property
    def bounds(self) -> Tuple[float, ...]:
        return self._bounds

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ObservabilityError(f"histogram {self.name!r}: NaN observation")
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self._count if self._count else None

    def percentile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the ``q``-quantile.

        Returns ``None`` on an empty histogram.  The estimate ``e``
        brackets the true order statistic ``t``: the bound below ``e``
        is ``< t <= e`` (for the overflow bucket, ``e`` is the observed
        maximum, which still satisfies ``t <= e``).
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return None
            rank = max(1, math.ceil(q * self._count))
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= rank:
                    if index < len(self._bounds):
                        return self._bounds[index]
                    return self._max
            return self._max  # unreachable; defensive

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot with percentile estimates (RunReport embeds this)."""
        payload: Dict[str, object] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "bounds": list(self._bounds),
        }
        with self._lock:
            payload["counts"] = list(self._counts)
        return payload


class MetricsRegistry:
    """Thread-safe get-or-create registry of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, *args):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ObservabilityError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        if bounds is None:
            return self._get_or_create(name, Histogram)
        return self._get_or_create(name, Histogram, bounds)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe dump grouped by metric type, as the RunReport stores it."""
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        with self._lock:
            metrics = dict(self._metrics)
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = metric.as_dict()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
