"""Sealed, chunked genotype storage.

SGX enclaves have scarce protected memory (the paper discusses the
128 MB EPC limit), so GenDPR keeps genome datasets *sealed outside* the
enclave and streams them through in bounded pieces; Table 3's ~2 MB
enclave footprints are only possible because the enclave never holds a
full genotype matrix.

:class:`SealedColumnStore` reproduces that design: a genotype matrix is
sealed into column-range chunks that live with the untrusted host, and
the enclave unseals only the chunks a computation touches, registering
the transient working set with its resource meter.  Each chunk is
independently sealed with the chunk index bound as associated data, so
the host can neither substitute, reorder, nor truncate chunks without
detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import SealingError
from .enclave import Enclave
from .sealing import SealedBlob, seal, unseal

#: Target plaintext bytes per sealed chunk.
DEFAULT_CHUNK_BYTES = 256 * 1024


@dataclass(frozen=True)
class SealedColumnStore:
    """A matrix sealed as column chunks, held on untrusted storage."""

    num_rows: int
    num_cols: int
    chunk_width: int
    chunks: Tuple[SealedBlob, ...]
    label: str

    def __post_init__(self) -> None:
        expected = (self.num_cols + self.chunk_width - 1) // self.chunk_width
        if expected != len(self.chunks):
            raise SealingError(
                f"store has {len(self.chunks)} chunks, expected {expected}"
            )

    @property
    def sealed_bytes(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)

    def chunk_of_column(self, column: int) -> int:
        if not 0 <= column < self.num_cols:
            raise SealingError(f"column {column} out of range")
        return column // self.chunk_width


def chunk_width_for(num_rows: int, target_bytes: int = DEFAULT_CHUNK_BYTES) -> int:
    """Columns per chunk so one chunk is roughly ``target_bytes``."""
    if num_rows <= 0:
        raise SealingError("num_rows must be positive")
    return max(1, target_bytes // num_rows)


def seal_matrix(
    enclave: Enclave,
    matrix: np.ndarray,
    label: str,
    *,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
) -> SealedColumnStore:
    """Seal ``matrix`` (uint8, row-major) into a column-chunked store.

    Runs inside the enclave that will later read the store; the sealing
    key binds the chunks to this enclave's measurement and platform.
    """
    data = np.ascontiguousarray(matrix, dtype=np.uint8)
    if data.ndim != 2:
        raise SealingError("only 2-D matrices can be sealed")
    num_rows, num_cols = data.shape
    width = chunk_width_for(num_rows, chunk_bytes)
    chunks: List[SealedBlob] = []
    for start in range(0, num_cols, width):
        piece = np.ascontiguousarray(data[:, start : start + width])
        chunk_label = f"{label}/chunk-{start // width}"
        chunks.append(seal(enclave, piece.tobytes(), chunk_label))
    return SealedColumnStore(
        num_rows=num_rows,
        num_cols=num_cols,
        chunk_width=width,
        chunks=tuple(chunks),
        label=label,
    )


class ColumnReader:
    """Enclave-side streaming reader over a sealed column store.

    Unseals chunks on demand, keeps at most ``max_cached_chunks`` of
    them resident, and registers the resident set with the enclave's
    resource meter so the benchmarks see the true trusted working set.
    """

    def __init__(
        self,
        enclave: Enclave,
        store: SealedColumnStore,
        *,
        max_cached_chunks: int = 4,
    ):
        if max_cached_chunks < 1:
            raise SealingError("must cache at least one chunk")
        self._enclave = enclave
        self._store = store
        self._max_cached = max_cached_chunks
        self._cache: Dict[int, np.ndarray] = {}

    def _buffer_name(self, chunk_index: int) -> str:
        return f"reader/{self._store.label}/chunk-{chunk_index}"

    def _load_chunk(self, chunk_index: int) -> np.ndarray:
        if chunk_index in self._cache:
            return self._cache[chunk_index]
        while len(self._cache) >= self._max_cached:
            evicted = next(iter(self._cache))
            del self._cache[evicted]
            self._enclave.meter.release_buffer(self._buffer_name(evicted))
        blob = self._store.chunks[chunk_index]
        # Re-derive the expected label from the *position*: a host that
        # reorders sealed chunks (each blob carries its own label) must
        # not be able to serve column data from the wrong range.
        expected = SealedBlob(
            data=blob.data, label=f"{self._store.label}/chunk-{chunk_index}"
        )
        raw = unseal(self._enclave, expected)
        start = chunk_index * self._store.chunk_width
        width = min(self._store.chunk_width, self._store.num_cols - start)
        chunk = np.frombuffer(raw, dtype=np.uint8).reshape(
            self._store.num_rows, width
        )
        self._cache[chunk_index] = chunk
        self._enclave.meter.register_buffer(
            self._buffer_name(chunk_index), chunk.nbytes
        )
        return chunk

    @property
    def num_rows(self) -> int:
        return self._store.num_rows

    @property
    def num_cols(self) -> int:
        return self._store.num_cols

    def column(self, index: int) -> np.ndarray:
        """One column as a read-only uint8 vector."""
        chunk_index = self._store.chunk_of_column(index)
        chunk = self._load_chunk(chunk_index)
        offset = index - chunk_index * self._store.chunk_width
        return chunk[:, offset]

    def columns(self, indices: Sequence[int]) -> np.ndarray:
        """Gather several columns into an ``N x len(indices)`` matrix.

        Chunks are visited in sorted order so each is unsealed once per
        call even when indices interleave chunk boundaries; the copy out
        of each chunk is a single fancy-index operation.
        """
        index_array = np.asarray(list(indices), dtype=np.int64)
        out = np.empty((self._store.num_rows, index_array.size), dtype=np.uint8)
        if index_array.size == 0:
            return out
        if index_array.min() < 0 or index_array.max() >= self._store.num_cols:
            raise SealingError("column index out of range")
        chunk_ids = index_array // self._store.chunk_width
        for chunk_index in np.unique(chunk_ids):
            chunk = self._load_chunk(int(chunk_index))
            mask = chunk_ids == chunk_index
            offsets = index_array[mask] - int(chunk_index) * self._store.chunk_width
            out[:, np.nonzero(mask)[0]] = chunk[:, offsets]
        return out

    def iter_chunks(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Stream (start_column, chunk) pairs across the whole store."""
        for chunk_index in range(len(self._store.chunks)):
            start = chunk_index * self._store.chunk_width
            yield start, self._load_chunk(chunk_index)

    def column_sums(self, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Minor-allele counts per column over ``[start, stop)``.

        Streamed chunk by chunk, so the transient trusted working set is
        one chunk regardless of the range width — this is what keeps a
        shard enclave's leaf computation O(chunk) even for wide shards.
        The default range covers the whole store.
        """
        if stop is None:
            stop = self._store.num_cols
        if not 0 <= start <= stop <= self._store.num_cols:
            raise SealingError(
                f"column range [{start}, {stop}) outside "
                f"[0, {self._store.num_cols})"
            )
        sums = np.empty(stop - start, dtype=np.int64)
        if start == stop:
            return sums
        width = self._store.chunk_width
        for chunk_index in range(start // width, (stop - 1) // width + 1):
            chunk = self._load_chunk(chunk_index)
            chunk_start = chunk_index * width
            lo = max(start, chunk_start)
            hi = min(stop, chunk_start + chunk.shape[1])
            sums[lo - start : hi - start] = chunk[
                :, lo - chunk_start : hi - chunk_start
            ].sum(axis=0, dtype=np.int64)
        return sums

    def close(self) -> None:
        """Drop all cached chunks and their meter registrations."""
        for chunk_index in list(self._cache):
            self._enclave.meter.release_buffer(self._buffer_name(chunk_index))
        self._cache.clear()

    def __enter__(self) -> "ColumnReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
