"""Greedy reduction of invariant-violating genomes.

When the fuzzer finds a genome whose run breaks the decision
invariant, the raw genome is usually baroque — half a dozen armed
faults, exotic axes — and most of it is noise.  The shrinker reduces
it to a minimal reproducer before it is reported or committed: a
triager should read three active faults, not nine.

The algorithm is classic greedy delta debugging over the *typed*
feature structure (not bytes): repeatedly try to (a) simplify run axes
toward their defaults, (b) disarm whole fault features, and (c) lower
surviving rates down the palette, keeping any edit after which the
caller's predicate still observes the violation.  Every candidate is
:func:`~repro.fuzz.genome.normalize`\\ d first, so the shrinker only
ever proposes valid genomes, and the candidate order is fixed — no
randomness — so the same (genome, predicate) always reduces to the
same reproducer.  The run budget bounds total predicate evaluations
(each one is a full protocol run).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Sequence, Tuple

from .genome import RATE_FIELDS, PlanGenome, normalize

#: Descending rate ladder the rate-lowering pass walks.
SHRINK_RATE_LADDER: Tuple[float, ...] = (0.2, 0.12, 0.08, 0.05, 0.02, 0.01)


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the reproducer plus bookkeeping."""

    genome: PlanGenome
    runs_used: int
    reduced: bool

    @property
    def active_fault_count(self) -> int:
        return len(self.genome.active_faults())


def _axis_candidates(genome: PlanGenome) -> Iterator[PlanGenome]:
    """Axis simplifications, plainest-first."""
    if genome.shards > 1:
        yield replace(genome, shards=1)
    if genome.mode != "sequential":
        yield replace(genome, mode="sequential")
    if genome.f != 0:
        yield replace(genome, f=0)
    if not genome.supervised:
        yield replace(genome, supervised=True)
    if genome.integrity:
        # normalize() re-forces integrity when a module-compromise knob
        # is still armed, so this candidate only sticks once those are
        # already shrunk away.
        yield replace(genome, integrity=False)


def _disarm_candidates(genome: PlanGenome) -> Iterator[PlanGenome]:
    """One candidate per active fault feature, each fully disarmed."""
    faults = genome.faults
    for name in RATE_FIELDS:
        if getattr(faults, name) > 0.0:
            yield replace(genome, faults=replace(faults, **{name: 0.0}))
    for index in range(len(faults.crash_points)):
        yield replace(
            genome,
            faults=replace(
                faults,
                crash_points=tuple(
                    p for i, p in enumerate(faults.crash_points) if i != index
                ),
            ),
        )
    for index in range(len(faults.partition_windows)):
        yield replace(
            genome,
            faults=replace(
                faults,
                partition_windows=tuple(
                    w
                    for i, w in enumerate(faults.partition_windows)
                    if i != index
                ),
            ),
        )
    if faults.checkpoint_tamper:
        yield replace(genome, faults=replace(faults, checkpoint_tamper=""))


def _lower_rate_candidates(genome: PlanGenome) -> Iterator[PlanGenome]:
    """Lower each surviving rate one ladder step at a time."""
    faults = genome.faults
    for name in RATE_FIELDS:
        current = getattr(faults, name)
        if current <= 0.0:
            continue
        for lower in SHRINK_RATE_LADDER:
            if lower < current:
                yield replace(
                    genome, faults=replace(faults, **{name: lower})
                )
                break


class Shrinker:
    """Greedy, deterministic, run-budgeted genome reducer."""

    def __init__(
        self,
        predicate: Callable[[PlanGenome], bool],
        *,
        members: Sequence[str],
        max_runs: int = 200,
    ):
        self.predicate = predicate
        self.members = tuple(members)
        self.max_runs = max_runs
        self._runs = 0

    def _holds(self, genome: PlanGenome) -> bool:
        self._runs += 1
        return bool(self.predicate(genome))

    def shrink(self, genome: PlanGenome) -> ShrinkResult:
        """Reduce ``genome`` while the predicate keeps observing it.

        The caller must have already observed the violation on
        ``genome`` itself (the shrinker does not re-check the starting
        point, saving one run from the budget).
        """
        current = normalize(genome, self.members)
        self._runs = 0
        reduced = False
        progress = True
        while progress and self._runs < self.max_runs:
            progress = False
            for make_candidates in (
                _disarm_candidates,
                _axis_candidates,
                _lower_rate_candidates,
            ):
                for candidate in make_candidates(current):
                    if self._runs >= self.max_runs:
                        break
                    candidate = normalize(candidate, self.members)
                    if candidate.digest() == current.digest():
                        continue
                    if self._holds(candidate):
                        current = candidate
                        reduced = True
                        progress = True
                        # Restart passes from the simpler genome.
                        break
                if progress:
                    break
        return ShrinkResult(
            genome=current, runs_used=self._runs, reduced=reduced
        )
