"""GenDPR protocol orchestration.

:class:`GenDPRProtocol` drives one study across a provisioned
federation: it invokes the leader enclave's phase ECALLs, supplies the
OCALL through which the leader exchanges encrypted frames with member
enclaves, and assembles the :class:`~repro.core.phases.StudyResult`.

Everything that *decides* happens inside the trusted module
(:mod:`repro.core.enclave_logic`); this orchestrator is part of the
untrusted middleware and only ever touches ciphertext frames, timing
and accounting.
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from ..config import StudyConfig
from ..errors import (
    AuthenticationError,
    EnclaveCrashedError,
    EquivocationError,
    IntegrityError,
    MemberUnresponsiveError,
    NetworkError,
    PhaseOrderError,
    ProtocolError,
    SerializationError,
)
from ..genomics.population import Cohort
from ..net import Envelope, SimulatedNetwork
from ..obs import MetricsRegistry, RunReport, SpanCollector, config_fingerprint
from ..obs.bridge import (
    record_cache_stats,
    record_faults,
    record_integrity,
    record_network,
    record_resilience,
    record_resources,
    record_rounds,
    record_shard,
    record_spans,
    record_timings,
)
from ..obs.tracer import TRACER
from .federation import Federation
from .phases import CollusionReport, CombinationOutcome, StudyResult
from .shard import aggregation_tree, plan_shards
from .timing import (
    DATA_AGGREGATION,
    INDEXING,
    LD_ANALYSIS,
    LR_ANALYSIS,
    PhaseClock,
    PhaseTimings,
    RoundAccounting,
)


class GenDPRProtocol:
    """Runs one GenDPR study over a federation."""

    def __init__(self, federation: Federation):
        self._federation = federation
        self._accounting = RoundAccounting()
        self._executor: Optional[ThreadPoolExecutor] = None
        #: Phase outputs (l_prime / l_double_prime / l_safe); repopulated
        #: deterministically if the supervisor re-runs a phase.
        self._outputs: Dict[str, list] = {}
        #: Stats registered by a supervising ProtocolSupervisor, if any.
        self._supervision: Optional[Dict[str, object]] = None
        #: Lazily derived (ShardPlan, AggregationTree) for sharded runs.
        self._shard_layout = None
        #: Tree-repair generation the orchestrator is driving; bumped by
        #: ``_repair_tree`` and re-broadcast after a leader failover.
        self._shard_epoch = 0
        #: Member replacements spent against ``resilience.max_repairs``.
        self._shard_repairs = 0
        #: Repair/retry accounting for the observability bridge.
        self._shard_runtime: Dict[str, int] = {
            "repairs": 0,
            "tasks_rerun": 0,
            "level_retries": 0,
            "partials_redelivered": 0,
            "verify_runs": 0,
        }
        #: Mid-phase checkpoint hook installed by the supervisor; called
        #: after every completed shard task so a failover resumes from
        #: the last combine boundary instead of the phase start.
        self._progress_checkpoint = None
        self._resilient = None
        #: Optional per-round hook installed by the serving layer:
        #: ``gate(kind)`` returns a context manager entered around every
        #: OCALL round (fair scheduling + cancellation points).
        self._round_gate = None
        if federation.config.resilience.enabled:
            from .resilience import ResilientExchange

            self._resilient = ResilientExchange(self)
            self._exchange = self._resilient
        else:
            self._exchange = self._ocall_exchange
        self._integrity = federation.config.integrity.enabled

    def shard_repair_accounting(self) -> Dict[str, int]:
        """Tree-repair/retry counters of this run (empty when unsharded).

        The same numbers ``record_shard`` bridges into ``shard.repair.*``
        metrics for RunReports; exposed so the fuzz oracle can key
        behaviours on repair activity without enabling span tracing.
        """
        if not self._federation.config.sharding.enabled:
            return {}
        return dict(self._shard_runtime, epoch=self._shard_epoch)

    def install_round_gate(self, gate) -> None:
        """Install a round gate: ``gate(kind)`` -> context manager.

        The gate is entered around every OCALL round on both the plain
        and the resilient exchange path.  The service scheduler uses it
        for fair round-interleaving across concurrent studies and as
        the cancellation point (it raises
        :class:`~repro.errors.StudyCancelledError` at a round boundary,
        never mid-round).
        """
        self._round_gate = gate

    @property
    def round_gate(self):
        return self._round_gate

    @property
    def federation(self) -> Federation:
        return self._federation

    # -- OCALL ---------------------------------------------------------------

    def _ocall_exchange(self, kind: str, frames: Dict[str, bytes]) -> Dict[str, bytes]:
        """Route leader frames to members and collect their answers.

        Per-member enclave compute time is recorded so the phase clock
        can apply the parallel-round correction (members run on separate
        servers in a real deployment).  With
        ``config.execution.mode == "parallel"`` the members of a round
        are serviced concurrently on a thread pool; both modes produce
        bit-identical responses (and therefore study outcomes) — only
        the wall clock differs.
        """
        if self._round_gate is not None:
            with self._round_gate(kind):
                return self._run_ocall_round(kind, frames)
        return self._run_ocall_round(kind, frames)

    def _run_ocall_round(
        self, kind: str, frames: Dict[str, bytes]
    ) -> Dict[str, bytes]:
        if self._federation.leader_id in frames:
            raise ProtocolError("leader cannot ocall itself")
        injector = self._federation.fault_injector
        if injector is not None:
            # Advance the fault plan's round counter even on the plain
            # path, so partition windows fire identically whether or not
            # the resilient exchange is in front of them.
            injector.begin_round(kind)
        execution = self._federation.config.execution
        if execution.is_parallel and len(frames) > 1:
            return self._exchange_parallel(kind, frames)
        return self._exchange_sequential(kind, frames)

    def _exchange_sequential(
        self, kind: str, frames: Dict[str, bytes]
    ) -> Dict[str, bytes]:
        federation = self._federation
        network = federation.network
        leader_id = federation.leader_id
        responses: Dict[str, bytes] = {}
        member_times: Dict[str, float] = {}
        with TRACER.span("round", kind=kind, members=len(frames)):
            for member_id, frame in frames.items():
                network.send(
                    Envelope(
                        sender=leader_id, receiver=member_id, tag=kind, body=frame
                    )
                )
                inbound = network.receive(member_id, kind)
                begin = time.perf_counter()
                reply = federation.hosts[member_id].handle_envelope(inbound)
                member_times[member_id] = time.perf_counter() - begin
                if reply is not None:
                    network.send(reply)
                    responses[member_id] = network.receive(leader_id, kind).body
        self._accounting.record_round(member_times, kind=kind)
        return responses

    def _exchange_parallel(
        self, kind: str, frames: Dict[str, bytes]
    ) -> Dict[str, bytes]:
        """Concurrent fan-out: one worker services one member per round.

        Requests were already built (and AEAD-protected) sequentially by
        the leader enclave, so per-channel sequence numbers are
        deterministic; each worker touches only its own member's host,
        channel and inbox.  Replies land in the leader inbox in arrival
        order, so they are drained keyed by sender and re-ordered to the
        request order before returning — the response dict is
        byte-identical to the sequential path's.
        """
        federation = self._federation
        network = federation.network
        leader_id = federation.leader_id
        member_times: Dict[str, float] = {}
        with TRACER.span("round", kind=kind, members=len(frames), concurrent=True):
            parent = TRACER.current_span_id() if TRACER.enabled else None

            def service(member_id: str, frame: bytes) -> Tuple[float, bool]:
                with TRACER.propagated(parent):
                    network.send(
                        Envelope(
                            sender=leader_id,
                            receiver=member_id,
                            tag=kind,
                            body=frame,
                        )
                    )
                    inbound = network.receive(member_id, kind)
                    # thread_time, not perf_counter: wall time on a
                    # worker includes slices where sibling threads were
                    # scheduled, which would inflate this member's
                    # modelled compute; CPU time of the worker thread is
                    # what the member's own server would spend.
                    begin = time.thread_time()
                    reply = federation.hosts[member_id].handle_envelope(inbound)
                    elapsed = time.thread_time() - begin
                    if reply is not None:
                        network.send(reply)
                    return elapsed, reply is not None

            executor = self._ensure_executor()
            wall_begin = time.perf_counter()
            futures = {
                member_id: executor.submit(service, member_id, frame)
                for member_id, frame in frames.items()
            }
            replies_expected = 0
            for member_id, future in futures.items():
                elapsed, replied = future.result()
                member_times[member_id] = elapsed
                replies_expected += 1 if replied else 0
            wall = time.perf_counter() - wall_begin
            arrived: Dict[str, bytes] = {}
            for _ in range(replies_expected):
                envelope = network.receive(leader_id, kind)
                arrived[envelope.sender] = envelope.body
        self._accounting.record_round(
            member_times, kind=kind, wall_seconds=wall, concurrent=True
        )
        # Deterministic response order: request order, not arrival order.
        return {
            member_id: arrived[member_id]
            for member_id in frames
            if member_id in arrived
        }

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            execution = self._federation.config.execution
            width = max(1, len(self._federation.hosts) - 1)
            self._executor = ThreadPoolExecutor(
                max_workers=execution.max_workers or width,
                thread_name_prefix="ocall",
            )
        return self._executor

    def close(self) -> None:
        """Release the fan-out thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- Study execution ---------------------------------------------------------

    def run(self) -> StudyResult:
        """Execute the study; trace it when observability is enabled.

        With ``config.observability.enabled`` the whole run executes
        under an activated span collector and the result carries a
        :class:`~repro.obs.RunReport` (spans + metrics + config
        fingerprint).  Disabled (the default), the instrumented code
        paths only touch the null sink.
        """
        federation = self._federation
        obs_config = federation.config.observability
        try:
            if not obs_config.enabled:
                return self._execute_study()
            if TRACER.enabled:
                # A caller (run_study, or a user-held scope) already
                # activated a collector — e.g. so that federation
                # provisioning and leader election are part of the trace.
                # Join it instead of nesting a second one.
                collector = TRACER.collector
                result = self._traced_execute()
            else:
                collector = SpanCollector(max_spans=obs_config.max_spans)
                with TRACER.activated(
                    collector, capture_messages=obs_config.capture_messages
                ):
                    result = self._traced_execute()
            result.observability = self._build_report(result, collector)
            return result
        finally:
            self.close()

    def _traced_execute(self) -> StudyResult:
        federation = self._federation
        with TRACER.span(
            "study",
            study_id=federation.config.study_id,
            leader=federation.leader_id,
            members=len(federation.hosts),
        ):
            return self._execute_study()

    def _build_report(
        self, result: StudyResult, collector: SpanCollector
    ) -> RunReport:
        """Bundle spans + bridged metrics into one RunReport."""
        federation = self._federation
        registry = MetricsRegistry()
        spans = collector.spans()
        record_timings(registry, result.timings)
        record_network(registry, federation.network)
        record_resources(registry, federation.resource_reports())
        record_rounds(registry, self._accounting)
        record_cache_stats(
            registry,
            federation.leader_host.enclave.ecall(
                "lead_exchange_stats", label="report"
            ),
        )
        if federation.config.sharding.enabled:
            plan, tree = self._shard_structures()
            record_shard(
                registry,
                plan,
                tree,
                {
                    gdo: host.enclave.ecall("shard_stats", label="report")
                    for gdo, host in federation.hosts.items()
                },
                repair=dict(self._shard_runtime, epoch=self._shard_epoch),
            )
        if federation.fault_injector is not None:
            record_faults(registry, federation.fault_injector.counters())
        if self._resilient is not None:
            record_resilience(
                registry, self._resilient.stats(), self._supervision
            )
        monitor = federation.integrity_monitor
        if self._integrity or monitor.detections or monitor.quarantined():
            record_integrity(registry, monitor.counters())
        record_spans(registry, spans)
        meta = {
            "leader_id": result.leader_id,
            "num_members": result.num_members,
            "l_des": result.l_des,
            "l_safe": len(result.l_safe),
            "spans_dropped": getattr(collector, "dropped", 0),
        }
        if federation.config.sharding.enabled:
            plan, _tree = self._shard_structures()
            config = federation.config
            meta["sharding"] = {
                "num_shards": plan.num_shards,
                # The fingerprint-committed epoch-0 layout, always.
                "plan_digest": plan_shards(
                    config.snp_count,
                    config.sharding.num_shards,
                    federation.member_ids,
                ).digest(),
            }
            if self._shard_epoch:
                # Tree repair happened: record the repaired layout's
                # digest alongside the original.
                meta["sharding"]["repair"] = {
                    "epoch": self._shard_epoch,
                    "repairs": self._shard_runtime["repairs"],
                    "plan_digest": plan.digest(),
                }
        quarantined = monitor.quarantined()
        if quarantined:
            meta["quarantined"] = [report.to_dict() for report in quarantined]
        return RunReport(
            study_id=result.study_id,
            config_fingerprint=config_fingerprint(federation.config),
            spans=spans,
            metrics=registry.as_dict(),
            meta=meta,
        )

    def _execute_study(self) -> StudyResult:
        """Dispatch to plain or supervised execution per the config."""
        if self._federation.config.resilience.enabled:
            from .supervisor import ProtocolSupervisor

            return ProtocolSupervisor(self).run()
        return self._execute()

    def _execute(self) -> StudyResult:
        """Execute the three verification phases and build the result."""
        timings = PhaseTimings()
        clock = PhaseClock(timings)
        for _name, step in self.phase_steps():
            step(clock)
        return self._build_result(timings)

    # -- phase steps -------------------------------------------------------------
    #
    # One study = these steps in order.  They are separate (and look up
    # the leader host through the federation on every call) so the
    # protocol supervisor can checkpoint between steps and re-run the
    # interrupted one against a replacement leader enclave after a
    # failover.  Outputs land in ``self._outputs``; re-running a step is
    # deterministic, so a re-run overwrites them with identical values.

    def phase_steps(self):
        """Ordered (name, callable(clock)) steps of one study.

        Sharded runs swap the flat summary collection for per-shard tree
        aggregation and insert a moment-aggregation step before the LD
        walk; every other step (and every decision) is identical, which
        is what the shard-equivalence tests pin down.
        """
        if self._federation.config.sharding.enabled:
            return (
                ("summaries", self._phase_summaries_sharded),
                ("maf", self._phase_maf),
                ("ld-moments", self._phase_shard_moments),
                ("ld", self._phase_ld),
                ("lr", self._phase_lr),
            )
        return (
            ("summaries", self._phase_summaries),
            ("maf", self._phase_maf),
            ("ld", self._phase_ld),
            ("lr", self._phase_lr),
        )

    def _leader_stores(self):
        leader_host = self._federation.leader_host
        if leader_host.store is None or leader_host.reference_store is None:
            raise ProtocolError("leader is missing its sealed datasets")
        return leader_host.store, leader_host.reference_store

    def _phase_summaries(self, clock: PhaseClock) -> None:
        store, ref_store = self._leader_stores()
        with clock.task(DATA_AGGREGATION, self._accounting):
            self._federation.leader_host.enclave.ecall(
                "lead_collect_summaries",
                store,
                ref_store,
                self._exchange,
                label="summaries",
            )
            self._verify_integrity("summaries", echo=False)

    # -- sharded tree aggregation --------------------------------------------
    #
    # The orchestrator only *schedules* shard work: it derives the same
    # plan and combine tree every enclave derived from the attested
    # study parameters and drives the rounds — which child emits toward
    # which parent, when.  Every frame it routes is AEAD-protected
    # between the two enclaves, and each enclave independently validates
    # the schedule against its own locally derived tree, so a Byzantine
    # orchestrator can stall progress but not redirect aggregation.

    def _shard_structures(self):
        if self._shard_layout is None:
            federation = self._federation
            config = federation.config
            self._shard_layout = (
                plan_shards(
                    config.snp_count,
                    config.sharding.num_shards,
                    federation.member_ids,
                    epoch=self._shard_epoch,
                ),
                aggregation_tree(
                    federation.member_ids,
                    federation.leader_id,
                    epoch=self._shard_epoch,
                ),
            )
        return self._shard_layout

    def invalidate_shard_layout(self) -> None:
        """Drop the cached (plan, tree) pair; next use re-derives it.

        Called whenever anything feeding the layout changes — a tree
        repair bumping the epoch, a failover resynchronising state — so
        the orchestrator can never schedule against a stale cache.
        """
        self._shard_layout = None

    def resync_after_failover(self) -> None:
        """Re-align every enclave's shard state after a leader failover.

        The restored checkpoint may predate the latest tree repair, and
        surviving members may still hold shard tasks the crashed leader
        attempt opened; re-broadcasting the orchestrator-tracked epoch
        drops every open task and puts all enclaves back on one layout.
        No-op for unsharded studies.
        """
        if not self._federation.config.sharding.enabled:
            return
        self._broadcast_shard_repair()
        self.invalidate_shard_layout()

    def _phase_summaries_sharded(self, clock: PhaseClock) -> None:
        """Member sizes flat, count vectors per shard through the tree."""
        store, ref_store = self._leader_stores()
        leader = self._federation.leader_host.enclave
        with clock.task(DATA_AGGREGATION, self._accounting):
            leader.ecall(
                "lead_collect_sizes",
                store,
                ref_store,
                self._exchange,
                label="summaries",
            )
            done = self._completed_shards("counts")
            plan, _tree = self._shard_structures()
            for shard in plan.ranges:
                if shard.index in done:
                    continue
                self._run_shard_task("counts", shard.index)
                self._note_task_boundary()
            self._verify_integrity("summaries", echo=False)

    def _phase_shard_moments(self, clock: PhaseClock) -> None:
        """Aggregate the LD pair-moment union per shard through the tree.

        After this step every pooled pair moment the LD walks need is
        already installed per combination, so ``lead_run_ld``'s own
        prefetch finds everything cached and the walks issue no flat
        member rounds (outside rare lookahead misses).
        """
        with clock.task(LD_ANALYSIS, self._accounting):
            done = self._completed_shards("moments")
            plan, _tree = self._shard_structures()
            for shard in plan.ranges:
                if shard.index in done:
                    continue
                self._run_shard_task("moments", shard.index)
                self._note_task_boundary()

    def _completed_shards(self, kind: str) -> set:
        """Shard indices whose ``kind`` task already folded (resume).

        Only consulted on the supervised path: a failover restored the
        leader from a mid-phase checkpoint, and the re-run phase must
        skip every task completed before the crash.  The plain path
        always starts phases from scratch, so no progress ECALL is
        issued and its ECALL sequence stays byte-identical.
        """
        if self._resilient is None:
            return set()
        progress = self._federation.leader_host.enclave.ecall(
            "shard_progress", label="shard"
        )
        key = "counts_done" if kind == "counts" else "moments_done"
        return {int(s) for s in progress[key]}

    def _note_task_boundary(self) -> None:
        """Mid-phase checkpoint hook: one completed shard task."""
        if self._progress_checkpoint is not None:
            self._progress_checkpoint()

    def _run_shard_task(self, kind: str, shard_index: int) -> None:
        """Run one shard task end-to-end, repairing the tree on failure.

        The plain path is a single open → combine → finish pass.  Under
        resilience, a member-enclave crash or an exhausted delivery
        budget mid-round triggers *tree repair*: the member's enclave is
        replaced on its platform, the repair epoch is bumped (rotating
        the deterministic plan/tree), every enclave adopts the new
        layout, and the task re-runs from leaf partials.  With the
        integrity layer active, every finished task is re-run in verify
        mode; a node whose leaf commitment differs between the two runs
        equivocated and is quarantined, replaced with a fresh attested
        module, and repaired around.  Budget exhaustion re-raises the
        triggering error — a classified abort, never a silent
        continuation.
        """
        if self._resilient is None:
            self._shard_task_once(kind, shard_index)
            return
        federation = self._federation
        leader_id = federation.leader_id
        first = True
        while True:
            if not first:
                self._shard_runtime["tasks_rerun"] += 1
            first = False
            try:
                opened = self._shard_task_once(kind, shard_index)
                if opened and self._integrity:
                    self._shard_runtime["verify_runs"] += 1
                    self._shard_task_once(kind, shard_index, verify=True)
                return
            except MemberUnresponsiveError as exc:
                member = exc.report.member_id if exc.report else ""
                if not member or member == leader_id:
                    raise
                self._repair_tree(member, reinstall_adversary=True, cause=exc)
            except EquivocationError as exc:
                federation.integrity_monitor.record_detection(exc)
                if not exc.peer or exc.peer == leader_id:
                    # Unattributed (or leader-implicating) divergence:
                    # surface it to the supervisor, whose rollback to
                    # the last task boundary discards the suspect fold.
                    raise
                self._quarantine_shard_node(exc)
                self._repair_tree(
                    exc.peer, reinstall_adversary=False, cause=exc
                )

    def _shard_task_once(
        self, kind: str, shard_index: int, *, verify: bool = False
    ) -> bool:
        """One open → tree combine → finish pass of a shard task.

        Returns whether a task was opened (moments shards owning no LD
        pairs are skipped).  ``verify`` marks the integrity layer's
        re-run: the leader compares instead of folding.
        """
        store, _ref_store = self._leader_stores()
        leader = self._federation.leader_host.enclave
        task_id = leader.ecall(
            "lead_open_shard_task",
            kind,
            shard_index,
            self._exchange,
            label="shard",
        )
        if task_id is None:
            return False
        self._tree_combine(task_id, f"shard:{kind}", verify=verify)
        leader.ecall(
            "lead_finish_shard_task", store, task_id, verify, label="shard"
        )
        return True

    # -- tree repair ---------------------------------------------------------

    def _spend_repair(self, cause: Exception) -> None:
        """Charge one member replacement against the repair budget."""
        policy = self._federation.config.resilience
        if self._shard_repairs >= policy.max_repairs:
            raise cause
        self._shard_repairs += 1
        self._shard_runtime["repairs"] += 1

    def _repair_tree(
        self, member_id: str, *, reinstall_adversary: bool, cause: Exception
    ) -> None:
        """Replace ``member_id``'s enclave and re-shape the combine tree.

        The replacement runs on the same platform (same sealing key, so
        the host-held sealed dataset store stays readable) and the
        epoch bump deterministically rotates shard ownership and the
        tree interior, so the repaired layout's digest is recordable
        alongside the original.  ``reinstall_adversary`` distinguishes a
        crash (the platform stays compromised) from a quarantine (a
        fresh attested module is honest).
        """
        federation = self._federation
        self._spend_repair(cause)
        with TRACER.span(
            "shard.repair", member=member_id, epoch=self._shard_epoch + 1
        ):
            flushed = 0
            for node_id in federation.network.nodes():
                flushed += federation.network.flush(node_id)
            if federation.fault_injector is not None:
                flushed += federation.fault_injector.reset_in_flight()
            federation.replace_member_enclave(
                member_id, reinstall_adversary=reinstall_adversary
            )
            self._shard_epoch += 1
            self.invalidate_shard_layout()
            self._broadcast_shard_repair()
            if TRACER.enabled:
                TRACER.event(
                    "shard.repair_complete",
                    member=member_id,
                    epoch=self._shard_epoch,
                    flushed_messages=flushed,
                    cause=type(cause).__name__,
                )

    def _broadcast_shard_repair(self) -> None:
        """Put every enclave on the orchestrator-tracked repair epoch.

        A member whose crash point fires during this very broadcast is
        replaced (charged against the repair budget) and told again —
        otherwise a single unlucky crash would strand the federation on
        mixed epochs.
        """
        federation = self._federation
        leader_id = federation.leader_id
        for node_id in list(federation.hosts):
            while True:
                try:
                    federation.hosts[node_id].enclave.ecall(
                        "shard_repair", self._shard_epoch, label="repair"
                    )
                    break
                except EnclaveCrashedError as exc:
                    if node_id == leader_id or self._resilient is None:
                        raise
                    self._spend_repair(
                        self._shard_unresponsive(
                            node_id, "shard:repair", 0, "enclave_crashed"
                        )
                    )
                    federation.replace_member_enclave(
                        node_id, reinstall_adversary=True
                    )

    def _quarantine_shard_node(self, exc: EquivocationError) -> None:
        """Record the quarantine decision for an equivocating tree node."""
        from .resilience import FailureReport

        federation = self._federation
        federation.integrity_monitor.quarantine(
            FailureReport(
                study_id=federation.config.study_id,
                member_id=exc.peer,
                round_kind=exc.stage or "shard",
                attempts=self._shard_repairs,
                cause=type(exc).__name__,
                simulated_time_s=federation.network.simulated_time,
                counters=federation.integrity_monitor.counters(),
            )
        )
        if TRACER.enabled:
            TRACER.event(
                "shard.equivocation_quarantine",
                member=exc.peer,
                stage=exc.stage,
            )

    def _shard_unresponsive(
        self, member_id: str, kind: str, attempts: int, cause: str
    ) -> MemberUnresponsiveError:
        """A combine-round failure as a classified, attributed error."""
        from .resilience import FailureReport

        federation = self._federation
        counters: Dict[str, int] = dict(self._shard_runtime)
        injector = federation.fault_injector
        if injector is not None:
            counters.update(
                {f"fault_{k}": v for k, v in injector.counters().items()}
            )
        return MemberUnresponsiveError(
            f"member {member_id!r} lost during {kind!r} ({cause})",
            report=FailureReport(
                study_id=federation.config.study_id,
                member_id=member_id,
                round_kind=kind,
                attempts=attempts,
                cause=cause,
                simulated_time_s=federation.network.simulated_time,
                counters=counters,
            ),
        )

    # -- tree combine --------------------------------------------------------

    def _tree_combine(
        self, task_id: str, kind: str, verify: bool = False
    ) -> None:
        """Drive one task's pairwise combine rounds, deepest level first."""
        _plan, tree = self._shard_structures()
        for edges in tree.levels():
            if self._round_gate is not None:
                with self._round_gate(kind):
                    self._combine_level(task_id, kind, edges, verify)
            else:
                self._combine_level(task_id, kind, edges, verify)

    def _combine_level(
        self, task_id: str, kind: str, edges, verify: bool = False
    ) -> None:
        """One tree level: every child emits its partial to its parent.

        Edges of a level touch distinct children, so parallel execution
        fans the emits out like an OCALL round; deliveries stay
        sequential in edge order (partial ingestion is int64 addition —
        commutative — so arrival grouping cannot change the sums).
        Under resilience the level runs through the retrying variant;
        this zero-overhead fast path stays byte-identical otherwise.
        """
        if self._resilient is not None:
            self._combine_level_resilient(task_id, kind, edges, verify)
            return
        federation = self._federation
        network = federation.network
        injector = federation.fault_injector
        if injector is not None:
            injector.begin_round(kind)
        execution = federation.config.execution
        parallel = execution.is_parallel and len(edges) > 1
        member_times: Dict[str, float] = {}
        with TRACER.span(
            "shard-level", kind=kind, edges=len(edges), task=task_id
        ):

            def emit(child: str, parent: str) -> float:
                host = federation.hosts[child]
                timer = time.thread_time if parallel else time.perf_counter
                begin = timer()
                frame = host.enclave.ecall(
                    "shard_emit_partial",
                    host.store,
                    task_id,
                    parent,
                    label="shard",
                )["frame"]
                elapsed = timer() - begin
                network.send(
                    Envelope(
                        sender=child, receiver=parent, tag="shard", body=frame
                    )
                )
                return elapsed

            wall_begin = time.perf_counter()
            if parallel:
                executor = self._ensure_executor()
                futures = {
                    child: executor.submit(emit, child, parent)
                    for child, parent in edges
                }
                for child, future in futures.items():
                    member_times[child] = future.result()
            else:
                for child, parent in edges:
                    member_times[child] = emit(child, parent)
            wall = time.perf_counter() - wall_begin
            for child, parent in edges:
                inbound = network.receive(parent, "shard")
                begin = time.perf_counter()
                federation.hosts[parent].handle_envelope(inbound)
                member_times[parent] = member_times.get(parent, 0.0) + (
                    time.perf_counter() - begin
                )
        if parallel:
            self._accounting.record_round(
                member_times, kind=kind, wall_seconds=wall, concurrent=True
            )
        else:
            self._accounting.record_round(member_times, kind=kind)

    def _combine_level_resilient(
        self, task_id: str, kind: str, edges, verify: bool
    ) -> None:
        """One tree level under :class:`ResilientExchange` semantics.

        Emissions run sequentially in edge order (each delivery's retry
        pump owns its parent's inbox while the edge is in flight).  The
        partial frame is AEAD-protected once by the child enclave;
        retries re-ship the identical bytes and the parent side filters
        its inbox by the expected frame hash, handing each unique frame
        to the enclave exactly once — so drop, duplicate, delay and
        corrupt faults on combine edges are masked without ever tripping
        channel replay protection.  With the integrity layer active,
        every emission's signed leaf commitment is forwarded to the
        leader's ledger (compared on the verify re-run).
        """
        federation = self._federation
        injector = federation.fault_injector
        if injector is not None:
            injector.begin_round(kind)
        member_times: Dict[str, float] = {}
        with TRACER.span(
            "shard-level",
            kind=kind,
            edges=len(edges),
            task=task_id,
            resilient=True,
        ):
            for child, parent in edges:
                host = federation.hosts[child]
                begin = time.perf_counter()
                try:
                    emitted = host.enclave.ecall(
                        "shard_emit_partial",
                        host.store,
                        task_id,
                        parent,
                        label="shard",
                    )
                except EnclaveCrashedError as exc:
                    raise self._shard_unresponsive(
                        child, kind, 0, "enclave_crashed"
                    ) from exc
                member_times[child] = member_times.get(child, 0.0) + (
                    time.perf_counter() - begin
                )
                if self._integrity:
                    federation.leader_host.enclave.ecall(
                        "lead_ingest_shard_commitment",
                        emitted["commitment"],
                        emitted["sig"],
                        verify,
                        label="integrity",
                    )
                self._deliver_partial(
                    kind, child, parent, emitted["frame"], member_times
                )
        self._accounting.record_round(member_times, kind=kind)

    def _deliver_partial(
        self,
        kind: str,
        child: str,
        parent: str,
        frame: bytes,
        member_times: Dict[str, float],
    ) -> None:
        """Ship one combine frame with bounded retry and hash dedup."""
        federation = self._federation
        network = federation.network
        policy = federation.config.resilience
        expected = hashlib.sha256(frame).digest()
        attempts = 0
        while True:
            attempts += 1
            try:
                network.send(
                    Envelope(
                        sender=child, receiver=parent, tag="shard", body=frame
                    )
                )
            except NetworkError:
                pass  # partitioned; the bounded retry below rides it out
            while network.pending(parent):
                envelope = network.receive(parent)
                if (
                    envelope.tag != "shard"
                    or hashlib.sha256(envelope.body).digest() != expected
                ):
                    continue  # corrupted / stale / duplicate copy: junk
                begin = time.perf_counter()
                try:
                    federation.hosts[parent].handle_envelope(envelope)
                except EnclaveCrashedError as exc:
                    if parent == federation.leader_id:
                        raise  # the supervisor's failover machinery
                    raise self._shard_unresponsive(
                        parent, kind, attempts, "enclave_crashed"
                    ) from exc
                member_times[parent] = member_times.get(parent, 0.0) + (
                    time.perf_counter() - begin
                )
                return
            if attempts >= policy.max_attempts:
                raise self._shard_unresponsive(
                    parent, kind, attempts, "partial_lost"
                )
            self._shard_runtime["level_retries"] += 1
            self._shard_backoff(parent, kind, attempts)
            self._shard_runtime["partials_redelivered"] += 1

    def _shard_backoff(self, member_id: str, kind: str, attempt: int) -> None:
        """Exponential backoff on the simulated clock; release stragglers."""
        policy = self._federation.config.resilience
        delay = policy.backoff_base_s * policy.backoff_factor ** (attempt - 1)
        self._federation.network.advance_clock(delay)
        injector = self._federation.fault_injector
        released = 0
        if injector is not None:
            released = injector.release_delayed(member_id)
        if TRACER.enabled:
            TRACER.event(
                "shard.retry",
                member=member_id,
                kind=kind,
                attempt=attempt,
                backoff_s=delay,
                released_delayed=released,
            )

    def _phase_maf(self, clock: PhaseClock) -> None:
        leader = self._federation.leader_host.enclave
        with clock.task(INDEXING, self._accounting):
            self._outputs["l_prime"] = leader.ecall(
                "lead_run_maf", label="maf"
            )  # lint: declassify(retained-SNP set after MAF filtering is a published protocol output)
            leader.ecall(
                "lead_broadcast_retained", "prime", self._exchange,
                label="broadcast",
            )
            self._verify_integrity("prime")

    def _phase_ld(self, clock: PhaseClock) -> None:
        store, ref_store = self._leader_stores()
        leader = self._federation.leader_host.enclave
        with clock.task(LD_ANALYSIS, self._accounting):
            self._outputs["l_double_prime"] = leader.ecall(
                "lead_run_ld", store, ref_store, self._exchange, label="ld"
            )  # lint: declassify(retained-SNP set after LD pruning is a published protocol output)
            leader.ecall(
                "lead_broadcast_retained", "double_prime", self._exchange,
                label="broadcast",
            )
            self._verify_integrity("double_prime")

    def _phase_lr(self, clock: PhaseClock) -> None:
        store, ref_store = self._leader_stores()
        leader = self._federation.leader_host.enclave
        with clock.task(LR_ANALYSIS, self._accounting):
            self._outputs["l_safe"] = leader.ecall(
                "lead_run_lr", store, ref_store, self._exchange, label="lr"
            )  # lint: declassify(LR-safe SNP set is the protocol's release decision)
            leader.ecall(
                "lead_broadcast_retained", "safe", self._exchange,
                label="broadcast",
            )
            self._verify_integrity("safe")

    # -- Byzantine-integrity rounds ----------------------------------------------
    #
    # Enabled via ``config.integrity``; both checks run at phase
    # boundaries so a violation aborts (or triggers recovery) before the
    # next phase consumes poisoned state.  With faults disabled these
    # rounds are pure overhead checks: the per-frame cost on the hot
    # path is only the channels' running digest updates.

    def _verify_integrity(self, stage: str, *, echo: bool = True) -> None:
        """Run the post-stage integrity checks (no-op unless enabled).

        Detections are counted here, at the site, so the ``integrity.*``
        metrics increment even when no supervisor is present to recover
        and the violation aborts the run directly.
        """
        if not self._integrity:
            return
        try:
            if echo:
                self._echo_round(stage)
            self._federation.leader_host.enclave.ecall(
                "lead_verify_transcripts", stage, self._exchange,
                label="integrity",
            )
        except IntegrityError as exc:
            self._federation.integrity_monitor.record_detection(exc)
            raise

    def _echo_round(self, stage: str) -> None:
        """Broadcast-consistency echo over the participant ring.

        After a leader broadcast every participant (leader included)
        exports a signed digest of the payload it holds and sends it to
        its ring successor — O(G) messages — whose enclave compares it
        against its own digest.  Any equivocation splits the ring into
        runs of differing digests, so at least one edge crosses the
        difference and raises
        :class:`~repro.errors.EquivocationError`.
        """
        federation = self._federation
        participants = federation.member_ids
        if len(participants) < 2:
            return
        injector = federation.fault_injector
        if injector is not None:
            injector.begin_round("echo")
        resilience = federation.config.resilience
        max_attempts = resilience.max_attempts if resilience.enabled else 1
        with TRACER.span("echo", stage=stage, members=len(participants)):
            frames: Dict[str, bytes] = {}
            for node in participants:
                try:
                    frames[node] = federation.hosts[node].enclave.ecall(
                        "export_broadcast_echo", stage, label="echo"
                    )
                except PhaseOrderError:
                    # The node never ingested this stage's broadcast:
                    # the broadcaster sent it nothing while others got
                    # the payload — equivocation by omission.
                    raise EquivocationError(
                        f"{node} holds no {stage!r} broadcast — withheld "
                        f"by the broadcaster?",
                        stage=stage,
                        reporter=node,
                        peer=federation.leader_id,
                    ) from None
            for index, node in enumerate(participants):
                successor = participants[(index + 1) % len(participants)]
                self._deliver_echo(
                    stage, node, successor, frames[node], max_attempts
                )

    def _deliver_echo(
        self,
        stage: str,
        sender: str,
        receiver: str,
        frame: bytes,
        max_attempts: int,
    ) -> None:
        """Ship one ring echo and have the receiver's enclave verify it.

        Echo frames ride the faulty network like any other message, so
        delivery retries (bounded by the resilience budget) re-send the
        identical signed record; corrupted or stray frames are junked
        by the MAC before they can raise anything but an integrity
        verdict.
        """
        federation = self._federation
        network = federation.network
        enclave = federation.hosts[receiver].enclave
        injector = federation.fault_injector
        attempt = 0
        while True:
            attempt += 1
            try:
                network.send(
                    Envelope(
                        sender=sender, receiver=receiver, tag="echo", body=frame
                    )
                )
            except NetworkError:
                pass  # partitioned; the bounded retry below rides it out
            while network.pending(receiver):
                envelope = network.receive(receiver)
                if envelope.tag != "echo":
                    continue  # stray frame from an earlier round
                try:
                    enclave.ecall(
                        "verify_broadcast_echo",
                        stage,
                        sender,
                        envelope.body,
                        label="echo",
                    )
                    return
                except IntegrityError:
                    raise
                except (
                    AuthenticationError,
                    SerializationError,
                    ProtocolError,
                ):
                    continue  # corrupted/spliced copy: junk, keep pumping
            if attempt >= max_attempts:
                raise NetworkError(
                    f"echo from {sender} to {receiver} lost after "
                    f"{attempt} attempts"
                )
            if injector is not None:
                injector.release_delayed(receiver)

    def _build_result(self, timings) -> StudyResult:
        federation = self._federation
        config = federation.config
        leader = federation.leader_host.enclave
        l_prime = self._outputs["l_prime"]
        l_double_prime = self._outputs["l_double_prime"]
        l_safe = self._outputs["l_safe"]

        collusion: Optional[CollusionReport] = None
        if config.collusion.enabled:
            outcomes = leader.ecall(
                "lead_combo_outcomes", label="report"
            )  # lint: declassify(collusion-pool outcomes are part of the study report)
            report = CollusionReport(
                baseline_safe=tuple(
                    int(s)
                    for s in leader.ecall(
                        "lead_plain_safe", label="report"
                    )  # lint: declassify(non-DP baseline safe set for the collusion report)
                )
            )
            for outcome in outcomes:
                if outcome["f"] == 0:
                    continue
                report.outcomes.append(
                    CombinationOutcome(
                        member_ids=tuple(outcome["members"]),
                        f=int(outcome["f"]),
                        safe_snps=tuple(int(s) for s in outcome["safe"]),
                    )
                )
            collusion = report

        totals = federation.network.total_stats()
        reports = federation.resource_reports()
        return StudyResult(
            study_id=config.study_id,
            leader_id=federation.leader_id,
            num_members=len(federation.hosts),
            l_des=config.snp_count,
            l_prime=list(l_prime),
            l_double_prime=list(l_double_prime),
            l_safe=list(l_safe),
            timings=timings,
            network_bytes=totals.wire_bytes,
            network_messages=totals.messages,
            enclave_peak_memory={
                gdo: report.peak_memory_bytes for gdo, report in reports.items()
            },
            enclave_cpu_utilization={
                gdo: report.cpu_utilization for gdo, report in reports.items()
            },
            release_power=float(
                leader.ecall("lead_release_power", label="report")
            ),  # lint: declassify(attack power over the released set is the headline metric)
            collusion=collusion,
            execution_mode=config.execution.mode,
            ocall_rounds=dict(self._accounting.rounds_by_kind),
        )

    def release_statistics(self) -> Dict[str, object]:
        """The leader's chi-squared statistics over the safe set."""
        return self._federation.leader_host.enclave.ecall(
            "lead_release_statistics", label="release"
        )  # lint: declassify(DP-protected chi-squared statistics are the study deliverable)


def run_study(
    cohort: Cohort,
    config: StudyConfig,
    num_members: int,
    *,
    network: Optional[SimulatedNetwork] = None,
    shuffle_seed: Optional[int] = None,
) -> StudyResult:
    """Convenience one-call API: partition, provision, run.

    This is the library's front door for the common case; examples and
    benchmarks use it, while tests that need to poke at internals build
    the federation explicitly.  Provisioning goes through
    :class:`~repro.core.provision.ProvisionedFederation` — the same
    path the CLI and the long-lived service use.
    """
    # Local import: provision builds on this module.
    from .provision import ProvisionedFederation

    with ProvisionedFederation(
        cohort,
        config,
        num_members,
        network=network,
        shuffle_seed=shuffle_seed,
    ) as provisioned:
        return provisioned.run()
