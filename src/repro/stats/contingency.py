"""GWAS contingency tables (paper Tables 2a/2b).

These tables are the classical intermediaries between raw genotypes and
GWAS statistics.  The protocol itself never ships them — it ships the
count vectors and moments they are built from — but the baseline, the
release computation and the tests all use them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GenomicsError
from ..genomics.genotype import GenotypeMatrix


@dataclass(frozen=True)
class SinglewiseTable:
    """Major/minor allele counts of one SNP in case and control (Table 2a)."""

    case_minor: int
    case_major: int
    control_minor: int
    control_major: int

    def __post_init__(self) -> None:
        for name in ("case_minor", "case_major", "control_minor", "control_major"):
            if getattr(self, name) < 0:
                raise GenomicsError(f"{name} must be non-negative")

    @property
    def n_case(self) -> int:
        return self.case_minor + self.case_major

    @property
    def n_control(self) -> int:
        return self.control_minor + self.control_major

    @property
    def n_minor(self) -> int:
        return self.case_minor + self.control_minor

    @property
    def n_major(self) -> int:
        return self.case_major + self.control_major

    @property
    def n_total(self) -> int:
        return self.n_case + self.n_control

    def as_array(self) -> np.ndarray:
        """2x2 array with rows (major, minor) and columns (case, control)."""
        return np.array(
            [
                [self.case_major, self.control_major],
                [self.case_minor, self.control_minor],
            ],
            dtype=np.int64,
        )


@dataclass(frozen=True)
class PairwiseTable:
    """Joint allele counts of two SNPs over one population (Table 2b)."""

    c00: int
    c01: int
    c10: int
    c11: int

    def __post_init__(self) -> None:
        for name in ("c00", "c01", "c10", "c11"):
            if getattr(self, name) < 0:
                raise GenomicsError(f"{name} must be non-negative")

    @property
    def c0_(self) -> int:
        return self.c00 + self.c01

    @property
    def c1_(self) -> int:
        return self.c10 + self.c11

    @property
    def c_0(self) -> int:
        return self.c00 + self.c10

    @property
    def c_1(self) -> int:
        return self.c01 + self.c11

    @property
    def total(self) -> int:
        return self.c0_ + self.c1_


def singlewise_table(
    case: GenotypeMatrix, control: GenotypeMatrix, snp: int
) -> SinglewiseTable:
    """Build the Table 2a contingency table for one SNP index."""
    case_minor = int(case.allele_counts([snp])[0])
    control_minor = int(control.allele_counts([snp])[0])
    return SinglewiseTable(
        case_minor=case_minor,
        case_major=case.num_individuals - case_minor,
        control_minor=control_minor,
        control_major=control.num_individuals - control_minor,
    )


def pairwise_table(
    population: GenotypeMatrix, left: int, right: int
) -> PairwiseTable:
    """Build the Table 2b joint table for a SNP pair over one population."""
    left_col = population.array()[:, left].astype(bool)
    right_col = population.array()[:, right].astype(bool)
    c11 = int(np.count_nonzero(left_col & right_col))
    c10 = int(np.count_nonzero(left_col & ~right_col))
    c01 = int(np.count_nonzero(~left_col & right_col))
    c00 = population.num_individuals - c11 - c10 - c01
    return PairwiseTable(c00=c00, c01=c01, c10=c10, c11=c11)
