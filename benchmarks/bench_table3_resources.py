"""Table 3 — GenDPR's average resource utilization.

Paper: for {2, 3, 5, 7} GDOs x {1,000, 10,000} SNPs, every
configuration uses < 1% CPU and ~2 MB of enclave memory, and members
exchange 4 * L_des bytes of counts (+ ~30% encryption overhead) instead
of full genomes.

This bench runs the same eight configurations (full 14,860-genome
cohort, scaled by REPRO_BENCH_SCALE) and reports the metered enclave
CPU utilization, peak trusted memory, and actual network traffic.
"""

from __future__ import annotations

from repro.bench import (
    PAPER_CASE_FULL,
    bench_scale,
    gendpr_row,
    paper_cohort,
    render_resource_table,
)

CONFIGS = [(gdos, snps) for gdos in (2, 3, 5, 7) for snps in (1_000, 10_000)]


def test_table3_resource_utilization(benchmark, save_result):
    def run_all():
        rows = []
        for gdos, snps in CONFIGS:
            cohort, _ = paper_cohort(PAPER_CASE_FULL, snps)
            rows.append(gendpr_row(cohort, snps, gdos))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    caption = (
        f"(scale={bench_scale()}; paper: <1% CPU, ~2,100 KB for every "
        f"configuration)"
    )
    save_result("table3_resources", render_resource_table(rows) + "\n" + caption)

    for row in rows:
        # Paper shape: enclave memory stays in the low-megabyte range and
        # does not grow with the SNP-panel size the way pooled genomes
        # would (genome pooling would need genomes x SNPs bytes).
        pooled_bytes = row["genomes"] * row["snps"]
        assert row["peak_memory_kib"] * 1024 < max(
            pooled_bytes, 64 * 1024 * 1024
        ), "enclave memory must stay below genome-pooling scale"
    benchmark.extra_info["rows"] = [
        {k: v for k, v in row.items() if not isinstance(v, dict)} for row in rows
    ]
