"""Configuration objects, error hierarchy and phase timing."""

from __future__ import annotations

import time

import pytest

from repro import errors
from repro.config import (
    NetworkProfile,
    PrivacyThresholds,
    StudyConfig,
    equal_partition_sizes,
)
from repro.core.timing import (
    ALL_LABELS,
    PhaseClock,
    PhaseTimings,
    RoundAccounting,
)
from repro.errors import ConfigError


class TestThresholds:
    def test_paper_defaults(self):
        thresholds = PrivacyThresholds()
        assert thresholds.maf_cutoff == 0.05
        assert thresholds.ld_cutoff == 1e-5
        assert thresholds.false_positive_rate == 0.1
        assert thresholds.power_threshold == 0.9

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"maf_cutoff": -0.1},
            {"maf_cutoff": 0.5},
            {"ld_cutoff": 0.0},
            {"ld_cutoff": 1.0},
            {"false_positive_rate": 0.0},
            {"false_positive_rate": 1.0},
            {"power_threshold": 0.0},
            {"power_threshold": 1.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            PrivacyThresholds(**kwargs)


class TestStudyConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            StudyConfig(snp_count=0)
        with pytest.raises(ConfigError):
            StudyConfig(snp_count=10, study_id="")

    def test_defaults(self):
        config = StudyConfig(snp_count=10)
        assert not config.collusion.enabled
        assert config.seed == 0


class TestHelpers:
    def test_equal_partition_sizes_errors(self):
        with pytest.raises(ConfigError):
            equal_partition_sizes(10, 0)
        with pytest.raises(ConfigError):
            equal_partition_sizes(-1, 2)

    def test_network_profile_transfer_time(self):
        profile = NetworkProfile(latency_s=0.2, bandwidth_bytes_per_s=100)
        assert profile.transfer_time(50) == pytest.approx(0.7)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        error_classes = [
            value
            for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        assert len(error_classes) > 15
        for klass in error_classes:
            assert issubclass(klass, errors.ReproError)

    def test_domain_groupings(self):
        assert issubclass(errors.AuthenticationError, errors.CryptoError)
        assert issubclass(errors.AttestationError, errors.TEEError)
        assert issubclass(errors.SerializationError, errors.NetworkError)
        assert issubclass(errors.PartitionError, errors.GenomicsError)
        assert issubclass(errors.PhaseOrderError, errors.ProtocolError)


class TestTiming:
    def test_timings_accumulate(self):
        timings = PhaseTimings()
        timings.add("A", 1.0)
        timings.add("A", 0.5)
        timings.add("B", 2.0)
        assert timings.get("A") == 1.5
        assert timings.total_seconds == 3.5

    def test_negative_clamped(self):
        timings = PhaseTimings()
        timings.add("A", -0.001)
        assert timings.get("A") == 0.0

    def test_merge(self):
        a, b = PhaseTimings(), PhaseTimings()
        a.add("X", 1.0)
        b.add("X", 2.0)
        b.add("Y", 3.0)
        a.merge(b)
        assert a.get("X") == 3.0 and a.get("Y") == 3.0

    def test_milliseconds_report_covers_labels(self):
        timings = PhaseTimings()
        report = timings.as_milliseconds()
        for label in ALL_LABELS:
            assert report[label] == 0.0
        assert report["Total"] == 0.0

    def test_round_accounting(self):
        accounting = RoundAccounting()
        accounting.record_round({"a": 0.3, "b": 0.5})
        accounting.record_round({"a": 0.2})
        assert accounting.rounds == 2
        assert accounting.sequential_seconds == pytest.approx(1.0)
        assert accounting.parallel_seconds == pytest.approx(0.7)
        assert accounting.parallel_saving == pytest.approx(0.3)
        accounting.record_round({})  # ignored
        assert accounting.rounds == 2

    def test_phase_clock_parallel_correction(self):
        timings = PhaseTimings()
        clock = PhaseClock(timings)
        accounting = RoundAccounting()
        with clock.task("T", accounting):
            begin = time.perf_counter()
            while time.perf_counter() - begin < 0.02:
                pass
            # Simulate a round where two members each spent 10 ms.
            accounting.record_round({"a": 0.01, "b": 0.01})
        # Elapsed ~20 ms, minus the 10 ms sequential-to-parallel saving.
        assert timings.get("T") < 0.02
        assert timings.get("T") > 0.0
