"""Machine-readable Figure 5 benchmark: execution modes head to head.

Runs the GenDPR pipeline for each requested federation size with both
round execution modes (``sequential`` and ``parallel``) and both
collusion settings (f = 0 and f = 1), then emits one JSON document —
``BENCH_fig5.json`` by default — with per-phase wall-clock, OCALL round
counts per kind, bytes on the wire and the sequential/parallel speedup
ratios.  ``docs/PERFORMANCE.md`` describes how to read it.

The emitter doubles as the equivalence gate used in CI: for every
(G, f) cell it asserts that the two modes produced bit-identical study
*decisions* (retained sets, release power, per-combination safe sets —
never timings), and the process exits non-zero on any mismatch.

Run as::

    PYTHONPATH=src python -m repro.bench.fig5 --out BENCH_fig5.json \
        [--snps 1000] [--gdos 5] [--scale 0.05]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

from ..config import CollusionPolicy, ExecutionConfig
from ..core.phases import StudyResult
from ..core.protocol import run_study
from ..core.timing import ALL_LABELS
from .workloads import (
    PAPER_CASE_FULL,
    bench_scale,
    clear_cohort_cache,
    paper_cohort,
    paper_config,
)

#: Modes compared by every cell of the benchmark.
MODES = ("sequential", "parallel")


def study_decisions(result: StudyResult) -> Dict[str, Any]:
    """The decision fields of a result — everything but timings.

    Two runs are *equivalent* exactly when these compare equal; wall
    clock, simulated network time and resource readings are allowed to
    differ between execution modes.
    """
    collusion = None
    if result.collusion is not None:
        collusion = {
            "baseline_safe": list(result.collusion.baseline_safe),
            "outcomes": sorted(
                (list(o.member_ids), o.f, list(o.safe_snps))
                for o in result.collusion.outcomes
            ),
        }
    return {
        "l_prime": list(result.l_prime),
        "l_double_prime": list(result.l_double_prime),
        "l_safe": list(result.l_safe),
        "release_power": result.release_power,
        "collusion": collusion,
        "ocall_rounds": dict(result.ocall_rounds),
    }


def _run_cell(
    num_snps: int, gdos: int, f: int, mode: str
) -> tuple[StudyResult, Dict[str, Any]]:
    cohort, _truth = paper_cohort(PAPER_CASE_FULL, num_snps)
    collusion = CollusionPolicy((f,)) if f > 0 else CollusionPolicy.none()
    config = paper_config(
        num_snps,
        study_id=f"fig5-G{gdos}-f{f}-{mode}",
        collusion=collusion,
    )
    config = replace(
        config,
        execution=(
            ExecutionConfig.parallel()
            if mode == "parallel"
            else ExecutionConfig.sequential()
        ),
    )
    begin = time.perf_counter()
    result = run_study(cohort, config, gdos)
    wall_ms = (time.perf_counter() - begin) * 1000.0
    row: Dict[str, Any] = {
        "gdos": gdos,
        "f": f,
        "mode": mode,
        "phase_ms": {
            label: result.timings.get(label) * 1000.0 for label in ALL_LABELS
        },
        # Parallel-corrected model time (what Figure 5 plots): the
        # sequential mode's sum-over-members is replaced by the round
        # maximum, so this is similar across modes by construction.
        "total_ms": result.timings.total_seconds * 1000.0,
        # Honest process wall-clock of the whole study — the number the
        # concurrent fan-out actually improves.
        "wall_ms": wall_ms,
        "ocall_rounds": dict(result.ocall_rounds),
        "rounds_total": sum(result.ocall_rounds.values()),
        "network_bytes": result.network_bytes,
        "network_messages": result.network_messages,
        "safe_snps": result.retained_after_lr,
        "release_power": result.release_power,
    }
    return result, row


def fig5_report(
    num_snps: int = 1000,
    gdo_counts: Sequence[int] = (5,),
    f_values: Sequence[int] = (0, 1),
) -> Dict[str, Any]:
    """Run every (G, f, mode) cell and assemble the JSON document."""
    runs: List[Dict[str, Any]] = []
    speedups: List[Dict[str, Any]] = []
    mismatches: List[str] = []
    for gdos in gdo_counts:
        for f in f_values:
            decisions: Dict[str, Dict[str, Any]] = {}
            walls: Dict[str, float] = {}
            for mode in MODES:
                result, row = _run_cell(num_snps, gdos, f, mode)
                runs.append(row)
                decisions[mode] = study_decisions(result)
                walls[mode] = row["wall_ms"]
            if decisions["sequential"] != decisions["parallel"]:
                mismatches.append(f"G={gdos}, f={f}")
            parallel_ms = walls["parallel"]
            seq_run = runs[-2]
            speedups.append(
                {
                    "gdos": gdos,
                    "f": f,
                    "sequential_ms": walls["sequential"],
                    "parallel_ms": parallel_ms,
                    # Measured process wall ratio — needs >1 CPU core to
                    # exceed 1.0 (the fan-out is thread-based).
                    "speedup": (
                        walls["sequential"] / parallel_ms
                        if parallel_ms > 0
                        else 0.0
                    ),
                    # Deployment-model ratio: raw sequential wall over
                    # the parallel-corrected model time (members on
                    # their own servers), the quantity Figure 5 is
                    # about; meaningful on any host.
                    "modeled_speedup": (
                        walls["sequential"] / seq_run["total_ms"]
                        if seq_run["total_ms"] > 0
                        else 0.0
                    ),
                }
            )
    return {
        "benchmark": "fig5",
        "snps": num_snps,
        "gdo_counts": list(gdo_counts),
        "f_values": list(f_values),
        "scale": bench_scale(),
        # Thread fan-out cannot beat sequential wall time on one core;
        # readers should interpret "speedup" relative to this.
        "cpu_count": os.cpu_count(),
        "runs": runs,
        "speedups": speedups,
        "equivalent": not mismatches,
        "mismatched_cells": mismatches,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Figure 5 runtime benchmark (sequential vs parallel)"
    )
    parser.add_argument(
        "--out", default="BENCH_fig5.json", help="output JSON path"
    )
    parser.add_argument("--snps", type=int, default=1000)
    parser.add_argument(
        "--gdos",
        default="5",
        help="comma-separated federation sizes (default: 5)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="population scale override (else REPRO_BENCH_SCALE)",
    )
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
        clear_cohort_cache()
    gdo_counts = [int(g) for g in str(args.gdos).split(",") if g]
    report = fig5_report(args.snps, gdo_counts)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for cell in report["speedups"]:
        print(
            f"G={cell['gdos']} f={cell['f']}: "
            f"sequential {cell['sequential_ms']:.1f} ms, "
            f"parallel {cell['parallel_ms']:.1f} ms "
            f"(wall speedup {cell['speedup']:.2f}x, "
            f"modeled {cell['modeled_speedup']:.2f}x, "
            f"{report['cpu_count']} cores)"
        )
    if not report["equivalent"]:
        print(
            "EQUIVALENCE FAILURE: modes disagree on "
            + ", ".join(report["mismatched_cells"])
        )
        return 1
    print(f"all cells equivalent; report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
