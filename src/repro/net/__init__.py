"""Simulated inter-site network.

* :mod:`~repro.net.serialization` — canonical tagged binary codec.
* :mod:`~repro.net.message` — envelopes and per-link statistics.
* :mod:`~repro.net.network` — synchronous router with traffic accounting,
  a latency/bandwidth clock and partition fault injection.
"""

from .message import Envelope, LinkStats
from .network import ScopedNetwork, SimulatedNetwork
from .serialization import decode, encode, encoded_size

__all__ = [
    "Envelope",
    "LinkStats",
    "ScopedNetwork",
    "SimulatedNetwork",
    "decode",
    "encode",
    "encoded_size",
]
