"""Per-enclave resource metering.

Table 3 of the paper reports average CPU utilisation and enclave memory
for each federation configuration.  The simulation reproduces those
numbers by metering every enclave:

* **CPU** — wall-clock time spent inside ECALLs, attributed to a caller
  supplied label (the protocol labels them by phase), plus the total
  elapsed time of the run, from which an average utilisation follows.
* **Memory** — enclaves register the byte size of every trusted buffer
  they hold (genotype shards, count vectors, LR matrices); the meter
  tracks the current and peak total plus a fixed baseline modelling the
  enclave runtime (heap metadata, SSA frames, library OS pages) so small
  configurations land in the low-megabyte range the paper measured.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

from ..errors import ResourceError
from ..obs.tracer import TRACER

#: Fixed overhead modelling Gramine + enclave runtime pages (bytes).
BASELINE_MEMORY_BYTES = 2_000 * 1024


@dataclass
class ResourceReport:
    """Snapshot of an enclave's resource consumption."""

    cpu_seconds_by_label: Dict[str, float]
    total_cpu_seconds: float
    elapsed_seconds: float
    current_memory_bytes: int
    peak_memory_bytes: int
    ecall_count: int

    @property
    def cpu_utilization(self) -> float:
        """Fraction of elapsed wall time spent inside ECALLs."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return min(1.0, self.total_cpu_seconds / self.elapsed_seconds)

    @property
    def peak_memory_kib(self) -> float:
        return self.peak_memory_bytes / 1024


@dataclass
class ResourceMeter:
    """Accumulates CPU and memory usage for one enclave."""

    _cpu_by_label: Dict[str, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    _buffers: Dict[str, int] = field(default_factory=dict)
    _peak_memory: int = BASELINE_MEMORY_BYTES
    _ecalls: int = 0
    _started_at: float = field(default_factory=time.perf_counter)

    # -- CPU -----------------------------------------------------------------

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Time a block of trusted execution under ``label``."""
        begin = time.perf_counter()
        try:
            yield
        finally:
            self._cpu_by_label[label] += time.perf_counter() - begin
            self._ecalls += 1

    # -- Memory ----------------------------------------------------------------

    def register_buffer(self, name: str, num_bytes: int) -> None:
        """Record (or resize) a named trusted buffer."""
        if num_bytes < 0:
            raise ResourceError("buffer size must be non-negative")
        self._buffers[name] = num_bytes
        current = self.current_memory_bytes
        if current > self._peak_memory:
            self._peak_memory = current
        if TRACER.enabled:
            TRACER.event(
                "tee.memory",
                # lint: disable=R6 (buffer names are operator-chosen
                # diagnostics; sizes are metadata, never cell values)
                buffer=name,
                buffer_bytes=num_bytes,
                current_bytes=current,
                peak_bytes=self._peak_memory,
            )

    def release_buffer(self, name: str) -> None:
        """Drop a named buffer; releasing an unknown name is a no-op."""
        self._buffers.pop(name, None)

    @property
    def current_memory_bytes(self) -> int:
        return BASELINE_MEMORY_BYTES + sum(self._buffers.values())

    # -- Reporting -------------------------------------------------------------

    def report(self) -> ResourceReport:
        return ResourceReport(
            cpu_seconds_by_label=dict(self._cpu_by_label),
            total_cpu_seconds=sum(self._cpu_by_label.values()),
            elapsed_seconds=time.perf_counter() - self._started_at,
            current_memory_bytes=self.current_memory_bytes,
            peak_memory_bytes=self._peak_memory,
            ecall_count=self._ecalls,
        )

    def reset_clock(self) -> None:
        """Restart the elapsed-time window (used between benchmark runs)."""
        self._started_at = time.perf_counter()
