"""Property-based whole-protocol equivalence.

The single most important invariant of the reproduction — the
distributed protocol computes exactly the centralized verdict — checked
over *randomly generated* cohorts and federation shapes, not just the
fixtures.  Cohort sizes are kept small so the property suite stays
fast; the structure being tested is size-independent.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StudyConfig, run_study
from repro.core.pipeline import run_local_pipeline
from repro.genomics import SyntheticSpec, generate_cohort
from repro.serve import FederationService, ServiceConfig

_THRESHOLD_KWARGS = dict(
    maf_cutoff=0.05, ld_cutoff=1e-5, alpha=0.1, beta=0.9
)


@st.composite
def cohort_shapes(draw):
    return dict(
        num_snps=draw(st.integers(min_value=12, max_value=60)),
        num_case=draw(st.integers(min_value=20, max_value=90)),
        num_control=draw(st.integers(min_value=20, max_value=90)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        ld_block_mean_length=draw(st.sampled_from([2.0, 6.0, 12.0])),
        case_drift_sd=draw(st.sampled_from([0.0, 0.05, 0.15])),
        num_members=draw(st.integers(min_value=2, max_value=4)),
    )


@given(cohort_shapes())
@settings(max_examples=12, deadline=None)
def test_distributed_equals_centralized_property(shape):
    num_members = shape.pop("num_members")
    if shape["num_case"] < num_members:
        num_members = shape["num_case"]
    cohort, _ = generate_cohort(SyntheticSpec(**shape))
    config = StudyConfig(
        snp_count=shape["num_snps"],
        seed=shape["seed"],
        study_id=f"prop-{shape['seed']}",
    )
    result = run_study(cohort, config, num_members)
    oracle = run_local_pipeline(
        cohort.case.array(), cohort.reference.array(), **_THRESHOLD_KWARGS
    )
    assert result.l_prime == oracle.l_prime
    assert result.l_double_prime == oracle.l_double_prime
    assert result.l_safe == oracle.l_safe
    # Monotonicity and bounds always hold.
    assert set(result.l_safe) <= set(result.l_double_prime)
    assert set(result.l_double_prime) <= set(result.l_prime)


@given(cohort_shapes())
@settings(max_examples=3, deadline=None)
def test_concurrent_service_equals_solo_property(shape):
    """Studies served concurrently over warm substrates decide exactly
    as one-shot ``run_study`` federations do — scheduling, slot reuse
    and network namespacing are invisible to the verdict."""
    num_members = shape.pop("num_members")
    if shape["num_case"] < num_members:
        num_members = shape["num_case"]
    cohort, _ = generate_cohort(SyntheticSpec(**shape))
    configs = [
        StudyConfig(
            snp_count=shape["num_snps"],
            seed=shape["seed"] + index,
            study_id=f"svc-prop-{shape['seed']}-{index}",
        )
        for index in range(2)
    ]
    solo = {c.study_id: run_study(cohort, c, num_members) for c in configs}
    service_config = ServiceConfig(
        num_members=num_members, pool_size=2, max_active=2
    )
    with FederationService(service_config) as service:
        for config in configs:
            service.submit(cohort, config)
        served = {
            c.study_id: service.result(c.study_id, timeout=120)
            for c in configs
        }
    for study_id, result in served.items():
        expected = solo[study_id]
        assert result.l_prime == expected.l_prime
        assert result.l_double_prime == expected.l_double_prime
        assert result.l_safe == expected.l_safe
        assert result.release_power == expected.release_power
        assert result.leader_id == expected.leader_id


@given(cohort_shapes())
@settings(max_examples=6, deadline=None)
def test_release_power_bounded_property(shape):
    shape.pop("num_members")
    cohort, _ = generate_cohort(SyntheticSpec(**shape))
    config = StudyConfig(
        snp_count=shape["num_snps"],
        seed=shape["seed"],
        study_id=f"power-{shape['seed']}",
    )
    result = run_study(cohort, config, 2)
    if result.l_safe:
        assert result.release_power < 0.9
    assert 0.0 <= result.release_power <= 1.0
