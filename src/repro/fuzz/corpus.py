"""The deduplicated corpus: minimal covering genome per behaviour unit.

Follows the hypofuzz pool design: the corpus is an index from each
*behaviour unit* — one fired ``faults.*``/``integrity.*``/
``shard.repair.*`` counter, or one executed arc of the detection
modules — to the simplest genome known to reach it (simplest under
:meth:`~repro.fuzz.genome.PlanGenome.sort_key`).  Adding a genome that
covers a new unit, or covers a known unit more simply, updates the
index; genomes that stop being the minimal cover of *any* unit are
pruned.  ``_check_invariants`` asserts the internal consistency after
every mutation, mirroring hypofuzz's corpus tests.

The pool serialises to a committed JSON artifact
(``tests/fuzz_corpus/corpus.json``).  Arc units are interpreter- and
version-dependent (they embed line numbers), so the artifact stores
each genome plus a *summary* of the behaviour it was kept for
(counter names, arc-set digest, arc count) and seeding a new session
re-establishes units by replaying the genomes — the committed file is
the corpus, not a coverage database.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..errors import ConfigError, CorpusInvariantError
from .coverage import Behaviour
from .genome import PlanGenome

#: Version tag of the corpus wire format.
CORPUS_FORMAT = 1


class CorpusPool:
    """Coverage-keyed pool of minimal covering genomes."""

    def __init__(self) -> None:
        #: unit -> digest of the minimal genome covering it.
        self._covers: Dict[str, str] = {}
        #: digest -> genome, for genomes that minimally cover >= 1 unit.
        self._genomes: Dict[str, PlanGenome] = {}
        #: digest -> the behaviour observed when the genome was added.
        self._behaviours: Dict[str, Behaviour] = {}
        #: every distinct behaviour key ever observed (for the report).
        self._keys_seen: set = set()

    def __len__(self) -> int:
        return len(self._genomes)

    def __contains__(self, digest: str) -> bool:
        return digest in self._genomes

    # -- queries --------------------------------------------------------------

    def genomes(self) -> List[PlanGenome]:
        """Pool genomes, simplest first (deterministic order)."""
        return sorted(self._genomes.values(), key=lambda g: g.sort_key())

    def units(self) -> FrozenSet[str]:
        return frozenset(self._covers)

    def counter_units(self) -> FrozenSet[str]:
        return frozenset(
            u for u in self._covers if not u.startswith("arc:")
        )

    def arc_units(self) -> FrozenSet[str]:
        return frozenset(u for u in self._covers if u.startswith("arc:"))

    def behaviour_keys(self) -> FrozenSet[str]:
        return frozenset(self._keys_seen)

    def behaviour_for(self, digest: str) -> Optional[Behaviour]:
        return self._behaviours.get(digest)

    def cover_of(self, unit: str) -> Optional[PlanGenome]:
        digest = self._covers.get(unit)
        return self._genomes.get(digest) if digest is not None else None

    # -- mutation -------------------------------------------------------------

    def add(self, genome: PlanGenome, behaviour: Behaviour) -> bool:
        """Fold one executed genome into the pool.

        Returns ``True`` when the pool *changed*: the genome covered a
        unit nobody had reached, or covered a known unit more simply
        than the incumbent.  Either way the observed behaviour key is
        recorded for the coverage frontier.
        """
        self._keys_seen.add(behaviour.key())
        units = behaviour.units()
        if not units:
            return False
        digest = genome.digest()
        key = genome.sort_key()
        won: List[str] = []
        for unit in sorted(units):
            incumbent = self._covers.get(unit)
            if incumbent is None:
                won.append(unit)
                continue
            if incumbent == digest:
                continue
            if key < self._genomes[incumbent].sort_key():
                won.append(unit)
        if not won:
            return False
        for unit in won:
            self._covers[unit] = digest
        self._genomes[digest] = genome
        self._behaviours[digest] = behaviour
        self._prune()
        self._check_invariants()
        return True

    def _prune(self) -> None:
        """Drop genomes that minimally cover nothing anymore."""
        covering = set(self._covers.values())
        for digest in list(self._genomes):
            if digest not in covering:
                del self._genomes[digest]
                del self._behaviours[digest]

    def _check_invariants(self) -> None:
        """Internal-consistency assertions (hypofuzz-style).

        * every cover points at a genome the pool still stores;
        * every stored genome is the minimal cover of >= 1 unit;
        * every unit a genome is credited with is one its recorded
          behaviour actually produced.
        """
        covering = set(self._covers.values())
        for unit, digest in self._covers.items():
            if digest not in self._genomes:
                raise CorpusInvariantError(
                    f"corpus cover of {unit!r} points at evicted genome"
                )
            if unit not in self._behaviours[digest].units():
                raise CorpusInvariantError(
                    f"genome {digest[:12]} credited with unit {unit!r} "
                    "its behaviour never produced"
                )
        for digest in self._genomes:
            if digest not in covering:
                raise CorpusInvariantError(
                    f"genome {digest[:12]} stored but covers nothing"
                )
        if set(self._behaviours) != set(self._genomes):
            raise CorpusInvariantError(
                "behaviour map diverged from genome map"
            )

    # -- persistence ----------------------------------------------------------

    def to_json_dict(self) -> dict:
        """The committed-artifact form: genomes + behaviour summaries."""
        entries = []
        for genome in self.genomes():
            digest = genome.digest()
            behaviour = self._behaviours[digest]
            entries.append(
                {
                    "digest": digest,
                    "genome": genome.to_json_dict(),
                    "behaviour": behaviour.to_json_dict(),
                    "units_covered": sum(
                        1 for d in self._covers.values() if d == digest
                    ),
                }
            )
        return {
            "format": CORPUS_FORMAT,
            "entries": entries,
            "summary": {
                "genomes": len(self._genomes),
                "units": len(self._covers),
                "counter_units": len(self.counter_units()),
                "arc_units": len(self.arc_units()),
                "behaviour_keys_seen": len(self._keys_seen),
            },
        }

    @staticmethod
    def entries_from_json(doc: dict) -> List[Tuple[PlanGenome, dict]]:
        """Decode a corpus artifact into (genome, behaviour-summary) pairs.

        The pairs feed :meth:`~repro.fuzz.engine.FuzzEngine.seed_corpus`,
        which replays each genome to re-establish its units under the
        current interpreter before re-adding it to a fresh pool.
        """
        if doc.get("format") != CORPUS_FORMAT:
            raise ConfigError(
                f"unsupported corpus format {doc.get('format')!r} "
                f"(expected {CORPUS_FORMAT})"
            )
        pairs = []
        try:
            for entry in doc["entries"]:
                pairs.append(
                    (
                        PlanGenome.from_json_dict(entry["genome"]),
                        dict(entry.get("behaviour", {})),
                    )
                )
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"malformed corpus document: {exc}")
        return pairs


def merge_behaviours(behaviours: Iterable[Behaviour]) -> FrozenSet[str]:
    """Union of the units a set of behaviours covers."""
    units: set = set()
    for behaviour in behaviours:
        units |= behaviour.units()
    return frozenset(units)
