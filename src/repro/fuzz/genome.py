"""Plan genomes: the structured input space the fuzzer explores.

A :class:`PlanGenome` is one point in the chaos input space: a
:class:`~repro.config.FaultConfig` (drop/duplicate/delay/corrupt
rates, crash-point ECALL indices, partition windows, the Byzantine
REPLAY/WITHHOLD/EQUIVOCATE knobs, checkpoint tampering and shard-flip
targets) plus the *run axes* the legacy chaos tiers swept by hand —
execution mode, collusion tolerance, shard count, supervision and
integrity verification.

Genomes are value objects with a canonical JSON form and a SHA-256
digest, so a corpus entry is self-describing and every chaos-report
record can reference the exact genome that produced it.
:func:`normalize` is the single place where threat-model constraints
are enforced (module-compromise knobs imply integrity verification,
rate budgets stay within the per-envelope probability simplex), which
lets mutation operators stay simple: mutate freely, then normalize.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Tuple

from ..config import (
    CollusionPolicy,
    ExecutionConfig,
    FaultConfig,
    IntegrityConfig,
    ResilienceConfig,
    ShardingConfig,
    StudyConfig,
)
from ..errors import ConfigError

#: Envelope-level rate fields that share the per-send probability budget.
ENVELOPE_RATE_FIELDS: Tuple[str, ...] = (
    "drop_rate",
    "duplicate_rate",
    "delay_rate",
    "corrupt_rate",
    "replay_rate",
    "withhold_rate",
)

#: Module-compromise rate fields (excluded from the envelope budget).
MODULE_RATE_FIELDS: Tuple[str, ...] = ("equivocate_rate", "shard_flip_rate")

RATE_FIELDS: Tuple[str, ...] = ENVELOPE_RATE_FIELDS + MODULE_RATE_FIELDS

#: Execution-mode axis values.
MODES: Tuple[str, ...] = ("sequential", "parallel")

#: Shard-count axis values (1 disables sharding).
SHARD_AXIS: Tuple[int, ...] = (1, 2, 4)

#: Collusion-tolerance axis values.
COLLUSION_AXIS: Tuple[int, ...] = (0, 1)


@dataclass(frozen=True)
class PlanGenome:
    """One fuzzable chaos scenario: a fault plan plus its run axes."""

    faults: FaultConfig = field(default_factory=FaultConfig)
    mode: str = "sequential"
    f: int = 0
    shards: int = 1
    supervised: bool = True
    integrity: bool = False

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(f"unknown execution mode {self.mode!r}")
        if self.f not in COLLUSION_AXIS:
            raise ConfigError("collusion axis must be 0 or 1")
        if self.shards < 1:
            raise ConfigError("shard axis must be >= 1")

    # -- canonical form -------------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "faults": self.faults.to_json_dict(),
            "mode": self.mode,
            "f": self.f,
            "shards": self.shards,
            "supervised": self.supervised,
            "integrity": self.integrity,
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "PlanGenome":
        try:
            return cls(
                faults=FaultConfig.from_json_dict(doc["faults"]),
                mode=str(doc["mode"]),
                f=int(doc["f"]),
                shards=int(doc["shards"]),
                supervised=bool(doc["supervised"]),
                integrity=bool(doc["integrity"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed PlanGenome document: {exc}")

    def canonical_json(self) -> str:
        return json.dumps(
            self.to_json_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSON — the genome's identity."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    # -- complexity ordering --------------------------------------------------

    def active_faults(self) -> Tuple[str, ...]:
        """The armed fault features, one label per independent feature.

        This is the unit the shrinker minimises over: each nonzero
        rate, each crash point, each partition window and an armed
        checkpoint tamper each count as one active fault.
        """
        labels = []
        for name in RATE_FIELDS:
            if getattr(self.faults, name) > 0.0:
                labels.append(name)
        for point in self.faults.crash_points:
            labels.append(f"crash:{point[0]}@{point[1]}")
        for window in self.faults.partition_windows:
            labels.append(f"partition:{window[0]}@{window[1]}x{window[2]}")
        if self.faults.checkpoint_tamper:
            labels.append(f"tamper:{self.faults.checkpoint_tamper}")
        return tuple(labels)

    def sort_key(self) -> Tuple:
        """Total order from simplest genome to most baroque.

        The corpus keeps the *minimal* covering genome per behaviour
        (hypofuzz's ``sort_key`` idea): fewer active faults first, then
        lower total rate mass, then plainer axes, with the canonical
        JSON as the deterministic tiebreak.
        """
        rate_mass = sum(getattr(self.faults, name) for name in RATE_FIELDS)
        axis_cost = (
            (self.shards > 1)
            + (self.mode == "parallel")
            + (self.f > 0)
            + (not self.supervised)
            + self.integrity
        )
        return (
            len(self.active_faults()),
            rate_mass,
            len(self.faults.crash_points)
            + len(self.faults.partition_windows),
            axis_cost,
            self.canonical_json(),
        )


def sort_key(genome: PlanGenome) -> Tuple:
    """Module-level alias so callers can ``sorted(genomes, key=sort_key)``."""
    return genome.sort_key()


def normalize(genome: PlanGenome, members: Tuple[str, ...]) -> PlanGenome:
    """Project an arbitrary mutated genome back into the valid space.

    * envelope rates are clamped to [0, 1] and rescaled so their sum
      stays within the per-send probability budget;
    * the module-compromise knobs (equivocation, shard-partial
      falsification, checkpoint tampering) force integrity verification
      on — without the defence they trivially break the decision
      invariant, which is outside the threat model (the Byzantine tier
      always runs with integrity enabled for the same reason);
    * ``shard_flip_rate`` acquires a target member when it lacks one,
      and a target is cleared when the rate is zero;
    * ``faults.enabled`` becomes exactly "any feature armed".
    """
    faults = genome.faults
    updates: dict = {}
    rates = {}
    for name in RATE_FIELDS:
        rate = min(max(float(getattr(faults, name)), 0.0), 1.0)
        if rate != getattr(faults, name):
            rates[name] = rate
        else:
            rates[name] = getattr(faults, name)
    envelope_total = sum(rates[name] for name in ENVELOPE_RATE_FIELDS)
    if envelope_total > 1.0:
        for name in ENVELOPE_RATE_FIELDS:
            rates[name] = rates[name] / envelope_total
    for name in RATE_FIELDS:
        if rates[name] != getattr(faults, name):
            updates[name] = rates[name]

    shard_flip_rate = rates["shard_flip_rate"]
    if shard_flip_rate > 0.0 and not faults.shard_flip_target:
        updates["shard_flip_target"] = members[0]
    if shard_flip_rate == 0.0 and faults.shard_flip_target:
        updates["shard_flip_target"] = ""
    if rates["withhold_rate"] == 0.0 and faults.withhold_target:
        updates["withhold_target"] = ""

    crash_points = tuple(
        (enclave_id, max(1, int(index)))
        for enclave_id, index in faults.crash_points
        if enclave_id
    )
    if crash_points != faults.crash_points:
        updates["crash_points"] = crash_points
    windows = tuple(
        (node_id, max(1, int(start)), max(1, int(ops)))
        for node_id, start, ops in faults.partition_windows
        if node_id
    )
    if windows != faults.partition_windows:
        updates["partition_windows"] = windows

    armed = (
        any(rates[name] > 0.0 for name in RATE_FIELDS)
        or bool(crash_points)
        or bool(windows)
        or bool(faults.checkpoint_tamper)
    )
    if faults.enabled != armed:
        updates["enabled"] = armed
    if updates:
        faults = replace(faults, **updates)

    integrity = genome.integrity
    if (
        faults.equivocate_rate > 0.0
        or faults.shard_flip_rate > 0.0
        or faults.checkpoint_tamper
    ):
        integrity = True
    shards = max(1, int(genome.shards))
    if genome.faults is faults and integrity == genome.integrity and (
        shards == genome.shards
    ):
        return genome
    return replace(
        genome, faults=faults, integrity=integrity, shards=shards
    )


def genome_config(
    genome: PlanGenome,
    *,
    snp_count: int,
    study_id: str,
    study_seed: int,
    max_attempts: int = 6,
    max_failovers: int = 3,
) -> StudyConfig:
    """Materialise the :class:`~repro.config.StudyConfig` a genome runs as.

    The supervision knobs mirror the Byzantine chaos tier (six request
    attempts, three failovers) so corpus entries and legacy seeds
    execute under identical runtime budgets.
    """
    return StudyConfig(
        snp_count=snp_count,
        study_id=study_id,
        seed=study_seed,
        execution=ExecutionConfig(mode=genome.mode),
        collusion=(
            CollusionPolicy.static(genome.f)
            if genome.f
            else CollusionPolicy.none()
        ),
        sharding=ShardingConfig.over(min(genome.shards, snp_count)),
        faults=genome.faults,
        integrity=(
            IntegrityConfig.on() if genome.integrity else IntegrityConfig.off()
        ),
        resilience=(
            ResilienceConfig.supervised(
                max_attempts=max_attempts, max_failovers=max_failovers
            )
            if genome.supervised
            else ResilienceConfig.off()
        ),
    )
