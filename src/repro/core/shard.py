"""SNP-range sharding and tree-aggregation planning.

The paper's federation aggregates every phase flat through the leader:
``G`` members each ship an O(L) frame to one enclave, so leader ingress
and leader memory grow as O(G·L).  PP-GWAS scales multi-site GWAS to
millions of SNPs by partitioning the SNP axis and aggregating partial
statistics hierarchically; this module plans exactly that layout for
GenDPR:

* :func:`plan_shards` splits the ``L`` SNP columns into ``S`` contiguous
  ``[start, stop)`` ranges (paper-style as-equal-as-possible split) and
  deterministically assigns each range an *owner* enclave by
  round-robin over the sorted member ids.  The plan is a pure function
  of ``(snp_count, num_shards, member_ids)``; because ``num_shards``
  lives in :class:`~repro.config.ShardingConfig` — which is part of the
  config fingerprint — the range→enclave assignment is recorded with
  every run.

* :func:`aggregation_tree` lays the federation members out as a binary
  heap rooted at the leader.  Additive statistics (allele counts, LD
  pair moments) combine pairwise along the tree's edges, deepest level
  first, so the leader ingests at most two frames per shard instead of
  ``G`` and the combine depth is ⌈log₂ G⌉.

Both structures are recomputed *inside* each enclave from the attested
study parameters, so a Byzantine orchestrator cannot reroute a shard or
re-root the tree without the enclaves noticing (`ProtocolError`).
Everything here is deterministic and side-effect free — the module sits
inside the enclave trust boundary (see ``lint.toml``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..config import equal_partition_sizes
from ..errors import ConfigError, ProtocolError

__all__ = [
    "ShardRange",
    "ShardPlan",
    "AggregationTree",
    "plan_shards",
    "aggregation_tree",
]


@dataclass(frozen=True)
class ShardRange:
    """One contiguous SNP-column range ``[start, stop)`` and its owner."""

    index: int
    start: int
    stop: int
    owner: str

    @property
    def width(self) -> int:
        return self.stop - self.start

    def columns(self) -> range:
        """The SNP column indices this shard covers."""
        return range(self.start, self.stop)


@dataclass(frozen=True)
class ShardPlan:
    """Deterministic split of the SNP axis into owned contiguous ranges."""

    snp_count: int
    member_ids: Tuple[str, ...]
    ranges: Tuple[ShardRange, ...]

    @property
    def num_shards(self) -> int:
        return len(self.ranges)

    @property
    def max_width(self) -> int:
        """The widest shard — the O(L/S) per-frame / per-buffer bound."""
        return max(shard.width for shard in self.ranges)

    def shard_of_column(self, column: int) -> ShardRange:
        """The shard whose range contains SNP ``column``."""
        if not 0 <= column < self.snp_count:
            raise ProtocolError(
                f"SNP column {column} outside [0, {self.snp_count})"
            )
        for shard in self.ranges:
            if shard.start <= column < shard.stop:
                return shard
        raise ProtocolError(f"no shard covers SNP column {column}")

    def describe(self) -> Dict[str, object]:
        """Canonical JSON-able payload (RunReport meta, plan digest)."""
        return {
            "snp_count": self.snp_count,
            "num_shards": self.num_shards,
            "ranges": [
                {
                    "index": shard.index,
                    "start": shard.start,
                    "stop": shard.stop,
                    "owner": shard.owner,
                }
                for shard in self.ranges
            ],
        }

    def digest(self) -> str:
        """SHA-256 over the canonical plan payload."""
        encoded = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(encoded).hexdigest()


def plan_shards(
    snp_count: int,
    num_shards: int,
    member_ids: Sequence[str],
    epoch: int = 0,
) -> ShardPlan:
    """Split ``snp_count`` columns into ``num_shards`` owned ranges.

    The split mirrors :func:`~repro.config.equal_partition_sizes` (the
    first ``L % S`` shards take one extra column) and owners are
    assigned round-robin over the *sorted* member ids, so every party
    that knows the study parameters derives the identical plan.

    ``epoch`` is the tree-repair generation: each repair bumps it and
    rotates the round-robin owner assignment by one, so a repaired
    layout is a *different* deterministic plan (its digest is recorded
    alongside the original) while the ranges — and therefore every
    partial's wire shape — stay epoch-invariant.  Epoch 0 is the layout
    the config fingerprint commits to.
    """
    if snp_count <= 0:
        raise ConfigError("snp_count must be positive")
    if not 1 <= num_shards <= snp_count:
        raise ConfigError(
            f"num_shards must be in [1, {snp_count}], got {num_shards}"
        )
    owners = sorted(member_ids)
    if not owners:
        raise ConfigError("sharding needs at least one member")
    if len(set(owners)) != len(owners):
        raise ConfigError("duplicate member ids in shard plan")
    if epoch < 0:
        raise ConfigError("shard plan epoch must be >= 0")
    widths = equal_partition_sizes(snp_count, num_shards)
    ranges: List[ShardRange] = []
    start = 0
    for index, width in enumerate(widths):
        ranges.append(
            ShardRange(
                index=index,
                start=start,
                stop=start + width,
                owner=owners[(index + epoch) % len(owners)],
            )
        )
        start += width
    return ShardPlan(
        snp_count=snp_count,
        member_ids=tuple(owners),
        ranges=tuple(ranges),
    )


@dataclass(frozen=True)
class AggregationTree:
    """Binary combine tree over the federation members, rooted at one node.

    The layout is a binary heap over ``[root] + sorted(others)``: the
    node at position ``i`` sends its combined partial to position
    ``(i - 1) // 2``.  Partials therefore combine *pairwise* (every
    parent ingests at most two child frames per shard) and the depth is
    ⌈log₂ G⌉, which is what drops leader fan-in from ``G`` flat frames
    to O(log G) bounded ones.
    """

    root: str
    nodes: Tuple[str, ...]

    @property
    def depth(self) -> int:
        """Number of combine levels (0 for a single-node federation)."""
        depth = 0
        position = len(self.nodes) - 1
        while position > 0:
            position = (position - 1) // 2
            depth += 1
        return depth

    def parent(self, node: str) -> str:
        """The node ``node`` sends its combined partial to."""
        position = self.nodes.index(node)
        if position == 0:
            raise ProtocolError(f"{node} is the aggregation root")
        return self.nodes[(position - 1) // 2]

    def children(self, node: str) -> Tuple[str, ...]:
        """The nodes whose partials ``node`` ingests (at most two)."""
        position = self.nodes.index(node)
        kids = []
        for child in (2 * position + 1, 2 * position + 2):
            if child < len(self.nodes):
                kids.append(self.nodes[child])
        return tuple(kids)

    def levels(self) -> List[List[Tuple[str, str]]]:
        """Combine schedule: ``(child, parent)`` edges, deepest first.

        Edges within one level touch distinct children, so their emit
        ECALLs can run concurrently under the parallel executor.
        """
        by_depth: Dict[int, List[Tuple[str, str]]] = {}
        for position in range(1, len(self.nodes)):
            depth = 0
            cursor = position
            while cursor > 0:
                cursor = (cursor - 1) // 2
                depth += 1
            edge = (self.nodes[position], self.nodes[(position - 1) // 2])
            by_depth.setdefault(depth, []).append(edge)
        return [by_depth[depth] for depth in sorted(by_depth, reverse=True)]


def aggregation_tree(
    member_ids: Iterable[str], root: str, epoch: int = 0
) -> AggregationTree:
    """Heap-shaped combine tree over ``member_ids`` rooted at ``root``.

    ``epoch`` (the tree-repair generation) rotates the sorted non-root
    order, so each repair deterministically re-shapes the interior of
    the heap — a node that sat under a faulty parent lands on fresh
    edges — without moving the root.  Epoch 0 is the original layout.
    """
    members = sorted(member_ids)
    if root not in members:
        raise ConfigError(f"tree root {root!r} is not a federation member")
    if epoch < 0:
        raise ConfigError("aggregation tree epoch must be >= 0")
    others = [member for member in members if member != root]
    if others and epoch:
        turn = epoch % len(others)
        others = others[turn:] + others[:turn]
    ordered = (root, *others)
    return AggregationTree(root=root, nodes=ordered)
