"""R5 fixture — protocol-scope raises outside the repro error taxonomy."""


def validate(threshold):
    if threshold < 0:
        raise ValueError("threshold must be non-negative")  # R5
    if threshold > 1:
        raise RuntimeError("threshold out of range")  # R5
    return threshold
