"""Trusted Execution Environment simulation.

A faithful software model of the SGX facilities GenDPR builds on:

* :mod:`~repro.tee.measurement` — enclave code identity (MRENCLAVE).
* :mod:`~repro.tee.enclave` — the ECALL trust boundary and resource
  metering.
* :mod:`~repro.tee.sealing` — MRENCLAVE-policy sealed storage.
* :mod:`~repro.tee.attestation` — platforms, quotes and the attestation
  service.
* :mod:`~repro.tee.channel` — mutually attested encrypted channels.

See DESIGN.md for why simulation (rather than Gramine-wrapped hardware
enclaves) is the right substrate for this reproduction.
"""

from .attestation import (
    AttestationService,
    MonotonicCounter,
    Platform,
    Quote,
    QuoteVerifier,
    pack_report_data,
)
from .channel import ChannelEndpoint, HandshakeMessage, establish_channel
from .enclave import (
    Enclave,
    GuardedEnclaveProxy,
    ecall,
    expected_measurement,
    guarded,
)
from .measurement import Measurement, measure_blob, measure_class
from .oblivious import (
    oblivious_maf_mask,
    oblivious_prefix_selection,
    oblivious_quantile_threshold,
    oblivious_select,
    oblivious_sort,
)
from .resources import BASELINE_MEMORY_BYTES, ResourceMeter, ResourceReport
from .sealing import SealedBlob, seal, unseal
from .storage import ColumnReader, SealedColumnStore, seal_matrix

__all__ = [
    "AttestationService",
    "MonotonicCounter",
    "Platform",
    "Quote",
    "QuoteVerifier",
    "pack_report_data",
    "ChannelEndpoint",
    "HandshakeMessage",
    "establish_channel",
    "Enclave",
    "GuardedEnclaveProxy",
    "ecall",
    "expected_measurement",
    "guarded",
    "Measurement",
    "oblivious_maf_mask",
    "oblivious_prefix_selection",
    "oblivious_quantile_threshold",
    "oblivious_select",
    "oblivious_sort",
    "measure_blob",
    "measure_class",
    "BASELINE_MEMORY_BYTES",
    "ResourceMeter",
    "ResourceReport",
    "SealedBlob",
    "seal",
    "unseal",
    "ColumnReader",
    "SealedColumnStore",
    "seal_matrix",
]
