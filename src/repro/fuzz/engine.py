"""The fuzz session: mutate, execute, judge, pool, shrink, report.

:class:`FuzzEngine` ties the subsystem together.  One session seeds
its corpus (from the committed artifact and/or the 42 legacy sweep
seeds), then loops within a wall-clock or iteration budget: pick a
base genome from the pool round-robin (simplest first), apply one
typed mutation, execute it under the decision oracle with arc coverage
on, and fold the observed behaviour back into the pool.  Any run that
breaks the decision invariant is immediately reduced by the shrinker
and recorded as a violation — the session's real product is either
"no violations, here is the enlarged coverage frontier" or a minimal
reproducer a human can read.

The engine is deliberately free of I/O: it takes decoded corpus
entries and returns report dictionaries, and the CLI (the only place
allowed to touch files) does the reading and writing.  Timekeeping
uses the monotonic metering clock only, and every random choice lives
inside the mutator's seeded stream — a session is replayable from
``(engine seed, corpus-in, budget in iterations)`` alone.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .corpus import CorpusPool
from .coverage import Behaviour, CoverageCollector
from .genome import PlanGenome, genome_config
from .mutator import PlanMutator
from .oracle import DecisionOracle, OracleRun
from .seeds import legacy_genomes
from .shrink import Shrinker

#: Default cap on shrinker predicate evaluations per violation.
DEFAULT_SHRINK_RUNS = 120


class FuzzEngine:
    """One coverage-guided fuzz session over plan genomes."""

    def __init__(
        self,
        *,
        seed: int,
        oracle: Optional[DecisionOracle] = None,
        coverage: bool = True,
        shrink_runs: int = DEFAULT_SHRINK_RUNS,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.seed = seed
        self.oracle = oracle if oracle is not None else DecisionOracle()
        self.pool = CorpusPool()
        self.mutator = PlanMutator(
            seed=seed,
            members=self.oracle.member_ids,
            leader=self.oracle.leader_id,
        )
        self.collector = CoverageCollector(enabled=coverage)
        self.shrink_runs = shrink_runs
        self.violations: List[Dict[str, object]] = []
        self._violation_digests: set = set()
        self._legacy_keys: set = set()
        self._legacy_seed_count = 0
        self._seeded_entries = 0
        self._seeded_mismatches = 0
        self._iterations = 0
        self._elapsed = 0.0
        self._base_index = 0
        self._progress = progress

    # -- execution ------------------------------------------------------------

    def _execute(self, genome: PlanGenome) -> Tuple[OracleRun, Behaviour]:
        return self.oracle.execute_genome(genome, collector=self.collector)

    def _emit(self, message: str) -> None:
        if self._progress is not None:
            self._progress(message)

    # -- seeding --------------------------------------------------------------

    def seed_corpus(
        self, entries: Sequence[Tuple[PlanGenome, dict]]
    ) -> Dict[str, int]:
        """Replay committed corpus entries to re-establish their units.

        Arc units are interpreter-dependent, so each genome is executed
        afresh and pooled under the behaviour observed *now*.  The
        committed counter list is checked against the replay — a
        mismatch means a genome no longer reproduces its recorded
        defences, which the report surfaces (and the determinism test
        fails on).
        """
        mismatches = 0
        for genome, summary in entries:
            run, behaviour = self._execute(genome)
            self.pool.add(genome, behaviour)
            expected = summary.get("counters")
            if expected is not None and sorted(behaviour.counters) != list(
                expected
            ):
                mismatches += 1
            if run.violation is not None:
                self._record_violation(genome, run)
        self._seeded_entries += len(entries)
        self._seeded_mismatches += mismatches
        return {"entries": len(entries), "counter_mismatches": mismatches}

    def replay_legacy(self) -> Dict[str, int]:
        """Replay the 42 legacy sweep seeds; anchor the key comparison.

        The legacy behaviour keys are tracked separately from the
        pool's: the report's central claim is that the fuzz session's
        frontier strictly contains more distinct keys than this fixed
        sweep reaches.  The legacy genomes also seed the pool — they
        are known-good starting points for mutation.
        """
        genomes = legacy_genomes(
            members=self.oracle.member_ids, leader=self.oracle.leader_id
        )
        for genome in genomes:
            run, behaviour = self._execute(genome)
            self._legacy_keys.add(behaviour.key())
            self.pool.add(genome, behaviour)
            if run.violation is not None:
                self._record_violation(genome, run)
        self._legacy_seed_count = len(genomes)
        self._emit(
            f"legacy replay: {len(genomes)} seeds -> "
            f"{len(self._legacy_keys)} behaviour keys"
        )
        return {"seeds": len(genomes), "keys": len(self._legacy_keys)}

    # -- the fuzz loop --------------------------------------------------------

    def run(
        self,
        *,
        budget_seconds: Optional[float] = None,
        max_iterations: Optional[int] = None,
    ) -> Dict[str, object]:
        """Fuzz within a time and/or iteration budget.

        At least one budget must be given.  Iteration-budgeted runs are
        fully deterministic (same seed, same seeding -> same genome
        sequence); time-budgeted runs execute a deterministic *prefix*
        of that sequence.
        """
        if budget_seconds is None and max_iterations is None:
            raise ConfigError("give budget_seconds and/or max_iterations")
        start = time.perf_counter()
        ran = 0
        while True:
            if (
                budget_seconds is not None
                and time.perf_counter() - start >= budget_seconds
            ):
                break
            if max_iterations is not None and ran >= max_iterations:
                break
            bases = self.pool.genomes()
            if bases:
                base = bases[self._base_index % len(bases)]
                self._base_index += 1
            else:
                base = PlanGenome()
            mutated = self.mutator.mutate(base, pool=bases)
            run, behaviour = self._execute(mutated)
            novel = self.pool.add(mutated, behaviour)
            if run.violation is not None:
                self._record_violation(mutated, run)
            self._iterations += 1
            ran += 1
            if novel:
                self._emit(
                    f"iteration {self._iterations}: new behaviour "
                    f"({len(self.pool.behaviour_keys())} keys, "
                    f"{len(self.pool)} corpus genomes)"
                )
        elapsed = time.perf_counter() - start
        self._elapsed += elapsed
        return {"iterations": ran, "elapsed_seconds": round(elapsed, 3)}

    # -- violations -----------------------------------------------------------

    def _violates(self, genome: PlanGenome) -> bool:
        config = genome_config(
            genome,
            snp_count=self.oracle.snp_count,
            study_id=self.oracle.study_id,
            study_seed=self.oracle.study_seed,
        )
        return self.oracle.execute(config).violation is not None

    def _record_violation(self, genome: PlanGenome, run: OracleRun) -> None:
        shrinker = Shrinker(
            self._violates,
            members=self.oracle.member_ids,
            max_runs=self.shrink_runs,
        )
        result = shrinker.shrink(genome)
        digest = result.genome.digest()
        if digest in self._violation_digests:
            return
        self._violation_digests.add(digest)
        self.violations.append(
            {
                "violation": run.violation,
                "error": run.error,
                "error_message": run.error_message,
                "genome": genome.to_json_dict(),
                "genome_digest": genome.digest(),
                "shrunk": {
                    "genome": result.genome.to_json_dict(),
                    "digest": digest,
                    "active_faults": list(result.genome.active_faults()),
                    "shrink_runs_used": result.runs_used,
                },
            }
        )
        self._emit(
            f"VIOLATION {run.violation}: shrunk to "
            f"{len(result.genome.active_faults())} active faults"
        )

    # -- reporting ------------------------------------------------------------

    def report(self) -> Dict[str, object]:
        """The session's JSON report (coverage frontier + verdict)."""
        fuzz_keys = self.pool.behaviour_keys()
        doc: Dict[str, object] = {
            "engine_seed": self.seed,
            "iterations": self._iterations,
            "elapsed_seconds": round(self._elapsed, 3),
            "coverage_enabled": self.collector.enabled,
            "coverage": {
                "behaviour_keys": len(fuzz_keys),
                "counter_units": sorted(self.pool.counter_units()),
                "arc_units": len(self.pool.arc_units()),
                "corpus_genomes": len(self.pool),
            },
            "seeded": {
                "corpus_entries": self._seeded_entries,
                "counter_mismatches": self._seeded_mismatches,
            },
            "violations": list(self.violations),
        }
        if self._legacy_seed_count:
            doc["legacy_comparison"] = {
                "legacy_seeds": self._legacy_seed_count,
                "legacy_keys": len(self._legacy_keys),
                "fuzz_keys": len(fuzz_keys),
                "strictly_more": len(fuzz_keys) > len(self._legacy_keys),
            }
        return doc
