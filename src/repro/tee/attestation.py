"""Remote attestation (simulated quoting infrastructure).

The paper relies on SGX remote attestation so that "only a properly
authenticated enclave" receives intermediate data.  The simulation models
the standard EPID/DCAP flow with three roles:

* :class:`AttestationService` — the trusted authority (Intel's IAS/QE
  analogue).  Platforms register with it and receive a platform-bound
  quoting key.
* :func:`generate_quote` — an enclave asks its platform to quote it: the
  quote binds the enclave *measurement* and caller-chosen *report data*
  (typically a hash of a DH public key and a handshake nonce) under the
  platform's quoting key.
* :func:`AttestationService.verify_quote` — any party holding a verifier
  handle checks a quote's signature, platform registration status and,
  critically, that the measurement equals the expected trusted-code
  measurement.

Revoking a platform (e.g. after compromise) invalidates all its future
quotes, which the tests exercise.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from ..crypto.kdf import derive_subkey
from ..crypto.rng import system_random_bytes
from ..crypto.signing import MacSigner
from ..errors import AttestationError, AuthenticationError
from .enclave import Enclave
from .measurement import MEASUREMENT_SIZE, Measurement

REPORT_DATA_SIZE = 64


@dataclass(frozen=True)
class Quote:
    """A signed attestation statement for one enclave on one platform."""

    platform_id: str
    measurement: Measurement
    report_data: bytes
    signature: bytes

    def __post_init__(self) -> None:
        if len(self.report_data) != REPORT_DATA_SIZE:
            raise AttestationError(
                f"report data must be exactly {REPORT_DATA_SIZE} bytes"
            )

    def signed_payload(self) -> bytes:
        return (
            b"repro.quote/v1\x00"
            + self.platform_id.encode("utf-8")
            + b"\x00"
            + self.measurement.value
            + self.report_data
        )


def pack_report_data(*items: bytes) -> bytes:
    """Hash arbitrary handshake material into fixed-size report data.

    The first 32 bytes are a SHA-256 over the length-prefixed items; the
    rest is zero padding, mirroring how SGX report data is commonly used.
    """
    hasher = hashlib.sha256()
    for item in items:
        hasher.update(len(item).to_bytes(8, "big"))
        hasher.update(item)
    return hasher.digest() + bytes(REPORT_DATA_SIZE - MEASUREMENT_SIZE)


class MonotonicCounter:
    """A platform-backed monotonic counter (SGX rollback protection).

    Models the SGX/TPM monotonic counter service: the value survives
    enclave teardown and replacement because it belongs to the
    *platform*, not the enclave instance.  Sealed checkpoints bind the
    value current at sealing time into their AAD; a restore presenting
    an earlier value than the counter proves a rollback replay (see
    :class:`~repro.errors.StaleCheckpointError`).
    """

    def __init__(self, name: str):
        if not name:
            raise AttestationError("counter name must be non-empty")
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def advance(self) -> int:
        """Increment and return the new value (never rolls back)."""
        self._value += 1
        return self._value


class Platform:
    """A TEE-enabled machine: root key + quoting credentials."""

    def __init__(self, platform_id: str, quoting_key: bytes, root_key: bytes):
        self.platform_id = platform_id
        self.root_key = root_key
        self._quote_signer = MacSigner(quoting_key, purpose="quote")
        self._counters: Dict[str, MonotonicCounter] = {}

    def monotonic_counter(self, name: str) -> MonotonicCounter:
        """The platform's named monotonic counter (created on first use).

        Repeated calls return the same counter object, so a replacement
        enclave on the same platform observes every advance its crashed
        predecessor performed.
        """
        if name not in self._counters:
            self._counters[name] = MonotonicCounter(name)
        return self._counters[name]

    def quote_enclave(self, enclave: Enclave, report_data: bytes) -> Quote:
        """Produce a quote over an enclave hosted on this platform."""
        quote = Quote(
            platform_id=self.platform_id,
            measurement=enclave.measurement,
            report_data=report_data,
            signature=b"\x00" * 32,
        )
        signature = self._quote_signer.sign(quote.signed_payload())
        return Quote(
            platform_id=quote.platform_id,
            measurement=quote.measurement,
            report_data=quote.report_data,
            signature=signature,
        )


class AttestationService:
    """Simulated attestation authority.

    Holds a master secret; each registered platform's quoting key is
    derived from it, so the service can re-derive the key to verify any
    platform's quotes without a database of raw keys.
    """

    def __init__(self, master_secret: Optional[bytes] = None):
        self._master = master_secret or system_random_bytes(32)
        self._platforms: Dict[str, Platform] = {}
        self._revoked: set[str] = set()

    def register_platform(self, platform_id: str) -> Platform:
        """Provision a new TEE-enabled machine."""
        if not platform_id:
            raise AttestationError("platform_id must be non-empty")
        if platform_id in self._platforms:
            raise AttestationError(f"platform {platform_id!r} already registered")
        platform = Platform(
            platform_id,
            quoting_key=derive_subkey(self._master, "quoting/" + platform_id),
            root_key=derive_subkey(self._master, "root/" + platform_id),
        )
        self._platforms[platform_id] = platform
        return platform

    def revoke_platform(self, platform_id: str) -> None:
        """Blacklist a platform; its quotes stop verifying."""
        self._revoked.add(platform_id)

    def verify_quote(self, quote: Quote, expected: Measurement) -> None:
        """Check signature, registration, revocation and measurement.

        Raises :class:`AttestationError` with a cause-specific message on
        any failure; returns ``None`` on success.
        """
        if quote.platform_id not in self._platforms:
            raise AttestationError(
                f"quote from unregistered platform {quote.platform_id!r}"
            )
        if quote.platform_id in self._revoked:
            raise AttestationError(
                f"platform {quote.platform_id!r} has been revoked"
            )
        signer = MacSigner(
            derive_subkey(self._master, "quoting/" + quote.platform_id),
            purpose="quote",
        )
        try:
            signer.verify(quote.signed_payload(), quote.signature)
        except AuthenticationError as exc:
            raise AttestationError("quote signature verification failed") from exc
        if not quote.measurement.matches(expected):
            raise AttestationError(
                "measurement mismatch: enclave is not running the expected "
                f"trusted code (got {quote.measurement!r})"
            )

    def verifier(self) -> "QuoteVerifier":
        """A verification-only handle safe to distribute to all members."""
        return QuoteVerifier(self)


class QuoteVerifier:
    """Verification-only facade over the attestation service."""

    def __init__(self, service: AttestationService):
        self._service = service

    def verify(self, quote: Quote, expected: Measurement) -> None:
        self._service.verify_quote(quote, expected)
