"""Baseline (grandfathered-findings) file support.

A baseline lets the linter be adopted on a tree with pre-existing
violations: known findings are recorded once and the CI gate fails only
on *new* ones.  Entries are content-addressed — ``(rule, module,
stripped source line)`` — so renumbering lines does not invalidate
them, while fixing or editing the offending line retires the entry
(and the engine then reports it as *unused*, keeping baselines tidy).

The shipped repository baseline is empty: every finding the rules
raised against the existing tree was fixed rather than grandfathered.
Each entry supports a ``note`` field so any future grandfathering is
documented inline, next to the suppression itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Set, Tuple

from ..errors import LintConfigError
from .findings import Finding

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


@dataclass
class Baseline:
    """A set of grandfathered findings, with usage tracking."""

    entries: Dict[_Key, Dict[str, Any]] = field(default_factory=dict)
    _used: Set[_Key] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.is_file():
            return cls()
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise LintConfigError(f"unreadable baseline {path}: {exc}") from exc
        if (
            not isinstance(document, dict)
            or document.get("version") != BASELINE_VERSION
            or not isinstance(document.get("entries"), list)
        ):
            raise LintConfigError(
                f"baseline {path} is not a version-{BASELINE_VERSION} "
                "lint baseline document"
            )
        baseline = cls()
        for entry in document["entries"]:
            if not isinstance(entry, dict):
                raise LintConfigError(f"malformed baseline entry in {path}")
            try:
                key = (
                    str(entry["rule"]),
                    str(entry["module"]),
                    str(entry["content"]),
                )
            except KeyError as exc:
                raise LintConfigError(
                    f"baseline entry in {path} misses field {exc}"
                ) from exc
            baseline.entries[key] = entry
        return baseline

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = finding.baseline_key()
            baseline.entries[key] = {
                "rule": finding.rule,
                "module": finding.module,
                "content": finding.line_content,
                "note": f"grandfathered: {finding.message}",
            }
        return baseline

    def covers(self, finding: Finding) -> bool:
        key = finding.baseline_key()
        if key in self.entries:
            self._used.add(key)
            return True
        return False

    def unused_entries(self) -> List[Dict[str, Any]]:
        """Entries that matched nothing this run (stale suppressions)."""
        return [
            entry
            for key, entry in sorted(self.entries.items())
            if key not in self._used
        ]

    def save(self, path: Path) -> None:
        document = {
            "version": BASELINE_VERSION,
            "entries": [
                self.entries[key] for key in sorted(self.entries)
            ],
        }
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def __len__(self) -> int:
        return len(self.entries)
