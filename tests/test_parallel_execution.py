"""Parallel round execution: equivalence, round counts, thread safety.

The concurrent OCALL fan-out must be a pure wall-clock optimisation:
both execution modes produce bit-identical study *decisions* (retained
sets, release power, per-combination safe sets).  These tests pin that
contract, the batched Phase-3 round count, and the thread safety of the
simulated network the fan-out relies on.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

import pytest

from repro import CollusionPolicy, StudyConfig, run_study
from repro.bench.fig5 import study_decisions
from repro.config import ExecutionConfig
from repro.errors import ConfigError, NetworkError
from repro.net import Envelope, SimulatedNetwork


def _run(small_cohort, *, members: int, f: int, mode: str):
    config = StudyConfig(
        snp_count=small_cohort.num_snps,
        collusion=CollusionPolicy.static(f) if f else CollusionPolicy.none(),
        seed=5,
        study_id=f"exec-{members}g-f{f}-{mode}",
        execution=(
            ExecutionConfig.parallel()
            if mode == "parallel"
            else ExecutionConfig.sequential()
        ),
    )
    return run_study(small_cohort, config, num_members=members)


class TestExecutionConfig:
    def test_defaults_sequential(self):
        config = ExecutionConfig()
        assert config.mode == "sequential" and not config.is_parallel

    def test_parallel_constructor(self):
        config = ExecutionConfig.parallel(max_workers=4)
        assert config.is_parallel and config.max_workers == 4

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigError):
            ExecutionConfig(mode="turbo")

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigError):
            ExecutionConfig(mode="parallel", max_workers=0)

    def test_fingerprint_excludes_execution(self, small_cohort):
        from repro.obs import config_fingerprint

        base = StudyConfig(snp_count=small_cohort.num_snps, study_id="fp")
        assert config_fingerprint(base) == config_fingerprint(
            replace(base, execution=ExecutionConfig.parallel(max_workers=2))
        )


class TestModeEquivalence:
    """Sequential and parallel runs decide bit-identically."""

    @pytest.mark.parametrize("members", [3, 5])
    @pytest.mark.parametrize("f", [0, 1])
    def test_bit_identical_decisions(self, small_cohort, members, f):
        sequential = _run(small_cohort, members=members, f=f, mode="sequential")
        parallel = _run(small_cohort, members=members, f=f, mode="parallel")
        assert study_decisions(sequential) == study_decisions(parallel)
        assert parallel.execution_mode == "parallel"
        assert sequential.execution_mode == "sequential"

    def test_max_workers_clamp_preserves_results(self, small_cohort):
        config = StudyConfig(
            snp_count=small_cohort.num_snps,
            seed=5,
            study_id="exec-1worker",
            execution=ExecutionConfig.parallel(max_workers=1),
        )
        narrow = run_study(small_cohort, config, num_members=3)
        wide = _run(small_cohort, members=3, f=0, mode="parallel")
        assert study_decisions(narrow) == study_decisions(wide)


class TestBatchedRounds:
    def test_lr_is_one_round_with_collusion(self, small_cohort):
        """f=1, G=5: C(5,4)+1 combinations plus the plain track used to
        take seven ``lr`` rounds; the batched protocol takes one."""
        result = _run(small_cohort, members=5, f=1, mode="sequential")
        assert result.ocall_rounds["lr"] == 1

    def test_lr_is_one_round_without_collusion(self, study_result):
        assert study_result.ocall_rounds["lr"] == 1

    def test_round_counts_identical_across_modes(self, small_cohort):
        sequential = _run(small_cohort, members=3, f=1, mode="sequential")
        parallel = _run(small_cohort, members=3, f=1, mode="parallel")
        assert sequential.ocall_rounds == parallel.ocall_rounds


class TestNetworkThreadSafety:
    def test_concurrent_senders_lose_no_messages(self):
        network = SimulatedNetwork()
        senders = [f"s{i}" for i in range(4)]
        for node in senders + ["sink"]:
            network.register(node)
        per_sender = 200

        def flood(sender: str) -> None:
            for i in range(per_sender):
                network.send(
                    Envelope(
                        sender=sender,
                        receiver="sink",
                        tag="stress",
                        body=f"{sender}:{i}".encode(),
                    )
                )

        with ThreadPoolExecutor(len(senders)) as pool:
            list(pool.map(flood, senders))
        assert network.pending("sink") == per_sender * len(senders)
        total = network.total_stats()
        assert total.messages == per_sender * len(senders)
        # Per-link FIFO order survives concurrent interleaving.
        seen = {sender: -1 for sender in senders}
        while network.pending("sink"):
            envelope = network.receive("sink", "stress")
            sender, index = envelope.body.decode().split(":")
            assert int(index) == seen[sender] + 1
            seen[sender] = int(index)

    def test_concurrent_disjoint_send_receive(self):
        """Workers servicing different inboxes never interfere."""
        network = SimulatedNetwork()
        workers = [f"w{i}" for i in range(4)]
        network.register("leader")
        for node in workers:
            network.register(node)
        rounds = 100
        errors: list = []

        def serve(worker: str) -> None:
            try:
                for i in range(rounds):
                    network.send(
                        Envelope(
                            sender="leader",
                            receiver=worker,
                            tag="req",
                            body=b"ping",
                        )
                    )
                    got = network.receive(worker, "req")
                    assert got.sender == "leader"
                    network.send(
                        Envelope(
                            sender=worker,
                            receiver="leader",
                            tag="req",
                            body=f"{worker}:{i}".encode(),
                        )
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with ThreadPoolExecutor(len(workers)) as pool:
            list(pool.map(serve, workers))
        assert not errors
        assert network.pending("leader") == rounds * len(workers)
        assert network.total_stats().messages == 2 * rounds * len(workers)

    def test_duplicate_registration_rejected(self):
        network = SimulatedNetwork()
        network.register("a")
        with pytest.raises(NetworkError):
            network.register("a")


class TestLockOrderCrossCheck:
    """Runtime lock orders must be consistent with R4's static graph.

    R4 only sees syntactic ``with``-nesting; orders created through
    call chains (``_ReplyRouter.pump()`` holds its lock while
    ``SimulatedNetwork.receive`` takes an inbox lock) are invisible to
    it.  This test instruments every lock in the network and resilience
    layers, drives a resilience-enabled parallel study, and asserts the
    union of the static and the observed acquisition graphs is acyclic.
    """

    def test_parallel_supervised_run_stays_acyclic(
        self, small_cohort, monkeypatch
    ):
        import pathlib

        import repro.core.resilience as resilience_module
        import repro.net.network as network_module
        from repro.config import ResilienceConfig
        from repro.lint import LintConfig, OrderedLockFactory, combined_cycles
        from repro.lint.engine import load_module
        from repro.lint.rules.locks import extract_lock_edges

        factory = OrderedLockFactory()
        monkeypatch.setattr(network_module, "threading", factory.shim())
        monkeypatch.setattr(resilience_module, "threading", factory.shim())

        config = StudyConfig(
            snp_count=small_cohort.num_snps,
            collusion=CollusionPolicy.static(1),
            seed=5,
            study_id="lock-order-crosscheck",
            execution=ExecutionConfig.parallel(),
            resilience=ResilienceConfig.supervised(),
        )
        result = run_study(small_cohort, config, num_members=4)
        assert result.execution_mode == "parallel"

        # The instrumented locks really were exercised, under the same
        # canonical names R4 derives statically.
        counts = factory.acquisition_counts()
        assert counts, "no instrumented lock was ever acquired"
        assert any("SimulatedNetwork" in name for name in counts)
        assert any("_ReplyRouter" in name for name in counts)

        static_edges = []
        for module_file in (network_module.__file__,
                            resilience_module.__file__):
            loaded = load_module(pathlib.Path(module_file), LintConfig())
            edges, _ = extract_lock_edges(loaded)
            static_edges.extend(
                (edge.outer, edge.inner) for edge in edges
            )

        runtime_edges = factory.edges()
        # The call-chain edge static analysis cannot see must have been
        # observed at runtime — that is what this harness adds.
        assert any(
            outer.startswith("_ReplyRouter") for outer, _ in runtime_edges
        )
        cycles = combined_cycles(static_edges, runtime_edges)
        assert cycles == [], (
            "lock acquisition-order cycle across static+runtime graphs: "
            f"{cycles}"
        )
