"""Block-cipher chaining modes (CTR, CBC) and PKCS#7 padding.

CTR is the workhorse used by the AEAD construction in
:mod:`repro.crypto.authenticated`; CBC is provided because the paper's
implementation encrypted exchanged vectors with padded AES (the ~30 %
ciphertext expansion reported in Section 7.1 comes from padding plus
framing), and the CBC path reproduces that sizing behaviour exactly.
"""

from __future__ import annotations

import os

from ..errors import DecryptionError
from .aes import AES, BLOCK_SIZE


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` (always adds >= 1 byte)."""
    if not 0 < block_size < 256:
        raise ValueError("block_size must be in 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip PKCS#7 padding, validating every padding byte."""
    if not data or len(data) % block_size:
        raise DecryptionError("padded data has invalid length")
    pad_len = data[-1]
    if not 0 < pad_len <= block_size:
        raise DecryptionError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise DecryptionError("padding bytes are inconsistent")
    return data[:-pad_len]


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class CTR:
    """AES counter mode: a big-endian 128-bit counter seeded by the nonce.

    Encryption and decryption are the same operation.  Nonces must never
    repeat under one key; callers draw them from ``os.urandom`` or a
    session sequence number.
    """

    def __init__(self, key: bytes):
        self._cipher = AES(key)

    def keystream(self, nonce: bytes, length: int) -> bytes:
        if len(nonce) != BLOCK_SIZE:
            raise ValueError(f"CTR nonce must be {BLOCK_SIZE} bytes")
        counter = int.from_bytes(nonce, "big")
        blocks = []
        for _ in range((length + BLOCK_SIZE - 1) // BLOCK_SIZE):
            blocks.append(
                self._cipher.encrypt_block(
                    (counter % (1 << 128)).to_bytes(BLOCK_SIZE, "big")
                )
            )
            counter += 1
        return b"".join(blocks)[:length]

    def process(self, nonce: bytes, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (CTR is an involution)."""
        return _xor_bytes(data, self.keystream(nonce, len(data)))


class CBC:
    """AES cipher-block-chaining with PKCS#7 padding."""

    def __init__(self, key: bytes):
        self._cipher = AES(key)

    def encrypt(self, plaintext: bytes, iv: bytes | None = None) -> bytes:
        """Encrypt; returns ``iv || ciphertext``."""
        if iv is None:
            iv = os.urandom(BLOCK_SIZE)
        if len(iv) != BLOCK_SIZE:
            raise ValueError(f"CBC IV must be {BLOCK_SIZE} bytes")
        padded = pkcs7_pad(plaintext)
        previous = iv
        out = [iv]
        for offset in range(0, len(padded), BLOCK_SIZE):
            block = _xor_bytes(padded[offset : offset + BLOCK_SIZE], previous)
            previous = self._cipher.encrypt_block(block)
            out.append(previous)
        return b"".join(out)

    def decrypt(self, data: bytes) -> bytes:
        """Decrypt ``iv || ciphertext`` produced by :meth:`encrypt`."""
        if len(data) < 2 * BLOCK_SIZE or len(data) % BLOCK_SIZE:
            raise DecryptionError("CBC ciphertext has invalid length")
        iv, ciphertext = data[:BLOCK_SIZE], data[BLOCK_SIZE:]
        previous = iv
        out = []
        for offset in range(0, len(ciphertext), BLOCK_SIZE):
            block = ciphertext[offset : offset + BLOCK_SIZE]
            out.append(_xor_bytes(self._cipher.decrypt_block(block), previous))
            previous = block
        return pkcs7_unpad(b"".join(out))


def ciphertext_expansion(plaintext_len: int) -> int:
    """Bytes a CBC+PKCS#7 ciphertext adds over ``plaintext_len``.

    One IV block plus 1..16 bytes of padding — the source of the ~30 %
    expansion the paper reports for its (small) allele-count vectors.
    """
    padded = (plaintext_len // BLOCK_SIZE + 1) * BLOCK_SIZE
    return padded - plaintext_len + BLOCK_SIZE
