"""Miniature enclave with deliberate taint-flow violations."""


class Store:
    def load(self, idx):
        return [idx]


class Channel:
    def protect(self, data):
        return b"ciphertext"


class MiniEnclave:
    def __init__(self):
        self.store = Store()
        self.channel = Channel()

    def leak_column(self, idx):
        col = self.store.load(idx)
        print(col)  # R6: genotype -> stdout
        return self.channel.protect(col)

    def log_helper(self, payload):
        print(payload)  # leaks only when the caller passes secrets

    def audit(self, idx):
        col = self.store.load(idx)
        self.log_helper(col)  # R6 via log_helper, anchored at line 25

    def export_column(self, idx):
        # Returns raw genotype data; callers outside the boundary
        # trigger R7.
        return self.store.load(idx)

    def declared_result(self):
        # Also returns taint, but is a declared ECALL result path.
        return self.store.load(0)

    def release_stats(self):
        return 1.0

    def ecall(self, name, *args):
        return getattr(self, name)(*args)
