"""Debug taint tagging cross-checking the static flow analysis.

R6-R8 reason about flows *syntactically*; flows that only materialize
through dynamic dispatch or data-dependent control flow are invisible
to them.  This module closes that gap at test time, mirroring the
lock-order instrumentation in :mod:`repro.lint.runtime`:

* :class:`TaintedArray` is an ``ndarray`` subclass carrying a
  :class:`TaintTag` that survives slicing, ufuncs and views;
* :class:`TaintedColumnReader` wraps the enclave's
  :class:`~repro.tee.storage.ColumnReader` so every genotype column
  leaving sealed storage is tagged at the source;
* :class:`TaintMonitor` instruments release/observation points and
  records an :class:`EscapeRecord` — with a short in-repo stack —
  every time a *tagged* value reaches one;
* :func:`unknown_escapes` compares the observed escapes against the
  statically-known declassification inventory (R8's artifact): the
  acceptance bar is **zero** escapes whose stack contains no
  statically-known declassification site.

Debug/tests only: nothing in ``repro`` imports this module at runtime.
Typical wiring (see ``tests/test_lint_flow_runtime.py``)::

    monitor = TaintMonitor()
    reader = TaintedColumnReader(ColumnReader(enclave, store), monitor)
    restore = monitor.instrument(GenDPREnclave, "lead_release_statistics",
                                 sink="release")
    … run the workload …
    restore()
    assert not unknown_escapes(monitor.escapes(), inventory)
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import PurePath
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

#: Frames of in-repo stack kept per escape record.
_STACK_DEPTH = 12


@dataclass(frozen=True)
class TaintTag:
    """Provenance label attached to a runtime value."""

    kinds: FrozenSet[str]
    origin: str

    def merged(self, other: Optional["TaintTag"]) -> "TaintTag":
        if other is None:
            return self
        return TaintTag(
            kinds=self.kinds | other.kinds,
            origin=self.origin if self.origin else other.origin,
        )


class TaintedArray(np.ndarray):
    """An ndarray whose taint tag survives views, slices and ufuncs."""

    _taint: Optional[TaintTag]

    def __array_finalize__(self, obj: Any) -> None:
        self._taint = getattr(obj, "_taint", None)

    def __array_wrap__(self, out_arr, context=None, return_scalar=False):
        result = super().__array_wrap__(out_arr, context, return_scalar)
        if isinstance(result, TaintedArray) and result._taint is None:
            result._taint = self._taint
        return result


def taint_array(
    array: np.ndarray, kinds: Iterable[str], origin: str
) -> TaintedArray:
    """Tag ``array`` (as a view — no copy) with the given taint kinds."""
    view = np.asarray(array).view(TaintedArray)
    view._taint = TaintTag(kinds=frozenset(kinds), origin=origin)
    return view


def taint_of(value: Any) -> FrozenSet[str]:
    """The taint kinds carried by ``value``, recursing into containers."""
    tag = getattr(value, "_taint", None)
    if isinstance(tag, TaintTag):
        return tag.kinds
    if isinstance(value, Mapping):
        kinds: FrozenSet[str] = frozenset()
        for item in value.values():
            kinds |= taint_of(item)
        return kinds
    if isinstance(value, (list, tuple, set, frozenset)):
        kinds = frozenset()
        for item in value:
            kinds |= taint_of(item)
        return kinds
    return frozenset()


@dataclass(frozen=True)
class EscapeRecord:
    """One observed flow of tagged data into an instrumented sink."""

    sink: str
    kinds: FrozenSet[str]
    origin: str
    #: In-repo call stack, innermost first: (filename, line, function).
    stack: Tuple[Tuple[str, int, str], ...]


def _capture_stack(package_root: str) -> Tuple[Tuple[str, int, str], ...]:
    """In-repo frames above the probe, innermost first."""
    frames: List[Tuple[str, int, str]] = []
    frame = sys._getframe(2)
    while frame is not None and len(frames) < _STACK_DEPTH:
        code = frame.f_code
        filename = code.co_filename
        if package_root in filename.replace("\\", "/"):
            qualname = getattr(code, "co_qualname", code.co_name)
            frames.append((filename, frame.f_lineno, qualname))
        frame = frame.f_back
    return tuple(frames)


class TaintMonitor:
    """Records every tagged value reaching an instrumented sink."""

    def __init__(self, package_root: str = "repro") -> None:
        self._package_root = package_root
        self._escapes: List[EscapeRecord] = []
        self._probes: Dict[str, int] = {}

    # -- probing -------------------------------------------------------------

    def probe(self, sink: str, *values: Any) -> None:
        """Record an escape if any of ``values`` carries a taint tag."""
        self._probes[sink] = self._probes.get(sink, 0) + 1
        kinds: FrozenSet[str] = frozenset()
        origin = ""
        for value in values:
            tag = getattr(value, "_taint", None)
            if isinstance(tag, TaintTag):
                kinds |= tag.kinds
                origin = origin or tag.origin
            else:
                kinds |= taint_of(value)
        if kinds:
            self._escapes.append(
                EscapeRecord(
                    sink=sink,
                    kinds=kinds,
                    origin=origin,
                    stack=_capture_stack(self._package_root),
                )
            )

    def instrument(
        self, owner: Any, method: str, sink: Optional[str] = None
    ) -> Callable[[], None]:
        """Wrap ``owner.method`` with a probe; returns an undo callable."""
        original = getattr(owner, method)
        label = sink or method
        monitor = self

        def wrapped(*args: Any, **kwargs: Any) -> Any:
            monitor.probe(label, *args, *kwargs.values())
            return original(*args, **kwargs)

        setattr(owner, method, wrapped)

        def restore() -> None:
            setattr(owner, method, original)

        return restore

    # -- results -------------------------------------------------------------

    def escapes(self) -> List[EscapeRecord]:
        return list(self._escapes)

    def probe_counts(self) -> Dict[str, int]:
        return dict(self._probes)

    def reset(self) -> None:
        self._escapes.clear()
        self._probes.clear()


class TaintedColumnReader:
    """Source-tagging wrapper over :class:`~repro.tee.storage.ColumnReader`.

    Every array leaving sealed storage through the wrapped reader is
    tagged ``genotype`` (plus ``sealed``, since the bytes came out of
    an unseal), so any route to an instrumented sink is observable.
    """

    KINDS: Tuple[str, ...] = ("genotype", "sealed")

    def __init__(self, reader: Any, monitor: Optional[TaintMonitor] = None):
        self._reader = reader
        self._monitor = monitor
        self._origin = f"ColumnReader[{getattr(reader, '_store', None) and reader._store.label or '?'}]"

    def _tag(self, array: np.ndarray) -> TaintedArray:
        return taint_array(array, self.KINDS, self._origin)

    # The ColumnReader API surface the repo uses.

    @property
    def num_rows(self) -> int:
        return self._reader.num_rows

    @property
    def num_cols(self) -> int:
        return self._reader.num_cols

    def column(self, index: int) -> TaintedArray:
        return self._tag(self._reader.column(index))

    def columns(self, indices: Sequence[int]) -> TaintedArray:
        return self._tag(self._reader.columns(indices))

    def column_sums(self, *args: Any, **kwargs: Any) -> TaintedArray:
        return self._tag(self._reader.column_sums(*args, **kwargs))

    def iter_chunks(self) -> Iterator[Tuple[int, TaintedArray]]:
        for start, chunk in self._reader.iter_chunks():
            yield start, self._tag(chunk)

    def close(self) -> None:
        self._reader.close()

    def __enter__(self) -> "TaintedColumnReader":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._reader, name)


def _site_key(path: str, line: int) -> Tuple[str, int]:
    return (PurePath(path.replace("\\", "/")).name, line)


def unknown_escapes(
    escapes: Iterable[EscapeRecord],
    inventory: Iterable[Mapping[str, Any]],
) -> List[EscapeRecord]:
    """Escapes whose stacks contain no statically-known declass site.

    ``inventory`` is R8's ``declassifications`` artifact (or any list
    of mappings with ``path`` and ``line`` keys).  An escape is
    *known* when some frame of its in-repo stack sits on a
    statically-inventoried declassification call site; everything else
    is a flow the static analysis failed to predict and must be
    treated as a regression.
    """
    known = {
        _site_key(str(entry["path"]), int(entry["line"]))
        for entry in inventory
        if entry.get("path") is not None and entry.get("line") is not None
    }
    unknown: List[EscapeRecord] = []
    for escape in escapes:
        if any(
            _site_key(filename, line) in known
            for filename, line, _ in escape.stack
        ):
            continue
        unknown.append(escape)
    return unknown
