"""One code path for provisioning a study's federation.

:class:`ProvisionedFederation` is the context manager behind every way
a study gets run — the one-shot :func:`~repro.core.protocol.run_study`
API, the CLI's ``run`` command, and the long-lived service
(:mod:`repro.serve`), which binds studies to warm substrates instead of
provisioning from scratch.  Centralizing the block here means the
validation, partitioning, tracer activation and teardown semantics can
never drift apart between entry points.
"""

from __future__ import annotations

import sys
from typing import Optional

from ..config import StudyConfig
from ..errors import ProtocolError
from ..genomics.partition import partition_cohort
from ..genomics.population import Cohort
from ..net import SimulatedNetwork
from ..obs import SpanCollector
from ..obs.tracer import TRACER
from .federation import (
    Federation,
    FederationSubstrate,
    bind_study,
    build_federation,
)
from .phases import StudyResult
from .protocol import GenDPRProtocol


class ProvisionedFederation:
    """Owns one study's federation and protocol for the span of a run.

    ``__enter__`` validates the config against the cohort, partitions
    the case population, provisions a fresh federation (or binds the
    study to a warm ``substrate``), and exposes ``.federation`` and
    ``.protocol``.  ``__exit__`` releases the protocol's thread pool
    and deactivates the tracer scope it opened.

    When observability is enabled and no collector is active yet, a
    collector is activated *around provisioning too*, so leader
    election and attestation land in the same trace as the phases
    (:meth:`GenDPRProtocol.run` joins the active collector).

    Args:
        cohort: full study cohort (cases + reference panel).
        config: study parameters.
        num_members: federation size to partition the cases across.
        network: optional pre-configured router (fresh provisioning
            only).
        shuffle_seed: optional cohort shuffle before partitioning.
        substrate: optional warm
            :class:`~repro.core.federation.FederationSubstrate` to bind
            instead of provisioning; mutually exclusive with
            ``network``.
    """

    def __init__(
        self,
        cohort: Cohort,
        config: StudyConfig,
        num_members: int,
        *,
        network: Optional[SimulatedNetwork] = None,
        shuffle_seed: Optional[int] = None,
        substrate: Optional[FederationSubstrate] = None,
    ):
        if config.snp_count != cohort.num_snps:
            raise ProtocolError(
                f"config covers {config.snp_count} SNPs, cohort has "
                f"{cohort.num_snps}"
            )
        if substrate is not None and network is not None:
            raise ProtocolError(
                "a warm substrate already carries its network"
            )
        if substrate is not None and num_members != len(substrate.member_ids):
            raise ProtocolError(
                f"study wants {num_members} members, substrate has "
                f"{len(substrate.member_ids)}"
            )
        self._cohort = cohort
        self._config = config
        self._num_members = num_members
        self._network = network
        self._shuffle_seed = shuffle_seed
        self._substrate = substrate
        self._tracer_scope = None
        self.federation: Optional[Federation] = None
        self.protocol: Optional[GenDPRProtocol] = None

    def __enter__(self) -> "ProvisionedFederation":
        datasets = partition_cohort(
            self._cohort, self._num_members, shuffle_seed=self._shuffle_seed
        )
        obs_config = self._config.observability
        if obs_config.enabled and not TRACER.enabled:
            collector = SpanCollector(max_spans=obs_config.max_spans)
            self._tracer_scope = TRACER.activated(
                collector, capture_messages=obs_config.capture_messages
            )
            self._tracer_scope.__enter__()
        try:
            if self._substrate is not None:
                self.federation = bind_study(
                    self._substrate, self._config, datasets, self._cohort
                )
            else:
                self.federation = build_federation(
                    self._config, datasets, self._cohort, network=self._network
                )
            self.protocol = GenDPRProtocol(self.federation)
        except BaseException:
            self._close_tracer(*sys.exc_info())
            raise
        return self

    def run(self) -> StudyResult:
        """Execute the study on the provisioned federation."""
        if self.protocol is None:
            raise ProtocolError(
                "ProvisionedFederation must be entered before running"
            )
        return self.protocol.run()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.protocol is not None:
            self.protocol.close()
        self._close_tracer(exc_type, exc, tb)
        return False

    def _close_tracer(self, exc_type, exc, tb) -> None:
        if self._tracer_scope is not None:
            self._tracer_scope.__exit__(exc_type, exc, tb)
            self._tracer_scope = None
