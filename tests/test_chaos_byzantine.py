"""Byzantine chaos tier: adversarial fault-plan sweep with integrity on.

Where ``test_chaos.py`` sweeps *crash-style* faults (drop, duplicate,
delay, corrupt, crash, partition), this tier arms the *Byzantine*
actions — REPLAY, WITHHOLD, EQUIVOCATE and sealed-checkpoint tampering
— against a federation running with integrity verification enabled
(broadcast-consistency echo, channel-transcript cross-checks and
checkpoint freshness; see ``docs/RESILIENCE.md``).

The verdict contract is the same as the crash tier, but strictly
harder: every run must either complete with release decisions
**bit-identical** to the fault-free reference of its (mode, collusion)
cell, or abort with a *classified* integrity error — and every
detection must increment its ``integrity.*`` counter.

Set ``CHAOS_REPORT_PATH`` to write the per-run report and
``CHAOS_INTEGRITY_PATH`` to write the aggregated integrity counters;
the CI ``chaos`` job uploads both as artifacts.  Any failure
reproduces locally from its seed alone.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest

from repro import StudyConfig, generate_cohort, partition_cohort
from repro.config import (
    CollusionPolicy,
    ExecutionConfig,
    FaultConfig,
    IntegrityConfig,
    ResilienceConfig,
)
from repro.core.federation import build_federation
from repro.core.integrity import COUNTER_NAMES
from repro.core.leader import elect_leader
from repro.core.protocol import GenDPRProtocol
from repro.errors import IntegrityError, ReproError, SealingError
from repro.genomics import SyntheticSpec

MEMBERS = 3
STUDY_ID = "byzantine-sweep"
STUDY_SEED = 5

#: The sweep: 18 seeded adversarial plans (the issue floor is 16).
#: Mode and collusion derive from the seed so the grid covers
#: {sequential, parallel} × {f=0, f=1}.
BYZANTINE_SEEDS = list(range(101, 119))
#: Seeds whose plan arms broadcast equivocation.
EQUIVOCATE_SEEDS = {s for s in BYZANTINE_SEEDS if s % 3 == 0}
#: Seeds whose plan serves a *stale* checkpoint at failover.
STALE_SEEDS = {s for s in BYZANTINE_SEEDS if s % 5 == 0 and s % 7 != 0}
#: Seeds whose plan serves a bit-flipped checkpoint at failover.
CORRUPT_SEEDS = {s for s in BYZANTINE_SEEDS if s % 7 == 0}
#: Subset of the sweep re-run sharded (per shard count in SHARD_AXIS).
#: Hand-picked for both modes, both collusion settings, broadcast
#: equivocators (102, 105, 108, 111) and corrupt-checkpoint tamperers
#: (105, 112).
SHARDED_SEEDS = [101, 102, 105, 108, 111, 112]
SHARD_AXIS = (2, 4)
#: Sharded seeds whose plan also arms combine-frame falsification on
#: one member — interior-node equivocation against the tree rounds.
SHARD_FLIP_SEEDS = {101, 108, 111}

_collected_runs = []
_aggregate_counters = {name: 0 for name in COUNTER_NAMES}


def _mode(seed: int) -> str:
    return "parallel" if seed % 2 else "sequential"


def _f(seed: int) -> int:
    return 1 if seed % 4 >= 2 else 0


def _leader_id() -> str:
    return elect_leader(
        [f"gdo-{i}" for i in range(MEMBERS)], STUDY_SEED, STUDY_ID
    )


def _fault_config(seed: int) -> FaultConfig:
    tamper = (
        "corrupt"
        if seed in CORRUPT_SEEDS
        else "stale"
        if seed in STALE_SEEDS
        else ""
    )
    return FaultConfig.byzantine(
        seed,
        intensity=0.1,
        equivocate_rate=0.35 if seed in EQUIVOCATE_SEEDS else 0.0,
        checkpoint_tamper=tamper,
        # Tampered restores only happen at a failover, so tamper plans
        # also crash the leader once mid-study to force one.  Ecall 5
        # (lead_run_maf, with integrity on) sits just past the *second*
        # checkpoint, so a "stale" plan's rolled-back blob really is
        # older than the platform counter at restore time.
        crash_points=((_leader_id(), 5),) if tamper else (),
    )


@pytest.fixture(scope="module")
def chaos_cohort():
    cohort, _ = generate_cohort(
        SyntheticSpec(num_snps=80, num_case=120, num_control=100, seed=5)
    )
    return cohort


def _base_config(seed: int) -> StudyConfig:
    return StudyConfig(
        snp_count=80,
        study_id=STUDY_ID,
        seed=STUDY_SEED,
        execution=ExecutionConfig(mode=_mode(seed)),
        collusion=(
            CollusionPolicy.static(_f(seed))
            if _f(seed)
            else CollusionPolicy.none()
        ),
    )


@pytest.fixture(scope="module")
def references(chaos_cohort):
    """Fault-free reference outcomes per (mode, f) cell.

    Computed with integrity *and* resilience disabled — so the sweep
    simultaneously validates that the verification rounds change no
    release decision.
    """
    refs = {}
    for mode in ("sequential", "parallel"):
        for f in (0, 1):
            config = StudyConfig(
                snp_count=80,
                study_id=STUDY_ID,
                seed=STUDY_SEED,
                execution=ExecutionConfig(mode=mode),
                collusion=(
                    CollusionPolicy.static(f) if f else CollusionPolicy.none()
                ),
            )
            federation = build_federation(
                config, partition_cohort(chaos_cohort, MEMBERS), chaos_cohort
            )
            refs[(mode, f)] = GenDPRProtocol(federation).run()
    return refs


@pytest.fixture(scope="module", autouse=True)
def byzantine_report():
    """Write the tier's reports if the artifact paths are configured."""
    yield
    if not _collected_runs:
        return
    report_path = os.environ.get("CHAOS_REPORT_PATH")
    if report_path:
        completed = sum(
            1 for r in _collected_runs if r["outcome"] == "completed"
        )
        payload = {
            "study_id": STUDY_ID,
            "members": MEMBERS,
            "runs": list(_collected_runs),
            "summary": {
                "total": len(_collected_runs),
                "completed_identical": completed,
                "classified_aborts": len(_collected_runs) - completed,
            },
        }
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    integrity_path = os.environ.get("CHAOS_INTEGRITY_PATH")
    if integrity_path:
        payload = {
            "study_id": STUDY_ID,
            "runs": len(_collected_runs),
            "integrity_counters": dict(_aggregate_counters),
        }
        with open(integrity_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")


@pytest.mark.parametrize("seed", BYZANTINE_SEEDS)
def test_byzantine_run_is_identical_or_classified(
    seed, chaos_cohort, references
):
    config = dataclasses.replace(
        _base_config(seed),
        faults=_fault_config(seed),
        integrity=IntegrityConfig.on(),
        resilience=ResilienceConfig.supervised(
            max_attempts=6, max_failovers=3
        ),
    )
    reference = references[(_mode(seed), _f(seed))]
    federation = build_federation(
        config, partition_cohort(chaos_cohort, MEMBERS), chaos_cohort
    )
    record = {
        "seed": seed,
        "mode": _mode(seed),
        "f": _f(seed),
        "plan": federation.fault_injector.plan.describe(),
    }
    try:
        result = GenDPRProtocol(federation).run()
    except ReproError as exc:
        # An abort under an armed adversary must be *classified*: a
        # detected violation (IntegrityError), a rejected tampered
        # restore (SealingError), or a typed resilience abort — all
        # ReproError subclasses, never a bare crash or a hang.
        record["outcome"] = "classified_abort"
        record["error"] = type(exc).__name__
        if isinstance(exc, (IntegrityError, SealingError)):
            # The typed abort must have been counted at its
            # detection site.
            assert federation.integrity_monitor.detections >= 1
    else:
        assert result.l_prime == reference.l_prime
        assert result.l_double_prime == reference.l_double_prime
        assert result.l_safe == reference.l_safe
        record["outcome"] = "completed"
        record["failovers"] = federation.failovers
        injected = federation.fault_injector.counters()
        if injected["equivocations"]:
            # A completed run that absorbed an equivocation must have
            # detected (and recovered from) every occurrence.
            assert (
                federation.integrity_monitor.counters()[
                    "equivocations_detected"
                ]
                >= 1
            )
    finally:
        record["injected"] = federation.fault_injector.counters()
        record["integrity"] = federation.integrity_monitor.counters()
        for name, value in record["integrity"].items():
            _aggregate_counters[name] += value
        _collected_runs.append(record)


def _sharded_fault_config(seed: int) -> FaultConfig:
    """The seed's Byzantine plan, plus combine-frame falsification.

    Shard-flip seeds arm the interior-node attack the shard commitment
    verification exists to catch: a member's compromised module emits
    in-bounds falsified leaf partials into the tree.
    """
    member = next(
        m for m in (f"gdo-{i}" for i in range(MEMBERS)) if m != _leader_id()
    )
    return dataclasses.replace(
        _fault_config(seed),
        shard_flip_rate=0.35 if seed in SHARD_FLIP_SEEDS else 0.0,
        shard_flip_target=member if seed in SHARD_FLIP_SEEDS else "",
    )


@pytest.mark.parametrize("shards", SHARD_AXIS)
@pytest.mark.parametrize("seed", SHARDED_SEEDS)
def test_sharded_byzantine_run_is_identical_or_classified(
    seed, shards, chaos_cohort, references
):
    """The Byzantine invariant survives composition with sharding.

    Tree rounds now carry the combine traffic under an armed
    adversary — including, on the shard-flip seeds, a member
    falsifying its own leaf partials.  Every run completes
    bit-identical to the unsharded fault-free reference or aborts
    classified, and every absorbed falsification was detected.
    """
    from repro.config import ShardingConfig

    config = dataclasses.replace(
        _base_config(seed),
        faults=_sharded_fault_config(seed),
        sharding=ShardingConfig.over(shards),
        integrity=IntegrityConfig.on(),
        resilience=ResilienceConfig.supervised(
            max_attempts=6, max_failovers=3
        ),
    )
    reference = references[(_mode(seed), _f(seed))]
    federation = build_federation(
        config, partition_cohort(chaos_cohort, MEMBERS), chaos_cohort
    )
    record = {
        "seed": seed,
        "shards": shards,
        "mode": _mode(seed),
        "f": _f(seed),
        "plan": federation.fault_injector.plan.describe(),
    }
    try:
        result = GenDPRProtocol(federation).run()
    except ReproError as exc:
        record["outcome"] = "classified_abort"
        record["error"] = type(exc).__name__
        if isinstance(exc, (IntegrityError, SealingError)):
            assert federation.integrity_monitor.detections >= 1
    else:
        assert result.l_prime == reference.l_prime
        assert result.l_double_prime == reference.l_double_prime
        assert result.l_safe == reference.l_safe
        record["outcome"] = "completed"
        record["failovers"] = federation.failovers
        record["member_restorations"] = federation.member_restorations
        injected = federation.fault_injector.counters()
        if injected["shard_equivocations"]:
            # A completed run that absorbed a falsified partial must
            # have detected it and repaired around the liar.
            monitor = federation.integrity_monitor.counters()
            assert monitor["equivocations_detected"] >= 1
            assert federation.member_restorations >= 1
    finally:
        record["injected"] = federation.fault_injector.counters()
        record["integrity"] = federation.integrity_monitor.counters()
        for name, value in record["integrity"].items():
            _aggregate_counters[name] += value
        _collected_runs.append(record)


def test_sharded_sweep_armed_the_interior_node_attack():
    """At least one sharded run absorbed or aborted on a shard flip."""
    sharded = [r for r in _collected_runs if "shards" in r]
    assert len(sharded) == len(SHARDED_SEEDS) * len(SHARD_AXIS)
    assert any(
        r["injected"].get("shard_equivocations", 0) >= 1 for r in sharded
    )


def test_sweep_covers_modes_collusion_and_adversaries():
    cells = {(_mode(s), _f(s)) for s in BYZANTINE_SEEDS}
    assert cells == {
        ("sequential", 0),
        ("sequential", 1),
        ("parallel", 0),
        ("parallel", 1),
    }
    assert len(BYZANTINE_SEEDS) >= 16
    assert EQUIVOCATE_SEEDS and STALE_SEEDS and CORRUPT_SEEDS
    # The sharded subset keeps the spread and adds the interior-node
    # attack on top of the broadcast/checkpoint adversaries.
    assert {_mode(s) for s in SHARDED_SEEDS} == {"sequential", "parallel"}
    assert {_f(s) for s in SHARDED_SEEDS} == {0, 1}
    assert set(SHARDED_SEEDS) & EQUIVOCATE_SEEDS
    assert set(SHARDED_SEEDS) & CORRUPT_SEEDS
    assert SHARD_FLIP_SEEDS <= set(SHARDED_SEEDS)
    assert len(SHARD_AXIS) >= 2


def test_tier_exercises_every_detection_path():
    """Across the tier, each key integrity metric fired at least once.

    Runs after the parametrized sweep (pytest executes tests in
    definition order within a module), so the aggregate is complete.
    """
    assert len(_collected_runs) == len(BYZANTINE_SEEDS) + len(
        SHARDED_SEEDS
    ) * len(SHARD_AXIS)
    assert _aggregate_counters["equivocations_detected"] >= 1
    assert _aggregate_counters["stale_checkpoints_rejected"] >= 1
    assert _aggregate_counters["sealed_restore_failures"] >= 1
    assert _aggregate_counters["quarantines"] >= 1


def test_byzantine_replay_is_deterministic(chaos_cohort, references):
    """The same seed reproduces the same adversary, bit for bit."""
    seed = 105  # corrupt-checkpoint + equivocation: heaviest machinery
    observed = []
    for _ in range(2):
        config = dataclasses.replace(
            _base_config(seed),
            faults=_fault_config(seed),
            integrity=IntegrityConfig.on(),
            resilience=ResilienceConfig.supervised(
                max_attempts=6, max_failovers=3
            ),
        )
        federation = build_federation(
            config, partition_cohort(chaos_cohort, MEMBERS), chaos_cohort
        )
        try:
            GenDPRProtocol(federation).run()
            outcome = "completed"
        except ReproError as exc:
            outcome = type(exc).__name__
        observed.append(
            (
                outcome,
                federation.fault_injector.counters(),
                federation.integrity_monitor.counters(),
            )
        )
    assert observed[0] == observed[1]
