"""Genotype matrices.

The paper encodes each genome over ``L`` SNPs as a binary vector: 0 when
only the major allele is present, 1 when the minor allele is (Table 1).
:class:`GenotypeMatrix` stores a population as an ``N x L`` ``uint8``
numpy array under that encoding and offers the aggregate views the
protocol phases consume — allele counts, pairwise moments — plus the
row/column slicing used to partition cohorts across federation members.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from ..errors import GenomicsError


class GenotypeMatrix:
    """An immutable ``N x L`` binary genotype matrix."""

    def __init__(self, data: np.ndarray):
        array = np.asarray(data)
        if array.ndim != 2:
            raise GenomicsError(
                f"genotype data must be 2-dimensional, got {array.ndim}"
            )
        if array.dtype != np.uint8:
            if not np.issubdtype(array.dtype, np.integer):
                raise GenomicsError("genotype data must be integer-typed")
            array = array.astype(np.uint8)
        if array.size and array.max(initial=0) > 1:
            raise GenomicsError("genotypes must be binary (0 or 1)")
        self._data = array.copy()
        self._data.setflags(write=False)

    # -- Shape -------------------------------------------------------------------

    @property
    def num_individuals(self) -> int:
        return self._data.shape[0]

    @property
    def num_snps(self) -> int:
        return self._data.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        return self._data.shape

    @property
    def nbytes(self) -> int:
        """Raw storage footprint (1 byte per genotype)."""
        return self._data.nbytes

    def __len__(self) -> int:
        return self.num_individuals

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GenotypeMatrix):
            return NotImplemented
        return self._data.shape == other._data.shape and bool(
            np.array_equal(self._data, other._data)
        )

    def __hash__(self) -> int:  # immutable, so hashing by content is sound
        return hash((self._data.shape, self._data.tobytes()))

    # -- Raw access ----------------------------------------------------------------

    def array(self) -> np.ndarray:
        """Read-only view of the underlying array."""
        return self._data

    def row(self, index: int) -> np.ndarray:
        """One individual's genotype vector (read-only view)."""
        return self._data[index]

    # -- Aggregates consumed by the protocol phases --------------------------------

    def allele_counts(self, snp_indices: Sequence[int] | None = None) -> np.ndarray:
        """Minor-allele counts per SNP (the ``caseLocalCounts`` vector).

        Returned as ``int64`` so sums across federation members cannot
        overflow.
        """
        data = self._data if snp_indices is None else self._data[:, snp_indices]
        return data.sum(axis=0, dtype=np.int64)

    def pair_moments(self, left: int, right: int) -> Tuple[int, int, int, int, int]:
        """The five correlation sums GenDPR's Phase 2 exchanges for a pair.

        Returns ``(mu_l, mu_r, mu_lr, mu_l2, mu_r2)`` — for binary data
        ``mu_l2 == mu_l``, but all five are produced (and transmitted)
        exactly as in the paper's protocol.
        """
        col_left = self._data[:, left].astype(np.int64)
        col_right = self._data[:, right].astype(np.int64)
        return (
            int(col_left.sum()),
            int(col_right.sum()),
            int((col_left * col_right).sum()),
            int((col_left * col_left).sum()),
            int((col_right * col_right).sum()),
        )

    def pair_moments_batch(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> np.ndarray:
        """Vectorised :meth:`pair_moments` for many pairs.

        Returns an ``len(pairs) x 5`` int64 array, one row per pair in
        input order.
        """
        if not pairs:
            return np.zeros((0, 5), dtype=np.int64)
        lefts = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
        rights = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
        left_cols = self._data[:, lefts].astype(np.int64)
        right_cols = self._data[:, rights].astype(np.int64)
        out = np.empty((len(pairs), 5), dtype=np.int64)
        out[:, 0] = left_cols.sum(axis=0)
        out[:, 1] = right_cols.sum(axis=0)
        out[:, 2] = (left_cols * right_cols).sum(axis=0)
        out[:, 3] = out[:, 0]  # x^2 == x for binary genotypes
        out[:, 4] = out[:, 1]
        return out

    # -- Slicing ----------------------------------------------------------------

    def select_snps(self, snp_indices: Sequence[int]) -> "GenotypeMatrix":
        """Column subset (new matrix over the given SNP indices)."""
        indices = np.asarray(list(snp_indices), dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_snps):
            raise GenomicsError("SNP index out of range")
        return GenotypeMatrix(self._data[:, indices])

    def select_individuals(self, rows: Sequence[int]) -> "GenotypeMatrix":
        """Row subset (new matrix over the given individuals)."""
        indices = np.asarray(list(rows), dtype=np.int64)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self.num_individuals
        ):
            raise GenomicsError("individual index out of range")
        return GenotypeMatrix(self._data[indices, :])

    def split_rows(self, sizes: Sequence[int]) -> Tuple["GenotypeMatrix", ...]:
        """Split individuals into consecutive groups of the given sizes."""
        if sum(sizes) != self.num_individuals:
            raise GenomicsError(
                f"split sizes sum to {sum(sizes)}, expected {self.num_individuals}"
            )
        if any(size < 0 for size in sizes):
            raise GenomicsError("split sizes must be non-negative")
        parts = []
        offset = 0
        for size in sizes:
            parts.append(GenotypeMatrix(self._data[offset : offset + size]))
            offset += size
        return tuple(parts)

    @classmethod
    def vstack(cls, parts: Iterable["GenotypeMatrix"]) -> "GenotypeMatrix":
        """Concatenate populations (inverse of :meth:`split_rows`)."""
        arrays = [part.array() for part in parts]
        if not arrays:
            raise GenomicsError("cannot stack zero matrices")
        widths = {a.shape[1] for a in arrays}
        if len(widths) != 1:
            raise GenomicsError("matrices cover different SNP panels")
        return cls(np.vstack(arrays))

    # -- Serialization helpers ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Packed row-major byte string (1 byte per genotype)."""
        return self._data.tobytes()

    @classmethod
    def from_bytes(cls, raw: bytes, num_snps: int) -> "GenotypeMatrix":
        if num_snps <= 0:
            raise GenomicsError("num_snps must be positive")
        if len(raw) % num_snps:
            raise GenomicsError("byte length is not a multiple of num_snps")
        array = np.frombuffer(raw, dtype=np.uint8).reshape(-1, num_snps)
        return cls(array)
