"""Synthetic cohort generation.

The paper evaluates on 27,895 real genomes from dbGaP study
phs001039.v1.p1, which is access-controlled and cannot ship with an open
reproduction.  This generator produces cohorts that exercise the same
code paths with the same statistical features the three verification
phases react to:

* a **realistic MAF spectrum** — per-SNP base frequencies drawn from a
  Beta distribution skewed toward rare alleles, so Phase 1 removes a
  substantial, size-dependent share of SNPs;
* **LD-block structure** — a haplotype-copying model in which each SNP
  starts a new block with probability ``1/ld_block_mean_length`` and
  otherwise copies the previous SNP's allele per-individual with
  probability ``ld_copy_prob``, giving the adjacent-pair correlation
  Phase 2 prunes;
* **case/reference divergence** — case allele frequencies drift from the
  reference by per-SNP Gaussian noise plus planted effects at a
  configurable fraction of "associated" SNPs, so the LR-test has a
  genuine leakage signal to bound and the chi-squared ranking is
  non-trivial.

The generator is deterministic in its seed (PCG64), so every experiment
in EXPERIMENTS.md is replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..errors import GenomicsError
from .genotype import GenotypeMatrix
from .population import Cohort
from .snp import SnpPanel

_FREQ_FLOOR = 1e-3


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of a synthetic cohort.

    Defaults are tuned so that, at paper-like cohort sizes, Phase 1
    retains roughly half the panel, Phase 2 prunes most of each LD block
    and Phase 3 rejects a visible minority of the survivors — the
    qualitative shape of the paper's Table 4.
    """

    num_snps: int
    num_case: int
    num_control: int
    maf_alpha: float = 0.35
    maf_beta: float = 2.0
    ld_block_mean_length: float = 12.0
    ld_copy_prob: float = 0.85
    case_drift_sd: float = 0.085
    associated_fraction: float = 0.02
    effect_size: float = 0.04
    num_sites: int = 1
    site_effect_sd: float = 0.0
    seed: int = 7

    def __post_init__(self) -> None:
        if min(self.num_snps, self.num_case, self.num_control) <= 0:
            raise GenomicsError("population and panel sizes must be positive")
        if not 0 < self.ld_copy_prob < 1:
            raise GenomicsError("ld_copy_prob must be in (0, 1)")
        if self.ld_block_mean_length < 1:
            raise GenomicsError("ld_block_mean_length must be >= 1")
        if not 0 <= self.associated_fraction <= 1:
            raise GenomicsError("associated_fraction must be in [0, 1]")
        if self.case_drift_sd < 0 or self.effect_size < 0:
            raise GenomicsError("drift and effect sizes must be non-negative")
        if self.num_sites < 1:
            raise GenomicsError("num_sites must be at least 1")
        if self.num_sites > self.num_case:
            raise GenomicsError("cannot have more sites than case genomes")
        if self.site_effect_sd < 0:
            raise GenomicsError("site_effect_sd must be non-negative")


@dataclass(frozen=True)
class SyntheticTruth:
    """Ground truth retained for tests and attack evaluation."""

    base_frequencies: np.ndarray = field(repr=False)
    case_frequencies: np.ndarray = field(repr=False)
    block_starts: np.ndarray = field(repr=False)
    associated_snps: Tuple[int, ...] = ()
    #: Row ranges (start, stop) of each collection site in the case matrix.
    site_ranges: Tuple[Tuple[int, int], ...] = ()


def _draw_base_frequencies(
    rng: np.random.Generator, spec: SyntheticSpec
) -> np.ndarray:
    freqs = rng.beta(spec.maf_alpha, spec.maf_beta, size=spec.num_snps) * 0.5
    return np.clip(freqs, _FREQ_FLOOR, 0.5)


def _draw_block_starts(
    rng: np.random.Generator, spec: SyntheticSpec
) -> np.ndarray:
    starts = rng.random(spec.num_snps) < 1.0 / spec.ld_block_mean_length
    starts[0] = True
    return starts


def _sample_population(
    rng: np.random.Generator,
    frequencies: np.ndarray,
    block_starts: np.ndarray,
    num_individuals: int,
    copy_prob: float,
) -> GenotypeMatrix:
    """Sample genotypes column by column under the copying model."""
    num_snps = frequencies.shape[0]
    data = np.empty((num_individuals, num_snps), dtype=np.uint8)
    for snp in range(num_snps):
        fresh = rng.random(num_individuals) < frequencies[snp]
        if block_starts[snp]:
            column = fresh
        else:
            copy_mask = rng.random(num_individuals) < copy_prob
            column = np.where(copy_mask, data[:, snp - 1].astype(bool), fresh)
        data[:, snp] = column
    return GenotypeMatrix(data)


def _case_frequencies(
    rng: np.random.Generator, spec: SyntheticSpec, base: np.ndarray
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    drift = rng.normal(0.0, spec.case_drift_sd, size=spec.num_snps)
    case_freqs = base + drift
    num_associated = int(round(spec.associated_fraction * spec.num_snps))
    associated = tuple(
        sorted(
            int(i)
            for i in rng.choice(spec.num_snps, size=num_associated, replace=False)
        )
    )
    if associated:
        signs = rng.choice((-1.0, 1.0), size=len(associated))
        case_freqs[list(associated)] += signs * spec.effect_size
    return np.clip(case_freqs, _FREQ_FLOOR, 1 - _FREQ_FLOOR), associated


def _site_sizes(num_case: int, num_sites: int) -> list:
    base, extra = divmod(num_case, num_sites)
    return [base + (1 if i < extra else 0) for i in range(num_sites)]


def generate_cohort(spec: SyntheticSpec) -> Tuple[Cohort, SyntheticTruth]:
    """Generate a deterministic synthetic cohort.

    The case population is drawn from ``num_sites`` collection sites
    occupying consecutive row ranges; each site's allele frequencies
    deviate from the cohort-wide case frequencies by a per-SNP Gaussian
    "site effect" of scale ``site_effect_sd``, modelling the population
    stratification a federation of geographically distant biocenters
    exhibits.  Site effects are what make sub-federations (the data a
    colluding coalition can isolate) statistically more identifiable
    than the full pool — the phenomenon GenDPR's collusion analysis
    withholds SNPs over.

    Returns the cohort (control doubles as reference, matching the
    paper's setting) plus the generating ground truth.
    """
    rng = np.random.Generator(np.random.PCG64(spec.seed))
    base = _draw_base_frequencies(rng, spec)
    blocks = _draw_block_starts(rng, spec)
    case_freqs, associated = _case_frequencies(rng, spec, base)

    site_parts = []
    site_ranges = []
    offset = 0
    for site_size in _site_sizes(spec.num_case, spec.num_sites):
        if spec.site_effect_sd > 0:
            site_freqs = np.clip(
                case_freqs
                + rng.normal(0.0, spec.site_effect_sd, size=spec.num_snps),
                _FREQ_FLOOR,
                1 - _FREQ_FLOOR,
            )
        else:
            site_freqs = case_freqs
        site_parts.append(
            _sample_population(rng, site_freqs, blocks, site_size, spec.ld_copy_prob)
        )
        site_ranges.append((offset, offset + site_size))
        offset += site_size
    case = (
        site_parts[0]
        if len(site_parts) == 1
        else GenotypeMatrix.vstack(site_parts)
    )
    control = _sample_population(
        rng, base, blocks, spec.num_control, spec.ld_copy_prob
    )
    panel = SnpPanel.synthetic(spec.num_snps)
    cohort = Cohort.control_as_reference(panel, case, control)
    truth = SyntheticTruth(
        base_frequencies=base,
        case_frequencies=case_freqs,
        block_starts=blocks,
        associated_snps=associated,
        site_ranges=tuple(site_ranges),
    )
    return cohort, truth
