"""The shared verification pipeline (pure functions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import (
    ld_prune,
    lr_ranking_order,
    matrix_moment_source,
    run_local_pipeline,
)
from repro.errors import ProtocolError
from repro.stats.ld import PairMoments


class TestLdPrune:
    def _const_source(self, dependent_pairs):
        """Moment source marking exactly ``dependent_pairs`` as dependent."""

        def get_moments(left, right, _position):
            n = 10_000
            if (left, right) in dependent_pairs:
                # Perfectly correlated columns with frequency 0.5.
                return PairMoments(n // 2, n // 2, n // 2, n // 2, n // 2, n)
            # Independent columns with frequency 0.5.
            return PairMoments(n // 2, n // 2, n // 4, n // 2, n // 2, n)

        return get_moments

    def test_all_independent_keeps_everything(self):
        ranking = np.zeros(10)
        kept = ld_prune([1, 3, 5, 7], ranking, self._const_source(set()), 1e-5)
        assert kept == [1, 3, 5, 7]

    def test_dependent_pair_keeps_better_ranked(self):
        ranking = np.array([0.9, 0.9, 0.9, 0.1, 0.9, 0.9, 0.9, 0.9])
        kept = ld_prune(
            [2, 3], ranking, self._const_source({(2, 3)}), 1e-5
        )
        assert kept == [3]

    def test_dependent_run_keeps_single_winner(self):
        # A whole block of mutually dependent SNPs -> one survivor.
        ranking = np.array([0.5, 0.4, 0.01, 0.6, 0.7])
        source = self._const_source({(0, 1), (1, 2), (2, 3), (2, 4)})
        kept = ld_prune([0, 1, 2, 3, 4], ranking, source, 1e-5)
        assert kept == [2]

    def test_short_inputs(self):
        ranking = np.zeros(5)
        assert ld_prune([], ranking, self._const_source(set()), 1e-5) == []
        assert ld_prune([2], ranking, self._const_source(set()), 1e-5) == [2]

    def test_positions_passed_to_source(self):
        seen = []

        def get_moments(left, right, position):
            seen.append(position)
            return PairMoments(0, 0, 0, 0, 0, 100)

        ld_prune([10, 20, 30], np.zeros(31), get_moments, 1e-5)
        assert seen == [1, 2]


class TestLrRankingOrder:
    def test_orders_by_pvalue(self):
        ranking = np.array([0.5, 0.1, 0.9, 0.2])
        assert lr_ranking_order([0, 1, 2, 3], ranking) == [1, 3, 0, 2]

    def test_stable_on_ties(self):
        ranking = np.array([0.5, 0.5, 0.5])
        assert lr_ranking_order([0, 1, 2], ranking) == [0, 1, 2]

    def test_subset_columns(self):
        ranking = np.array([0.9, 0.1, 0.5, 0.2])
        # Positions are into the given column list, not global indices.
        assert lr_ranking_order([0, 2], ranking) == [1, 0]


class TestRunLocalPipeline:
    def _populations(self, seed=20):
        rng = np.random.Generator(np.random.PCG64(seed))
        freqs = rng.uniform(0.02, 0.45, size=60)
        case = (rng.random((200, 60)) < freqs).astype(np.uint8)
        reference = (rng.random((180, 60)) < freqs).astype(np.uint8)
        return case, reference

    def test_outcome_structure(self):
        case, reference = self._populations()
        outcome = run_local_pipeline(
            case, reference, maf_cutoff=0.05, ld_cutoff=1e-5, alpha=0.1, beta=0.9
        )
        assert set(outcome.l_safe) <= set(outcome.l_double_prime)
        assert set(outcome.l_double_prime) <= set(outcome.l_prime)
        assert 0.0 <= outcome.release_power <= 1.0
        counts = outcome.phase_counts()
        assert counts["MAF"] >= counts["LD"] >= counts["LR"]

    def test_maf_phase_matches_manual_filter(self):
        case, reference = self._populations()
        outcome = run_local_pipeline(
            case, reference, maf_cutoff=0.05, ld_cutoff=1e-5, alpha=0.1, beta=0.9
        )
        pooled = np.vstack([case, reference])
        freqs = pooled.mean(axis=0)
        manual = [
            i for i, f in enumerate(freqs) if min(f, 1 - f) >= 0.05
        ]
        assert outcome.l_prime == manual

    def test_deterministic(self):
        case, reference = self._populations()
        kwargs = dict(maf_cutoff=0.05, ld_cutoff=1e-5, alpha=0.1, beta=0.9)
        one = run_local_pipeline(case, reference, **kwargs)
        two = run_local_pipeline(case, reference, **kwargs)
        assert one.l_safe == two.l_safe

    def test_strict_maf_empties_pipeline(self):
        case, reference = self._populations()
        outcome = run_local_pipeline(
            case, reference, maf_cutoff=0.499, ld_cutoff=1e-5, alpha=0.1, beta=0.9
        )
        assert outcome.l_prime == [] or len(outcome.l_prime) < 5
        if not outcome.l_double_prime:
            assert outcome.l_safe == []

    def test_shape_validation(self):
        case, reference = self._populations()
        with pytest.raises(ProtocolError):
            run_local_pipeline(
                case,
                reference[:, :10],
                maf_cutoff=0.05,
                ld_cutoff=1e-5,
                alpha=0.1,
                beta=0.9,
            )
        with pytest.raises(ProtocolError):
            run_local_pipeline(
                case[0],
                reference,
                maf_cutoff=0.05,
                ld_cutoff=1e-5,
                alpha=0.1,
                beta=0.9,
            )

    def test_matrix_moment_source_pools_populations(self):
        case, reference = self._populations()
        source = matrix_moment_source(case, reference)
        moments = source(3, 7, 0)
        pooled = np.vstack([case, reference]).astype(np.int64)
        assert moments.count == pooled.shape[0]
        assert moments.mu_l == pooled[:, 3].sum()
        assert moments.mu_lr == (pooled[:, 3] & pooled[:, 7]).sum()
