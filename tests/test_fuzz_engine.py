"""Engine, shrinker and committed-corpus acceptance tests.

The committed artifacts under ``tests/fuzz_corpus/`` are products of
an actual seeded ``repro fuzz`` session (see ``docs/FUZZING.md``):
``corpus.json`` is the deduplicated pool, ``FUZZ_report.json`` the
session report whose legacy comparison demonstrates the fuzzer
reaching strictly more behaviour keys than the 42 legacy sweep seeds.
The tests here assert the engine's replay determinism against those
artifacts, the shrinker's fixture bound (a known-violation plan
reduces to at most three active faults), and the engine loop's
seed-determinism.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.config import FaultConfig
from repro.fuzz.corpus import CorpusPool
from repro.fuzz.coverage import CoverageCollector
from repro.fuzz.engine import FuzzEngine
from repro.fuzz.genome import PlanGenome
from repro.fuzz.oracle import DecisionOracle
from repro.fuzz.shrink import Shrinker

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"
CORPUS_PATH = CORPUS_DIR / "corpus.json"
REPORT_PATH = CORPUS_DIR / "FUZZ_report.json"

LEADER_HINT = "gdo-0"  # real leader comes from the oracle fixture


@pytest.fixture(scope="module")
def oracle():
    return DecisionOracle()


#: A deliberately baroque genome for the shrinker fixture: nine-ish
#: active faults, exotic axes.
def _baroque(leader: str) -> PlanGenome:
    return PlanGenome(
        faults=FaultConfig(
            enabled=True,
            seed=77,
            drop_rate=0.05,
            duplicate_rate=0.05,
            delay_rate=0.05,
            corrupt_rate=0.05,
            equivocate_rate=0.35,
            checkpoint_tamper="stale",
            crash_points=((leader, 4), ("gdo-1", 6)),
            partition_windows=(("gdo-1", 2, 2),),
        ),
        mode="parallel",
        f=1,
        shards=4,
        supervised=True,
        integrity=True,
    )


def test_shrinker_reduces_fixture_violation_to_three_faults(oracle):
    """The acceptance fixture: a known-violation plan shrinks to <= 3
    active faults.

    The predicate simulates a violation that requires exactly two
    features (a drop rate and a leader crash); everything else in the
    baroque genome is noise the shrinker must strip.
    """
    leader = oracle.leader_id

    def violates(genome: PlanGenome) -> bool:
        return genome.faults.drop_rate > 0.0 and any(
            point[0] == leader for point in genome.faults.crash_points
        )

    start = _baroque(leader)
    assert violates(start)
    assert len(start.active_faults()) >= 8
    shrinker = Shrinker(violates, members=oracle.member_ids, max_runs=300)
    result = shrinker.shrink(start)
    assert result.reduced
    assert violates(result.genome)
    assert result.active_fault_count <= 3
    # Deterministic: the same shrink reduces to the same reproducer.
    again = Shrinker(
        violates, members=oracle.member_ids, max_runs=300
    ).shrink(start)
    assert again.genome.digest() == result.genome.digest()


def test_engine_iteration_budget_is_deterministic(oracle):
    """Same (seed, seeding, iteration budget) -> identical session."""
    states = []
    for _ in range(2):
        engine = FuzzEngine(seed=5, oracle=oracle, coverage=False)
        engine.run(max_iterations=12)
        report = engine.report()
        del report["elapsed_seconds"]
        states.append(
            (
                [g.digest() for g in engine.pool.genomes()],
                sorted(engine.pool.behaviour_keys()),
                report,
            )
        )
    assert states[0] == states[1]


def test_violation_recording_shrinks_and_dedupes(oracle):
    """A violating run is recorded as a shrunk reproducer, once."""
    leader = oracle.leader_id
    engine = FuzzEngine(seed=3, oracle=oracle, coverage=False)
    engine._violates = lambda genome: genome.faults.drop_rate > 0.0

    config = PlanGenome(
        faults=FaultConfig(enabled=True, seed=1, drop_rate=0.05)
    )
    run, _ = oracle.execute_genome(config)
    fake = dataclasses.replace(
        run, violation="divergent_decisions:l_safe"
    )
    engine._record_violation(_baroque(leader), fake)
    assert len(engine.violations) == 1
    shrunk = engine.violations[0]["shrunk"]
    assert len(shrunk["active_faults"]) <= 3
    # Same reproducer again: deduplicated.
    engine._record_violation(_baroque(leader), fake)
    assert len(engine.violations) == 1
    report = engine.report()
    assert report["violations"] == engine.violations


def test_seed_corpus_flags_counter_mismatches(oracle):
    """A committed entry that no longer reproduces its counters is
    surfaced in the seeding summary."""
    genome = PlanGenome(
        faults=FaultConfig(enabled=True, seed=2, drop_rate=0.05)
    )
    engine = FuzzEngine(seed=9, oracle=oracle, coverage=False)
    summary = engine.seed_corpus(
        [(genome, {"counters": ["faults.never_this"]})]
    )
    assert summary["entries"] == 1
    assert summary["counter_mismatches"] == 1


def test_committed_corpus_replays_deterministically(oracle):
    """Every committed genome replays to the same behaviour key, twice,
    and still fires the counters it was committed for."""
    doc = json.loads(CORPUS_PATH.read_text(encoding="utf-8"))
    pairs = CorpusPool.entries_from_json(doc)
    assert pairs, "committed corpus is empty"
    collector = CoverageCollector()
    for genome, summary in pairs:
        keys = []
        for _ in range(2):
            run, behaviour = oracle.execute_genome(
                genome, collector=collector
            )
            assert run.violation is None, run.violation
            keys.append(behaviour.key())
        assert keys[0] == keys[1], genome.digest()
        assert sorted(behaviour.counters) == summary["counters"], (
            genome.digest()
        )


def test_committed_report_shows_strictly_more_coverage():
    """The committed session report demonstrates the acceptance claim:
    the seeded fuzz run reached strictly more distinct behaviour keys
    than replaying the 42 legacy seeds."""
    report = json.loads(REPORT_PATH.read_text(encoding="utf-8"))
    comparison = report["legacy_comparison"]
    assert comparison["legacy_seeds"] == 42
    assert comparison["fuzz_keys"] > comparison["legacy_keys"]
    assert comparison["strictly_more"] is True
    assert report["violations"] == []
    # The committed corpus is the pool that session kept.
    corpus = json.loads(CORPUS_PATH.read_text(encoding="utf-8"))
    assert corpus["summary"]["genomes"] == len(corpus["entries"])
    assert (
        corpus["summary"]["behaviour_keys_seen"]
        == report["coverage"]["behaviour_keys"]
    )
