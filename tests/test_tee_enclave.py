"""Enclave model: measurement, ECALL boundary, crash, guarded proxy."""

from __future__ import annotations

import pytest

from repro.errors import (
    EnclaveCrashedError,
    EnclaveViolationError,
    MeasurementError,
    TEEError,
)
from repro.tee.enclave import Enclave, ecall, expected_measurement, guarded
from repro.tee.measurement import (
    MEASUREMENT_SIZE,
    Measurement,
    measure_blob,
    measure_class,
)

_KEY = bytes(range(32))


class CounterEnclave(Enclave):
    """Minimal enclave with one ECALL and one private method."""

    def __init__(self, platform_key=_KEY, enclave_id="counter"):
        super().__init__(platform_key, enclave_id)
        self._count = 0

    @ecall
    def bump(self, amount: int = 1) -> int:
        self._count += amount
        return self._count

    def not_an_ecall(self) -> str:
        return "secret"


class OtherEnclave(Enclave):
    @ecall
    def noop(self) -> None:
        return None


class TestMeasurement:
    def test_size_and_repr(self):
        m = measure_class(CounterEnclave)
        assert len(m.value) == MEASUREMENT_SIZE
        assert "Measurement(" in repr(m)

    def test_same_class_same_measurement(self):
        assert measure_class(CounterEnclave) == measure_class(CounterEnclave)

    def test_distinct_classes_distinct_measurements(self):
        assert measure_class(CounterEnclave) != measure_class(OtherEnclave)

    def test_version_changes_measurement(self):
        assert measure_class(CounterEnclave, "1") != measure_class(
            CounterEnclave, "2"
        )

    def test_blob_measurement(self):
        assert measure_blob(b"code") == measure_blob(b"code")
        assert measure_blob(b"code") != measure_blob(b"code2")
        assert measure_blob(b"code", "1") != measure_blob(b"code", "2")

    def test_bad_measurement_size_rejected(self):
        with pytest.raises(MeasurementError):
            Measurement(b"short")

    def test_matches_is_constant_time_equality(self):
        assert measure_blob(b"code").matches(measure_blob(b"code"))
        assert not measure_blob(b"code").matches(measure_blob(b"tampered"))

    def test_expected_measurement_matches_instance(self):
        enclave = CounterEnclave()
        assert enclave.measurement == expected_measurement(CounterEnclave)


class TestEcallBoundary:
    def test_registered_ecall_runs(self):
        enclave = CounterEnclave()
        assert enclave.ecall("bump") == 1
        assert enclave.ecall("bump", 5) == 6

    def test_unknown_ecall_rejected(self):
        with pytest.raises(EnclaveViolationError):
            CounterEnclave().ecall("not_an_ecall")

    def test_ecall_surface_listing(self):
        assert CounterEnclave().ecall_names() == {"bump"}

    def test_metering_records_label(self):
        enclave = CounterEnclave()
        enclave.ecall("bump", label="phase-1")
        report = enclave.meter.report()
        assert "phase-1" in report.cpu_seconds_by_label
        assert report.ecall_count == 1

    def test_constructor_validation(self):
        with pytest.raises(TEEError):
            CounterEnclave(platform_key=b"short")
        with pytest.raises(TEEError):
            CounterEnclave(enclave_id="")


class TestCrash:
    def test_crash_blocks_ecalls(self):
        enclave = CounterEnclave()
        enclave.crash()
        assert enclave.crashed
        with pytest.raises(EnclaveCrashedError):
            enclave.ecall("bump")

    def test_crash_destroys_sealing_key(self):
        enclave = CounterEnclave()
        enclave.crash()
        with pytest.raises(EnclaveCrashedError):
            enclave._sealing_key()


class TestGuardedProxy:
    def test_allows_ecall_and_identity(self):
        proxy = guarded(CounterEnclave())
        assert proxy.ecall("bump") == 1
        assert proxy.enclave_id == "counter"
        assert proxy.measurement is not None
        assert proxy.crashed is False

    def test_blocks_trusted_state(self):
        proxy = guarded(CounterEnclave())
        with pytest.raises(EnclaveViolationError):
            _ = proxy._count
        with pytest.raises(EnclaveViolationError):
            _ = proxy._platform_key
        with pytest.raises(EnclaveViolationError):
            _ = proxy.not_an_ecall

    def test_blocks_mutation(self):
        proxy = guarded(CounterEnclave())
        with pytest.raises(EnclaveViolationError):
            proxy.anything = 1

    def test_random_bytes_reproducible_with_rng(self):
        from repro.crypto.rng import DeterministicRng

        one = CounterEnclave.__new__(CounterEnclave)
        Enclave.__init__(one, _KEY, "a", rng=DeterministicRng("s"))
        two = CounterEnclave.__new__(CounterEnclave)
        Enclave.__init__(two, _KEY, "a", rng=DeterministicRng("s"))
        assert one.random_bytes(16) == two.random_bytes(16)
