"""In-process simulated network.

Federation members run on one machine in this reproduction, so the
"network" is a synchronous message router with:

* per-node FIFO inboxes,
* per-link byte/message accounting (feeding the bandwidth analysis of
  Section 7.1),
* a simulated clock advanced by a configurable latency/bandwidth profile
  (:class:`~repro.config.NetworkProfile`), and
* optional fault injection — dropping a node models the paper's
  non-responsive members, for which GenDPR makes no liveness guarantee.

Delivery is reliable and ordered per link, matching the TLS-like
transport an SGX deployment would use between sites.

The router is thread-safe: the parallel execution engine
(:mod:`repro.core.protocol`) sends and receives from worker threads
concurrently.  Each inbox has its own lock (senders to different
receivers never contend) and link/clock accounting updates atomically
under a shared stats lock.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..config import NetworkProfile
from ..errors import NetworkError, UnknownPeerError
from ..obs.tracer import TRACER
from .message import Envelope, LinkStats


class SimulatedNetwork:
    """Synchronous router with traffic accounting and fault injection."""

    def __init__(self, profile: Optional[NetworkProfile] = None):
        self._profile = profile or NetworkProfile()
        self._inboxes: Dict[str, Deque[Envelope]] = {}
        self._inbox_locks: Dict[str, threading.Lock] = {}
        self._links: Dict[Tuple[str, str], LinkStats] = defaultdict(LinkStats)
        self._partitioned: set[str] = set()
        self._simulated_time = 0.0
        #: Guards topology (registration/partitions) and the link/clock
        #: accounting; per-inbox delivery uses the per-node locks.
        self._stats_lock = threading.Lock()
        #: Optional :class:`~repro.faults.FaultInjector` mediating
        #: deliveries; ``None`` (the default) keeps sends on the direct
        #: inbox-append path with zero added work.
        self._fault_injector = None

    # -- Topology ---------------------------------------------------------------

    def register(self, node_id: str) -> None:
        """Attach a node; duplicate registration is an error (typo guard)."""
        if not node_id:
            raise NetworkError("node_id must be non-empty")
        with self._stats_lock:
            if node_id in self._inboxes:
                raise NetworkError(f"node {node_id!r} already registered")
            self._inboxes[node_id] = deque()
            self._inbox_locks[node_id] = threading.Lock()

    def nodes(self) -> List[str]:
        return sorted(self._inboxes)

    def partition(self, node_id: str) -> None:
        """Cut a node off: its sends and receives start failing."""
        self._require_known(node_id)
        with self._stats_lock:
            self._partitioned.add(node_id)

    def heal(self, node_id: str) -> None:
        """Reconnect a previously partitioned node."""
        self._require_known(node_id)
        with self._stats_lock:
            self._partitioned.discard(node_id)

    def _require_known(self, node_id: str) -> None:
        if node_id not in self._inboxes:
            raise UnknownPeerError(f"unknown node {node_id!r}")

    def _require_connected(self, node_id: str) -> None:
        self._require_known(node_id)
        if node_id in self._partitioned:
            raise NetworkError(f"node {node_id!r} is partitioned")

    # -- Fault injection ---------------------------------------------------------

    def install_fault_injector(self, injector) -> None:
        """Route every send through a :class:`~repro.faults.FaultInjector`.

        Chaos runs only; without this call the delivery path is exactly
        the pre-injection fast path.
        """
        self._fault_injector = injector
        injector.attach(self)

    def _deliver(self, envelope: Envelope) -> None:
        """Append to the receiver's inbox (fault-injector delivery hook)."""
        with self._inbox_locks[envelope.receiver]:
            self._inboxes[envelope.receiver].append(envelope)

    def advance_clock(self, seconds: float) -> float:
        """Advance the simulated clock (retry backoff); returns new time."""
        if seconds < 0:
            raise NetworkError("cannot advance the clock backwards")
        with self._stats_lock:
            self._simulated_time += seconds
            return self._simulated_time

    def flush(self, node_id: str) -> int:
        """Discard every pending inbox message of a node.

        Used by the protocol supervisor when a failover re-runs a phase:
        stragglers from the aborted attempt must not pollute the retry.
        Returns the number of messages discarded.
        """
        self._require_known(node_id)
        with self._inbox_locks[node_id]:
            flushed = len(self._inboxes[node_id])
            self._inboxes[node_id].clear()
        return flushed

    # -- Messaging ---------------------------------------------------------------

    def send(self, envelope: Envelope) -> None:
        """Deliver one envelope, advancing the simulated clock."""
        self._require_connected(envelope.sender)
        self._require_connected(envelope.receiver)
        if envelope.sender == envelope.receiver:
            raise NetworkError("a node cannot message itself over the network")
        wire_bytes = envelope.size()
        advance = self._profile.transfer_time(wire_bytes)
        with self._stats_lock:
            self._links[(envelope.sender, envelope.receiver)].record(envelope)
            self._simulated_time += advance
            sim_time = self._simulated_time
        if self._fault_injector is not None:
            self._fault_injector.on_send(envelope)
        else:
            with self._inbox_locks[envelope.receiver]:
                self._inboxes[envelope.receiver].append(envelope)
        if TRACER.enabled and TRACER.capture_messages:
            TRACER.event(
                "net.send",
                sender=envelope.sender,
                receiver=envelope.receiver,
                tag=envelope.tag,
                wire_bytes=wire_bytes,
                clock_advance_s=advance,
                sim_time_s=sim_time,
            )

    def broadcast(
        self, sender: str, receivers: Iterable[str], tag: str, body: bytes
    ) -> int:
        """Send the same body to each receiver; returns envelopes sent.

        Validation is atomic: every receiver is checked before the first
        envelope goes out, so an unknown or partitioned receiver in the
        middle of the list cannot leave a half-delivered broadcast.
        """
        targets = [receiver for receiver in receivers if receiver != sender]
        self._require_connected(sender)
        for receiver in targets:
            self._require_connected(receiver)
        for receiver in targets:
            self.send(Envelope(sender=sender, receiver=receiver, tag=tag, body=body))
        return len(targets)

    def receive(self, node_id: str, tag: Optional[str] = None) -> Envelope:
        """Pop the next inbox message (optionally requiring a tag).

        The protocol is phase-synchronous, so an empty inbox or a tag
        mismatch indicates a logic error and raises immediately rather
        than blocking.  A mismatch leaves the inbox untouched — the
        message is peeked, not popped, so the caller (or a debugger)
        still sees the queue as it was.
        """
        self._require_connected(node_id)
        with self._inbox_locks[node_id]:
            inbox = self._inboxes[node_id]
            if not inbox:
                raise NetworkError(f"inbox of {node_id!r} is empty")
            envelope = inbox[0]
            if tag is not None and envelope.tag != tag:
                pending = [e.tag for e in inbox]
                raise NetworkError(
                    f"{node_id!r} expected tag {tag!r}, got {envelope.tag!r} "
                    f"(pending tags: {pending})"
                )
            inbox.popleft()
        if TRACER.enabled and TRACER.capture_messages:
            TRACER.event(
                "net.recv",
                node=node_id,
                sender=envelope.sender,
                tag=envelope.tag,
                wire_bytes=envelope.size(),
            )
        return envelope

    def drain(self, node_id: str, tag: str, count: int) -> List[Envelope]:
        """Receive exactly ``count`` messages with ``tag``.

        All-or-nothing: if any receive fails (inbox runs empty, tag
        mismatch), messages already popped are restored to the *front*
        of the inbox in their original order before the error
        propagates, so a failed drain never loses envelopes.
        """
        received: List[Envelope] = []
        try:
            for _ in range(count):
                received.append(self.receive(node_id, tag))
        except Exception:
            with self._inbox_locks[node_id]:
                inbox = self._inboxes[node_id]
                for envelope in reversed(received):
                    inbox.appendleft(envelope)
            raise
        return received

    def pending(self, node_id: str) -> int:
        self._require_known(node_id)
        with self._inbox_locks[node_id]:
            return len(self._inboxes[node_id])

    # -- Accounting ----------------------------------------------------------------

    @property
    def simulated_time(self) -> float:
        """Seconds of simulated transfer time accumulated so far."""
        with self._stats_lock:
            return self._simulated_time

    def link_stats(self, sender: str, receiver: str) -> LinkStats:
        with self._stats_lock:
            return self._links[(sender, receiver)]

    def links(self) -> Dict[Tuple[str, str], LinkStats]:
        """Per-link stats for every link that carried traffic."""
        with self._stats_lock:
            return {
                link: stats
                for link, stats in self._links.items()
                if stats.messages
            }

    def total_stats(self) -> LinkStats:
        """Aggregate traffic across every link."""
        total = LinkStats()
        with self._stats_lock:
            for stats in self._links.values():
                total.merge(stats)
        return total

    def traffic_matrix(self) -> Dict[Tuple[str, str], int]:
        """Wire bytes per ordered (sender, receiver) pair."""
        with self._stats_lock:
            return {
                link: stats.wire_bytes
                for link, stats in sorted(self._links.items())
                if stats.messages
            }
