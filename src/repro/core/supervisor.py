"""Supervised study execution: checkpoint, crash detection, failover.

:class:`ProtocolSupervisor` wraps one :class:`~repro.core.protocol.
GenDPRProtocol` and automates the leader-recovery choreography that
``tests/test_core_recovery.py`` performs by hand:

1. after federation provisioning it seals an initial leader checkpoint,
   and after every completed phase a fresh one;
2. a leader-enclave crash (:class:`~repro.errors.EnclaveCrashedError`
   out of a phase ECALL or a checkpoint) is detected, the network is
   flushed of in-flight stragglers, a replacement leader enclave is
   provisioned on the same platform (deterministic re-election keeps
   leadership with the same GDO — see
   :meth:`~repro.core.federation.Federation.replace_leader_enclave`),
   channels are mutually re-attested, the latest sealed checkpoint is
   restored, and the interrupted phase is re-run;
3. failovers past ``resilience.max_failovers`` abort with a classified
   :class:`~repro.errors.LeaderFailoverError`.

Phase re-runs are safe because each phase is deterministic given the
checkpointed leader state: members recompute identical answers over
fresh (re-attested) channels, and retained-list ingestion is
idempotent.  A completed-then-crashed checkpoint simply re-runs its
phase — same outcome, new checkpoint.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import (
    EnclaveCrashedError,
    IntegrityError,
    LeaderFailoverError,
    SealingError,
)
from ..obs.tracer import TRACER
from .integrity import classify_violation
from .resilience import FailureReport
from .timing import PhaseClock, PhaseTimings


class ProtocolSupervisor:
    """Runs a protocol's phase steps under checkpoint/failover control."""

    def __init__(self, protocol):
        self._protocol = protocol
        self._federation = protocol.federation
        self._policy = self._federation.config.resilience
        self._monitor = self._federation.integrity_monitor
        self._checkpoint = None
        self._events: List[Dict[str, object]] = []
        #: The classified violation driving the current recovery; raised
        #: instead of a generic budget abort when failovers run out.
        self._pending_violation: Optional[Exception] = None

    # -- execution -----------------------------------------------------------

    def run(self):
        """Execute every phase step, checkpointing and failing over.

        Returns the :class:`~repro.core.phases.StudyResult`; mirrors
        ``GenDPRProtocol._execute`` for the happy path.
        """
        protocol = self._protocol
        timings = PhaseTimings()
        clock = PhaseClock(timings)
        # Sharded phases call back after every completed shard task, so
        # the checkpoint trail has per-task granularity and a failover
        # resumes from the last combine boundary, not the phase start.
        protocol._progress_checkpoint = self._seal_progress
        steps = [("init", None)] + list(protocol.phase_steps())
        for name, step in steps:
            self._run_step(name, step, clock)
        protocol._supervision = self.stats()
        return protocol._build_result(timings)

    def _seal_progress(self) -> None:
        """Seal a mid-step checkpoint at a completed shard-task boundary."""
        self._checkpoint = self._leader_ecall(
            "checkpoint_state", label="checkpoint"
        )
        injector = self._federation.fault_injector
        if injector is not None:
            injector.on_checkpoint(self._checkpoint)

    def _run_step(self, name: str, step, clock: PhaseClock) -> None:
        """Run one phase step to a sealed checkpoint, retrying on crash."""
        leader_ecall = self._leader_ecall
        need_restore = False
        while True:
            try:
                if need_restore:
                    self._failover(name)
                    need_restore = False
                if step is not None:
                    step(clock)
                self._checkpoint = leader_ecall(
                    "checkpoint_state", label="checkpoint"
                )
                injector = self._federation.fault_injector
                if injector is not None:
                    injector.on_checkpoint(self._checkpoint)
                self._pending_violation = None
                return
            except (IntegrityError, SealingError) as exc:
                # A classified Byzantine violation (or a tampered
                # checkpoint failing sealed-restore authentication):
                # quarantine the implicated node and recover through
                # leader replacement — the same machinery as a crash,
                # but the abort error, if the budget runs out, stays
                # classified.  The budget is checked *here*, before
                # deciding to retry: the typed abort must escape this
                # loop, not be re-caught by it.
                self._handle_violation(name, exc)
                if self._federation.failovers >= self._policy.max_failovers:
                    raise
                need_restore = True
            except EnclaveCrashedError:
                if not self._federation.leader_host.enclave.crashed:
                    # Member crashes are converted by the resilient
                    # exchange before they get here; an unconverted
                    # crash of a live leader is a real bug.
                    raise
                need_restore = True
                self._events.append({"event": "leader_crash", "step": name})
                if TRACER.enabled:
                    TRACER.event("supervisor.leader_crash", step=name)

    def _leader_ecall(self, name: str, *args, **kwargs):
        # Resolved through the federation each call: after a failover
        # the leader host carries a new guarded proxy.
        return self._federation.leader_host.enclave.ecall(name, *args, **kwargs)

    # -- failover ------------------------------------------------------------

    def _handle_violation(self, step: str, exc: Exception) -> None:
        """Quarantine the implicated node of a detected violation.

        The detection counter was already bumped at the detection site
        (the integrity rounds, or the checkpoint-restore path); this
        records the recovery decision.
        """
        federation = self._federation
        counter = classify_violation(exc)
        implicated = getattr(exc, "peer", "") or federation.leader_id
        self._monitor.quarantine(
            FailureReport(
                study_id=federation.config.study_id,
                member_id=implicated,
                round_kind=step,
                attempts=federation.failovers,
                cause=type(exc).__name__,
                simulated_time_s=federation.network.simulated_time,
                counters=self._monitor.counters(),
            )
        )
        self._pending_violation = exc
        self._events.append(
            {
                "event": "integrity_violation",
                "step": step,
                "error": type(exc).__name__,
                "counter": counter,
                "implicated": implicated,
            }
        )
        if TRACER.enabled:
            TRACER.event(
                "supervisor.integrity_violation",
                step=step,
                error=type(exc).__name__,
                counter=counter,
            )

    def _failover(self, step: str) -> None:
        federation = self._federation
        if federation.failovers >= self._policy.max_failovers:
            if self._pending_violation is not None:
                # The budget is gone while recovering from a classified
                # violation: abort with the violation itself, not a
                # generic failover error, so chaos verdicts stay typed.
                raise self._pending_violation
            raise LeaderFailoverError(
                f"leader of study {federation.config.study_id!r} crashed "
                f"beyond the failover budget "
                f"({self._policy.max_failovers}) during step {step!r}"
            )
        with TRACER.span("supervisor.failover", step=step):
            # Drop everything still in flight from the aborted attempt:
            # inbox stragglers would be junk-filtered anyway, but a
            # clean slate keeps the re-run's traffic legible.
            flushed = 0
            for node_id in federation.network.nodes():
                flushed += federation.network.flush(node_id)
            if federation.fault_injector is not None:
                flushed += federation.fault_injector.reset_in_flight()
            federation.replace_leader_enclave()
            if self._checkpoint is not None:
                blob = self._checkpoint
                if federation.fault_injector is not None:
                    # A Byzantine host controls which sealed blob it
                    # offers for restore; the tamper hook models that.
                    blob = federation.fault_injector.checkpoint_for_restore(
                        blob
                    )
                try:
                    self._leader_ecall(
                        "restore_state", blob, label="failover"
                    )
                except (IntegrityError, SealingError) as exc:
                    # Stale or tampered checkpoint rejected: a detection
                    # in its own right, counted at this site.
                    self._monitor.record_detection(exc)
                    raise
            # Sharded runs: the restored checkpoint may predate the
            # latest tree repair and members may hold tasks the crashed
            # attempt opened — re-align every enclave on one layout.
            self._protocol.resync_after_failover()
            self._events.append(
                {
                    "event": "failover",
                    "step": step,
                    "failover": federation.failovers,
                    "flushed_messages": flushed,
                    "restored": self._checkpoint is not None,
                }
            )
            if TRACER.enabled:
                TRACER.event(
                    "supervisor.failover_complete",
                    step=step,
                    failover=federation.failovers,
                    flushed_messages=flushed,
                )

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        return {
            "failovers": self._federation.failovers,
            "crashes_handled": sum(
                1 for e in self._events if e["event"] == "leader_crash"
            ),
            "events": [dict(e) for e in self._events],
        }
