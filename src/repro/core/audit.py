"""Egress auditing: verifying that no genome ever leaves its premises.

GenDPR's core regulatory claim is that "no raw genomic information gets
exchanged" (Section 4).  The enclaves keep an audit trail of every
logical payload they export (kind, size, genotype rows); this module
turns those trails plus the network's traffic matrix into a verdict the
tests and examples assert on:

* every outbound payload kind must belong to the protocol's allowed
  vocabulary (summaries, moments, LR matrices, retained lists), and
* no payload may carry genotype rows — by construction only the
  centralized baseline's ``genomes`` export does, which is exactly the
  contrast the audit demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import MembershipLeakError
from .federation import Federation

#: Payload kinds the GenDPR protocol is allowed to emit between sites.
ALLOWED_KINDS = frozenset({"summary", "ld", "lr", "retained"})


@dataclass(frozen=True)
class EgressRecord:
    """One exported payload, as recorded by the emitting enclave."""

    sender: str
    peer: str
    kind: str
    plaintext_bytes: int
    genotype_rows: int


@dataclass
class AuditReport:
    """Aggregated egress audit of one protocol run."""

    records: List[EgressRecord] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def total_plaintext_bytes(self) -> int:
        return sum(r.plaintext_bytes for r in self.records)

    def bytes_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.kind] = out.get(record.kind, 0) + record.plaintext_bytes
        return out

    def raise_on_violation(self) -> None:
        if self.violations:
            raise MembershipLeakError("; ".join(self.violations))


def audit_federation(federation: Federation) -> AuditReport:
    """Audit every enclave's egress log after a protocol run."""
    report = AuditReport()
    for gdo_id, enclave in federation.enclaves.items():
        for entry in enclave.ecall("export_audit_log", label="audit"):
            record = EgressRecord(
                sender=gdo_id,
                peer=str(entry["peer"]),
                kind=str(entry["kind"]),
                plaintext_bytes=int(entry["plaintext_bytes"]),
                genotype_rows=int(entry["genotype_rows"]),
            )
            report.records.append(record)
            if record.kind not in ALLOWED_KINDS:
                report.violations.append(
                    f"{gdo_id} exported disallowed payload kind "
                    f"{record.kind!r} to {record.peer}"
                )
            if record.genotype_rows > 0:
                report.violations.append(
                    f"{gdo_id} exported {record.genotype_rows} genome rows "
                    f"to {record.peer}"
                )
    return report


def genome_egress_savings(
    federation: Federation, l_des: int
) -> Dict[str, int]:
    """Bytes GenDPR avoided shipping versus genome outsourcing.

    The paper sizes the avoided transfer as ``2 * L_des`` bits per
    genome (two bits per SNP position in their encoding); we report
    both that figure and this implementation's one-byte-per-genotype
    encoding for comparison.
    """
    total_genomes = sum(
        host.store.num_rows
        for host in federation.hosts.values()
        if host.store is not None
    )
    actual = federation.network.total_stats().wire_bytes
    return {
        "genomes_in_federation": total_genomes,
        "paper_encoding_avoided_bytes": (2 * l_des * total_genomes) // 8,
        "byte_encoding_avoided_bytes": l_des * total_genomes,
        "actual_protocol_bytes": actual,
    }
