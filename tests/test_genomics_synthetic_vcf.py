"""Synthetic cohort generation and signed VCF / matrix containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.signing import MacSigner
from repro.errors import DataIntegrityError, GenomicsError
from repro.genomics import (
    SignedMatrix,
    SignedVcf,
    SyntheticSpec,
    generate_cohort,
    read_vcf,
    write_vcf,
)
from repro.genomics.snp import SnpPanel
from repro.stats import r_squared_direct

_KEY = bytes(range(32))


class TestSyntheticGeneration:
    def _spec(self, **kw):
        defaults = dict(num_snps=200, num_case=300, num_control=250, seed=9)
        defaults.update(kw)
        return SyntheticSpec(**defaults)

    def test_deterministic(self):
        one, _ = generate_cohort(self._spec())
        two, _ = generate_cohort(self._spec())
        assert one.case == two.case
        assert one.control == two.control

    def test_seed_changes_data(self):
        one, _ = generate_cohort(self._spec())
        two, _ = generate_cohort(self._spec(seed=10))
        assert one.case != two.case

    def test_dimensions(self):
        cohort, truth = generate_cohort(self._spec())
        assert cohort.case.shape == (300, 200)
        assert cohort.control.shape == (250, 200)
        assert cohort.reference is cohort.control
        assert truth.base_frequencies.shape == (200,)

    def test_maf_spectrum_has_rare_snps(self):
        _, truth = generate_cohort(self._spec(num_snps=2000))
        rare = np.mean(truth.base_frequencies < 0.05)
        assert 0.1 < rare < 0.7  # a substantial rare tail, not everything

    def test_frequencies_within_bounds(self):
        _, truth = generate_cohort(self._spec())
        assert np.all(truth.base_frequencies > 0)
        assert np.all(truth.base_frequencies <= 0.5)
        assert np.all(truth.case_frequencies > 0)
        assert np.all(truth.case_frequencies < 1)

    def test_ld_blocks_correlate_neighbours(self):
        cohort, truth = generate_cohort(
            self._spec(num_snps=400, ld_block_mean_length=20, ld_copy_prob=0.9)
        )
        data = cohort.control.array()
        in_block = []
        across_block = []
        for snp in range(1, 400):
            r2 = r_squared_direct(data[:, snp - 1], data[:, snp])
            (across_block if truth.block_starts[snp] else in_block).append(r2)
        assert np.mean(in_block) > 5 * max(np.mean(across_block), 1e-3)

    def test_empirical_frequencies_track_truth(self):
        cohort, truth = generate_cohort(
            self._spec(num_case=2000, num_control=2000, ld_copy_prob=0.5)
        )
        observed = cohort.control.allele_counts() / 2000
        # Copying within blocks pulls frequencies toward block heads, so
        # allow a generous but bounded deviation.
        assert np.mean(np.abs(observed - truth.base_frequencies)) < 0.06

    def test_associated_snps_marked(self):
        _, truth = generate_cohort(
            self._spec(associated_fraction=0.1, effect_size=0.2)
        )
        assert len(truth.associated_snps) == 20
        deltas = np.abs(
            truth.case_frequencies[list(truth.associated_snps)]
            - truth.base_frequencies[list(truth.associated_snps)]
        )
        assert np.mean(deltas) > 0.1

    def test_sites(self):
        cohort, truth = generate_cohort(
            self._spec(num_sites=4, site_effect_sd=0.1)
        )
        assert len(truth.site_ranges) == 4
        assert truth.site_ranges[0][0] == 0
        assert truth.site_ranges[-1][1] == 300
        # Contiguous and non-overlapping.
        for (a_start, a_stop), (b_start, _b_stop) in zip(
            truth.site_ranges, truth.site_ranges[1:]
        ):
            assert a_stop == b_start

    def test_site_effects_differentiate_sites(self):
        cohort, truth = generate_cohort(
            self._spec(num_case=2000, num_sites=2, site_effect_sd=0.15)
        )
        (a0, a1), (b0, b1) = truth.site_ranges
        freq_a = cohort.case.array()[a0:a1].mean(axis=0)
        freq_b = cohort.case.array()[b0:b1].mean(axis=0)
        assert np.mean(np.abs(freq_a - freq_b)) > 0.05

    def test_spec_validation(self):
        with pytest.raises(GenomicsError):
            self._spec(num_snps=0)
        with pytest.raises(GenomicsError):
            self._spec(ld_copy_prob=1.0)
        with pytest.raises(GenomicsError):
            self._spec(ld_block_mean_length=0.5)
        with pytest.raises(GenomicsError):
            self._spec(associated_fraction=1.5)
        with pytest.raises(GenomicsError):
            self._spec(case_drift_sd=-0.1)
        with pytest.raises(GenomicsError):
            self._spec(num_sites=0)
        with pytest.raises(GenomicsError):
            self._spec(num_sites=301)
        with pytest.raises(GenomicsError):
            self._spec(site_effect_sd=-1)


class TestVcf:
    def _small(self):
        spec = SyntheticSpec(num_snps=15, num_case=8, num_control=8, seed=2)
        cohort, _ = generate_cohort(spec)
        return cohort.panel, cohort.case

    def test_roundtrip(self):
        panel, matrix = self._small()
        text = write_vcf(panel, matrix)
        panel2, matrix2 = read_vcf(text)
        assert panel2.ids() == panel.ids()
        assert matrix2 == matrix

    def test_rejects_mismatched_matrix(self):
        panel, matrix = self._small()
        with pytest.raises(GenomicsError):
            write_vcf(SnpPanel.synthetic(3), matrix)

    def test_read_rejects_garbage(self):
        with pytest.raises(GenomicsError):
            read_vcf("not a vcf")
        panel, matrix = self._small()
        text = write_vcf(panel, matrix)
        with pytest.raises(GenomicsError):
            read_vcf(text.replace("##individuals=8\n", ""))

    def test_read_rejects_bad_genotype(self):
        panel, matrix = self._small()
        lines = write_vcf(panel, matrix).splitlines()
        lines[3] = lines[3].replace("\t1", "\tx", 1)
        with pytest.raises(GenomicsError):
            read_vcf("\n".join(lines))

    def test_read_rejects_wrong_field_count(self):
        panel, matrix = self._small()
        lines = write_vcf(panel, matrix).splitlines()
        lines[3] += "\t0"
        with pytest.raises(GenomicsError):
            read_vcf("\n".join(lines))

    def test_signed_vcf_roundtrip(self):
        panel, matrix = self._small()
        signer = MacSigner(_KEY, purpose="vcf-dataset")
        signed = SignedVcf.create(panel, matrix, signer)
        panel2, matrix2 = signed.open_verified(signer)
        assert matrix2 == matrix

    def test_signed_vcf_tamper_detected(self):
        panel, matrix = self._small()
        signer = MacSigner(_KEY, purpose="vcf-dataset")
        signed = SignedVcf.create(panel, matrix, signer)
        tampered = SignedVcf(
            text=signed.text.replace("\t0", "\t1", 1),
            signature=signed.signature,
        )
        with pytest.raises(DataIntegrityError):
            tampered.open_verified(signer)

    def test_signed_vcf_wrong_key_detected(self):
        panel, matrix = self._small()
        signed = SignedVcf.create(panel, matrix, MacSigner(_KEY, purpose="vcf-dataset"))
        with pytest.raises(DataIntegrityError):
            signed.open_verified(MacSigner(bytes(32), purpose="vcf-dataset"))


class TestSignedMatrix:
    def _matrix(self):
        spec = SyntheticSpec(num_snps=15, num_case=8, num_control=8, seed=2)
        cohort, _ = generate_cohort(spec)
        return cohort.case

    def test_roundtrip(self):
        matrix = self._matrix()
        signer = MacSigner(_KEY, purpose="vcf-dataset")
        assert SignedMatrix.create(matrix, signer).open_verified(signer) == matrix

    def test_tampered_bytes_detected(self):
        matrix = self._matrix()
        signer = MacSigner(_KEY, purpose="vcf-dataset")
        signed = SignedMatrix.create(matrix, signer)
        raw = bytearray(signed.raw)
        raw[0] ^= 1
        tampered = SignedMatrix(
            num_individuals=signed.num_individuals,
            num_snps=signed.num_snps,
            raw=bytes(raw),
            signature=signed.signature,
        )
        with pytest.raises(DataIntegrityError):
            tampered.open_verified(signer)

    def test_tampered_dimensions_detected(self):
        matrix = self._matrix()
        signer = MacSigner(_KEY, purpose="vcf-dataset")
        signed = SignedMatrix.create(matrix, signer)
        reshaped = SignedMatrix(
            num_individuals=signed.num_snps,
            num_snps=signed.num_individuals,
            raw=signed.raw,
            signature=signed.signature,
        )
        with pytest.raises(DataIntegrityError):
            reshaped.open_verified(signer)

    def test_inconsistent_header_detected(self):
        signer = MacSigner(_KEY, purpose="vcf-dataset")
        bad = SignedMatrix(
            num_individuals=4, num_snps=4, raw=bytes(10), signature=bytes(32)
        )
        with pytest.raises(DataIntegrityError):
            bad.open_verified(signer)
