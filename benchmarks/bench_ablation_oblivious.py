"""Ablation — cost of data-oblivious execution (paper's future work).

The paper defers an oblivious GenDPR to future work, noting that
"data-oblivious approaches have a significant performance overhead".
This ablation quantifies that overhead on the LR-test selection — the
protocol's most access-pattern-revealing step — by running the plain
greedy and the oblivious fixed-pass variant on the same inputs and
asserting identical decisions.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import PAPER_CASE_FULL, paper_cohort, render_table
from repro.core.pipeline import lr_ranking_order, run_local_pipeline
from repro.stats import lr_matrix, rank_pvalues, select_safe_subset
from repro.tee.oblivious import oblivious_prefix_selection

SNPS = 2_000
ALPHA, BETA = 0.1, 0.9


def test_ablation_oblivious_selection(benchmark, save_result):
    cohort, _ = paper_cohort(PAPER_CASE_FULL, SNPS)
    case = cohort.case.array()
    reference = cohort.reference.array()
    outcome = run_local_pipeline(
        case, reference, maf_cutoff=0.05, ld_cutoff=1e-5, alpha=ALPHA, beta=BETA
    )
    columns = outcome.l_double_prime
    case_freqs = case[:, columns].mean(axis=0)
    ref_freqs = reference[:, columns].mean(axis=0)
    case_lr = lr_matrix(case[:, columns], case_freqs, ref_freqs)
    ref_lr = lr_matrix(reference[:, columns], case_freqs, ref_freqs)
    ranking = rank_pvalues(
        case.sum(axis=0, dtype=np.int64),
        reference.sum(axis=0, dtype=np.int64),
        case.shape[0],
        reference.shape[0],
    )
    order = lr_ranking_order(columns, ranking)

    def run_both():
        begin = time.perf_counter()
        plain = select_safe_subset(case_lr, ref_lr, order, alpha=ALPHA, beta=BETA)
        plain_s = time.perf_counter() - begin
        begin = time.perf_counter()
        mask, power = oblivious_prefix_selection(
            case_lr, ref_lr, np.array(order), alpha=ALPHA, beta=BETA
        )
        oblivious_s = time.perf_counter() - begin
        return plain, mask, power, plain_s, oblivious_s

    plain, mask, power, plain_s, oblivious_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert sorted(np.nonzero(mask)[0].tolist()) == sorted(
        plain.selected_columns
    ), "oblivious execution must not change decisions"
    assert power == plain.power

    slowdown = oblivious_s / max(plain_s, 1e-9)
    table = render_table(
        ["Variant", "Selected", "Seconds", "Slowdown"],
        [
            ["Greedy (protocol)", len(plain.selected_columns), f"{plain_s:.3f}", "1.0x"],
            ["Oblivious fixed-pass", int(mask.sum()), f"{oblivious_s:.3f}", f"{slowdown:.1f}x"],
        ],
    )
    save_result(
        "ablation_oblivious",
        f"Ablation: oblivious LR-test selection (L''={len(columns)}).\n"
        + table
        + "\n(the paper anticipates a significant oblivious-execution "
        "overhead; this measures it)",
    )
