"""Release objects, Laplace mechanism and the hybrid DP release."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dp import (
    LaplaceMechanism,
    epsilon_for_frequency_error,
)
from repro.core.release import (
    GwasRelease,
    SnpStatistic,
    build_release,
    hybrid_release,
)
from repro.errors import ConfigError, ProtocolError


def _stat(index, pvalue=0.5, dp=False):
    return SnpStatistic(
        snp_index=index,
        chi2=1.0,
        pvalue=pvalue,
        case_frequency=0.2,
        reference_frequency=0.18,
        dp_protected=dp,
    )


class TestLaplace:
    def test_deterministic_in_seed(self):
        mech = LaplaceMechanism(epsilon=1.0, seed=3)
        values = np.arange(10.0)
        assert np.array_equal(mech.perturb(values), mech.perturb(values))
        other = LaplaceMechanism(epsilon=1.0, seed=4)
        assert not np.array_equal(mech.perturb(values), other.perturb(values))

    def test_scale(self):
        assert LaplaceMechanism(epsilon=0.5).scale == 2.0
        assert LaplaceMechanism(epsilon=2.0, sensitivity=4.0).scale == 2.0

    def test_noise_magnitude_tracks_epsilon(self):
        values = np.zeros(10_000)
        loose = LaplaceMechanism(epsilon=0.1, seed=1).perturb(values)
        tight = LaplaceMechanism(epsilon=10.0, seed=1).perturb(values)
        assert np.abs(loose).mean() > 10 * np.abs(tight).mean()

    def test_clamping(self):
        mech = LaplaceMechanism(epsilon=0.01, seed=2)
        noisy = mech.perturb_counts(np.array([0.0, 50.0, 100.0]), upper=100)
        assert noisy.min() >= 0.0 and noisy.max() <= 100.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            LaplaceMechanism(epsilon=0.0)
        with pytest.raises(ConfigError):
            LaplaceMechanism(epsilon=1.0, sensitivity=0.0)
        with pytest.raises(ConfigError):
            LaplaceMechanism(epsilon=1.0).perturb_counts(np.array([1.0]), 0)

    def test_epsilon_planning(self):
        eps = epsilon_for_frequency_error(0.01, 1000)
        # Check the inversion: error prob at that epsilon is 5%.
        assert np.exp(-eps * 1000 * 0.01) == pytest.approx(0.05)
        with pytest.raises(ConfigError):
            epsilon_for_frequency_error(0.0, 100)
        with pytest.raises(ConfigError):
            epsilon_for_frequency_error(0.1, 0)


class TestGwasRelease:
    def test_duplicate_snps_rejected(self):
        with pytest.raises(ProtocolError):
            GwasRelease(
                study_id="s",
                statistics=[_stat(1), _stat(1)],
                n_case=10,
                n_reference=10,
            )

    def test_partitions(self):
        release = GwasRelease(
            study_id="s",
            statistics=[_stat(1), _stat(2, dp=True)],
            n_case=10,
            n_reference=10,
        )
        assert [s.snp_index for s in release.exact()] == [1]
        assert [s.snp_index for s in release.perturbed()] == [2]

    def test_most_significant(self):
        release = GwasRelease(
            study_id="s",
            statistics=[_stat(1, 0.5), _stat(2, 0.001), _stat(3, 0.01)],
            n_case=10,
            n_reference=10,
        )
        assert [s.snp_index for s in release.most_significant(2)] == [2, 3]

    def test_build_release_from_leader_stats(self, federation, study_result):
        from repro.core.protocol import GenDPRProtocol

        stats = GenDPRProtocol(federation).release_statistics()
        release = build_release("test-study", stats, study_result.release_power)
        assert release.snp_indices == study_result.l_safe
        assert release.n_case == 360
        assert all(not s.dp_protected for s in release.statistics)


class TestHybridRelease:
    def _exact(self):
        return GwasRelease(
            study_id="s",
            statistics=[_stat(0), _stat(2)],
            n_case=100,
            n_reference=100,
        )

    def test_hybrid_covers_all_snps(self):
        release = hybrid_release(
            self._exact(),
            all_snps=5,
            withheld_case_counts={1: 30, 3: 40, 4: 10},
            withheld_reference_counts={1: 28, 3: 35, 4: 12},
            epsilon=1.0,
        )
        assert sorted(release.snp_indices) == [0, 1, 2, 3, 4]
        assert len(release.perturbed()) == 3
        assert release.metadata["dp_epsilon"] == "1.0"

    def test_perturbed_statistics_valid(self):
        release = hybrid_release(
            self._exact(),
            all_snps=5,
            withheld_case_counts={1: 30},
            withheld_reference_counts={1: 28},
            epsilon=0.5,
        )
        perturbed = release.perturbed()[0]
        assert 0.0 <= perturbed.case_frequency <= 1.0
        assert 0.0 <= perturbed.pvalue <= 1.0

    def test_deterministic_in_seed(self):
        kwargs = dict(
            all_snps=5,
            withheld_case_counts={1: 30},
            withheld_reference_counts={1: 28},
            epsilon=0.5,
        )
        one = hybrid_release(self._exact(), seed=9, **kwargs)
        two = hybrid_release(self._exact(), seed=9, **kwargs)
        assert one.perturbed()[0].chi2 == two.perturbed()[0].chi2

    def test_overlap_rejected(self):
        with pytest.raises(ProtocolError):
            hybrid_release(
                self._exact(),
                all_snps=5,
                withheld_case_counts={0: 1},
                withheld_reference_counts={0: 1},
                epsilon=1.0,
            )

    def test_mismatched_withheld_sets_rejected(self):
        with pytest.raises(ProtocolError):
            hybrid_release(
                self._exact(),
                all_snps=5,
                withheld_case_counts={1: 1},
                withheld_reference_counts={3: 1},
                epsilon=1.0,
            )

    def test_out_of_range_snp_rejected(self):
        with pytest.raises(ProtocolError):
            hybrid_release(
                self._exact(),
                all_snps=3,
                withheld_case_counts={7: 1},
                withheld_reference_counts={7: 1},
                epsilon=1.0,
            )
