"""R2 — determinism.

Two repo-wide invariants are enforced by equivalence suites: the
sequential and parallel execution engines must decide bit-identically
(PR 2), and fault-injected runs must either match the fault-free
reference or abort classified (PR 3).  Both break silently if protocol
or statistics code lets incidental orderings or ambient state leak into
decisions.  This rule flags the three classic ways that happens:

* iterating a bare ``set`` into an ordered output (list/tuple/loop
  body) without ``sorted(…)`` — CPython set order varies with hash
  seeding and insertion history;
* keying anything off ``id(…)`` — object addresses differ between
  processes and runs;
* reading the wall clock (``time.time``, ``datetime.now``) — protocol
  decisions must use the simulated network clock.  The monotonic
  *metering* clocks (``time.perf_counter`` et al.) stay legal: they
  feed timing reports, never decisions.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..astutil import call_name
from ..findings import Finding
from . import ModuleInfo, Rule, register

WALL_CLOCK_CALLS: Tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
)

#: ``set`` methods that still produce a set (iteration stays unordered).
_SET_PRODUCING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Builtins that freeze iteration order into an ordered container.
_ORDER_FREEZING_CALLS = frozenset({"list", "tuple", "enumerate"})


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically, does this expression evaluate to a ``set``?"""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set",
            "frozenset",
        ):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_PRODUCING_METHODS
            and _is_set_expr_base(node.func.value)
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_set_expr_base(node: ast.AST) -> bool:
    """Base of a method call that yields a set: ``set.intersection(…)``
    or a set-valued expression (``(a | b).union(c)``)."""
    if isinstance(node, ast.Name) and node.id in ("set", "frozenset"):
        return True
    return _is_set_expr(node)


@register
class DeterminismRule(Rule):
    rule_id = "R2"
    name = "determinism"
    rationale = (
        "sequential/parallel and fault-free/faulted runs must decide "
        "bit-identically: no set-order, id() or wall-clock dependence"
    )
    default_scopes = (
        "protocol",
        "stats",
        "enclave",
        "serve",
        "faults",
        "fuzz",
    )

    def check(self, module: ModuleInfo) -> Iterable[Finding]:
        wall_clock = self.option_tuple("wall_clock_calls", WALL_CLOCK_CALLS)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            finding = self._check_node(module, node, wall_clock)
            if finding is not None:
                findings.append(finding)
        return findings

    def _check_node(
        self,
        module: ModuleInfo,
        node: ast.AST,
        wall_clock: Tuple[str, ...],
    ) -> Optional[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)) and _is_set_expr(
            node.iter
        ):
            return self.finding(
                module,
                node.iter,
                "loop over a bare set: iteration order is not "
                "deterministic across runs; wrap in sorted(...)",
            )
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                if _is_set_expr(generator.iter):
                    return self.finding(
                        module,
                        generator.iter,
                        "comprehension drains a bare set into an ordered "
                        "result; wrap the set in sorted(...)",
                    )
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_FREEZING_CALLS
                and node.args
                and _is_set_expr(node.args[0])
            ):
                return self.finding(
                    module,
                    node,
                    f"{node.func.id}(...) freezes a set's arbitrary "
                    "iteration order; use sorted(...) to make the order "
                    "deterministic",
                )
            if isinstance(node.func, ast.Name) and node.func.id == "id":
                return self.finding(
                    module,
                    node,
                    "id(...) keys decisions to object addresses, which "
                    "differ between runs; derive names/keys from stable "
                    "protocol data instead",
                )
            resolved = call_name(node, module.imports)
            if resolved in wall_clock:
                return self.finding(
                    module,
                    node,
                    f"{resolved}() reads the wall clock; protocol logic "
                    "must use the simulated clock "
                    "(SimulatedNetwork.advance_clock / simulated_time)",
                )
            if resolved is not None and resolved.split(".")[0] == "random":
                return self.finding(
                    module,
                    node,
                    f"{resolved}() draws from the global Mersenne "
                    "Twister; use the seeded repro.crypto.rng DRBG or an "
                    "explicitly seeded numpy Generator",
                )
        return None
