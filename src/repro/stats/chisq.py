"""Chi-squared association tests and SNP ranking.

The chi-squared statistic measures the association of a SNP with the
phenotype; the paper uses its p-value both to rank SNPs ("the SNPs with
the smallest p-values are the most significant") and to break ties in
the LD phase, where the better-ranked SNP of a dependent pair survives.

Two variants are provided:

* :func:`paper_chi_square` — the simplified statistic printed in the
  paper, ``(N_case_l - N_control_l)^2 / N_control_l``, kept for fidelity
  and used wherever the paper's getMostRanked appears;
* :func:`pearson_chi_square` — the standard 2x2 Pearson test used for
  the released statistics, validated against scipy in the tests.

Both are vectorised over SNPs; all counts are minor-allele counts.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats

from ..errors import GenomicsError


def _validate_counts(
    case_counts: np.ndarray,
    control_counts: np.ndarray,
    n_case: int,
    n_control: int,
) -> tuple[np.ndarray, np.ndarray]:
    case = np.asarray(case_counts, dtype=np.float64)
    control = np.asarray(control_counts, dtype=np.float64)
    if case.shape != control.shape:
        raise GenomicsError("count vectors have different lengths")
    if n_case <= 0 or n_control <= 0:
        raise GenomicsError("population sizes must be positive")
    if np.any(case < 0) or np.any(case > n_case):
        raise GenomicsError("case counts outside [0, N_case]")
    if np.any(control < 0) or np.any(control > n_control):
        raise GenomicsError("control counts outside [0, N_control]")
    return case, control


def paper_chi_square(
    case_counts: np.ndarray, control_counts: np.ndarray
) -> np.ndarray:
    """The paper's chi-squared form per SNP.

    Control counts of zero yield a statistic of 0 (no evidence either
    way) rather than a division error.
    """
    case = np.asarray(case_counts, dtype=np.float64)
    control = np.asarray(control_counts, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        statistic = np.where(
            control > 0, (case - control) ** 2 / np.maximum(control, 1e-12), 0.0
        )
    return statistic


def pearson_chi_square(
    case_counts: np.ndarray,
    control_counts: np.ndarray,
    n_case: int,
    n_control: int,
) -> np.ndarray:
    """Standard 2x2 Pearson chi-squared statistic per SNP (1 dof).

    Degenerate margins (allele fixed in the pooled sample) give a
    statistic of 0.
    """
    case, control = _validate_counts(case_counts, control_counts, n_case, n_control)
    total = float(n_case + n_control)
    minor = case + control
    major = total - minor
    case_major = n_case - case
    control_major = n_control - control
    # chi2 = N (ad - bc)^2 / (row and column margin product)
    determinant = case * control_major - control * case_major
    denominator = minor * major * n_case * n_control
    with np.errstate(divide="ignore", invalid="ignore"):
        statistic = np.where(
            denominator > 0, total * determinant**2 / np.maximum(denominator, 1e-300), 0.0
        )
    return statistic


def chi_square_pvalues(statistic: np.ndarray) -> np.ndarray:
    """Upper-tail p-values of chi-squared statistics with 1 dof."""
    return scipy_stats.chi2.sf(np.asarray(statistic, dtype=np.float64), df=1)


def rank_pvalues(
    case_counts: np.ndarray,
    control_counts: np.ndarray,
    n_case: int,
    n_control: int,
) -> np.ndarray:
    """Per-SNP ranking p-values (smaller = more significant).

    This is the ranking the LD phase consults through getMostRanked.
    """
    statistic = pearson_chi_square(case_counts, control_counts, n_case, n_control)
    return chi_square_pvalues(statistic)


def rank_pvalues_scalar(
    case_counts: np.ndarray,
    control_counts: np.ndarray,
    n_case: int,
    n_control: int,
) -> np.ndarray:
    """Per-SNP loop reference of :func:`rank_pvalues` (test oracle).

    Evaluates the 2x2 Pearson algebra one SNP at a time with scalar
    float64 arithmetic in the same operation order as the vectorised
    kernel, so the property tests can assert element-wise identity.
    """
    case, control = _validate_counts(
        case_counts, control_counts, n_case, n_control
    )
    total = float(n_case + n_control)
    out = np.empty(case.shape[0], dtype=np.float64)
    for index in range(case.shape[0]):
        a, b = float(case[index]), float(control[index])
        minor = a + b
        major = total - minor
        determinant = a * (n_control - b) - b * (n_case - a)
        denominator = minor * major * n_case * n_control
        statistic = (
            total * determinant**2 / max(denominator, 1e-300)
            if denominator > 0
            else 0.0
        )
        out[index] = scipy_stats.chi2.sf(np.float64(statistic), df=1)
    return out


def most_ranked(left: int, right: int, ranking_pvalues: np.ndarray) -> int:
    """Index (of the two given) with the smaller ranking p-value.

    Ties go to the lower SNP index, making the LD greedy deterministic.
    """
    if ranking_pvalues[left] < ranking_pvalues[right]:
        return left
    if ranking_pvalues[right] < ranking_pvalues[left]:
        return right
    return min(left, right)
