"""GenDPR — the paper's primary contribution.

* :mod:`~repro.core.enclave_logic` — the trusted module (member and
  leader roles of Figure 2).
* :mod:`~repro.core.federation` — provisioning: attestation, channels,
  signed datasets, untrusted host routers.
* :mod:`~repro.core.protocol` — study orchestration and results.
* :mod:`~repro.core.pipeline` — the three-phase decision logic as pure
  functions shared by every deployment.
* :mod:`~repro.core.baseline` — the centralized SecureGenome-in-a-TEE
  comparator.
* :mod:`~repro.core.naive` — the naive per-member comparator.
* :mod:`~repro.core.release` / :mod:`~repro.core.dp` — exact and hybrid
  DP releases.
* :mod:`~repro.core.audit` — genome-egress auditing.
"""

from .audit import AuditReport, audit_federation, genome_egress_savings
from .baseline import CentralizedVerifier, run_centralized_study
from .dp import LaplaceMechanism, epsilon_for_frequency_error
from .dynamic import DynamicStudy, EpochReport
from .enclave_logic import GenDPREnclave
from .federation import Federation, GdoHost, build_federation
from .integrity import IntegrityMonitor
from .interdependent import (
    InterdependentAssessment,
    assess_interdependent_release,
    cumulative_release_power,
)
from .leader import elect_leader
from .naive import NaiveResult, naive_traffic_bytes, run_naive_study
from .phases import CollusionReport, CombinationOutcome, StudyResult
from .pipeline import PipelineOutcome, ld_prune, run_local_pipeline
from .protocol import GenDPRProtocol, run_study
from .release import GwasRelease, SnpStatistic, build_release, hybrid_release
from .resilience import FailureReport, ResilientExchange
from .shard import (
    AggregationTree,
    ShardPlan,
    ShardRange,
    aggregation_tree,
    plan_shards,
)
from .supervisor import ProtocolSupervisor
from .timing import (
    DATA_AGGREGATION,
    INDEXING,
    LD_ANALYSIS,
    LR_ANALYSIS,
    PhaseTimings,
)

__all__ = [
    "AuditReport",
    "audit_federation",
    "genome_egress_savings",
    "CentralizedVerifier",
    "run_centralized_study",
    "LaplaceMechanism",
    "DynamicStudy",
    "EpochReport",
    "InterdependentAssessment",
    "assess_interdependent_release",
    "cumulative_release_power",
    "epsilon_for_frequency_error",
    "GenDPREnclave",
    "Federation",
    "GdoHost",
    "IntegrityMonitor",
    "build_federation",
    "elect_leader",
    "NaiveResult",
    "naive_traffic_bytes",
    "run_naive_study",
    "CollusionReport",
    "CombinationOutcome",
    "StudyResult",
    "PipelineOutcome",
    "ld_prune",
    "run_local_pipeline",
    "GenDPRProtocol",
    "run_study",
    "FailureReport",
    "ResilientExchange",
    "AggregationTree",
    "ShardPlan",
    "ShardRange",
    "aggregation_tree",
    "plan_shards",
    "ProtocolSupervisor",
    "GwasRelease",
    "SnpStatistic",
    "build_release",
    "hybrid_release",
    "DATA_AGGREGATION",
    "INDEXING",
    "LD_ANALYSIS",
    "LR_ANALYSIS",
    "PhaseTimings",
]
