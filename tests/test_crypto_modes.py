"""Chaining modes: CTR/CBC round trips, padding, and sizing."""

from __future__ import annotations

import pytest

from repro.crypto.modes import (
    CBC,
    CTR,
    ciphertext_expansion,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.crypto.rng import DeterministicRng
from repro.errors import DecryptionError

_KEY = bytes(range(32))


class TestPkcs7:
    def test_pad_always_adds_bytes(self):
        for length in range(0, 40):
            padded = pkcs7_pad(bytes(length))
            assert len(padded) % 16 == 0
            assert len(padded) > length

    def test_roundtrip(self):
        rng = DeterministicRng("pkcs7")
        for length in range(0, 50):
            data = rng.bytes(length)
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_unpad_rejects_bad_length(self):
        with pytest.raises(DecryptionError):
            pkcs7_unpad(b"\x01\x02\x03")

    def test_unpad_rejects_zero_padding_byte(self):
        block = bytes(15) + b"\x00"
        with pytest.raises(DecryptionError):
            pkcs7_unpad(block)

    def test_unpad_rejects_oversized_padding_byte(self):
        block = bytes(15) + b"\x11"  # 17 > block size
        with pytest.raises(DecryptionError):
            pkcs7_unpad(block)

    def test_unpad_rejects_inconsistent_padding(self):
        # Final byte 0x03 demands three trailing 0x03 bytes.
        bad = bytes(12) + b"\x01\x02\x03\x03"
        with pytest.raises(DecryptionError):
            pkcs7_unpad(bad)

    def test_unpad_accepts_full_block_of_padding(self):
        assert pkcs7_unpad(b"\x10" * 16) == b""


class TestCtr:
    def test_involution(self):
        rng = DeterministicRng("ctr")
        ctr = CTR(_KEY)
        nonce = rng.bytes(16)
        data = rng.bytes(1000)
        assert ctr.process(nonce, ctr.process(nonce, data)) == data

    def test_keystream_deterministic(self):
        ctr = CTR(_KEY)
        nonce = bytes(16)
        assert ctr.keystream(nonce, 64) == ctr.keystream(nonce, 64)

    def test_keystream_prefix_property(self):
        ctr = CTR(_KEY)
        nonce = bytes(16)
        assert ctr.keystream(nonce, 100)[:37] == ctr.keystream(nonce, 37)

    def test_distinct_nonces_distinct_streams(self):
        ctr = CTR(_KEY)
        assert ctr.keystream(bytes(16), 32) != ctr.keystream(
            b"\x01" + bytes(15), 32
        )

    def test_counter_wraps_at_128_bits(self):
        ctr = CTR(_KEY)
        high = b"\xff" * 16
        stream = ctr.keystream(high, 48)  # must not raise on wrap
        assert len(stream) == 48

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            CTR(_KEY).keystream(bytes(8), 16)


class TestCbc:
    def test_roundtrip_various_lengths(self):
        rng = DeterministicRng("cbc")
        cbc = CBC(_KEY)
        for length in (0, 1, 15, 16, 17, 100, 1000):
            data = rng.bytes(length)
            assert cbc.decrypt(cbc.encrypt(data, iv=rng.bytes(16))) == data

    def test_random_iv_by_default(self):
        cbc = CBC(_KEY)
        assert cbc.encrypt(b"hello") != cbc.encrypt(b"hello")

    def test_tampered_ciphertext_fails_unpad_or_garbles(self):
        cbc = CBC(_KEY)
        frame = bytearray(cbc.encrypt(bytes(100)))
        frame[20] ^= 0xFF
        try:
            plain = cbc.decrypt(bytes(frame))
        except DecryptionError:
            return  # padding check caught it
        assert plain != bytes(100)  # otherwise the payload is corrupted

    def test_decrypt_rejects_short_input(self):
        with pytest.raises(DecryptionError):
            CBC(_KEY).decrypt(bytes(16))

    def test_decrypt_rejects_misaligned_input(self):
        with pytest.raises(DecryptionError):
            CBC(_KEY).decrypt(bytes(33))

    def test_iv_length_checked(self):
        with pytest.raises(ValueError):
            CBC(_KEY).encrypt(b"x", iv=bytes(8))


def test_ciphertext_expansion_matches_encrypt():
    cbc = CBC(_KEY)
    for length in (0, 1, 16, 100, 4000):
        frame = cbc.encrypt(bytes(length))
        assert len(frame) - length == ciphertext_expansion(length)


def test_expansion_is_about_thirty_percent_for_small_vectors():
    # The paper reports ~30% growth for its (small) count vectors.
    length = 100
    assert 0.15 <= ciphertext_expansion(length) / length <= 0.5
