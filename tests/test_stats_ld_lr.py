"""LD from pooled moments and the SecureGenome LR-test."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GenomicsError
from repro.stats import (
    PairMoments,
    analytical_power,
    detection_threshold,
    empirical_power,
    is_dependent,
    ld_pvalue,
    lr_matrix,
    lr_scores,
    lr_weights,
    power_curve,
    r_squared,
    r_squared_direct,
    select_safe_subset,
    select_safe_subset_analytical,
)


def _moments_from_columns(left, right) -> PairMoments:
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    return PairMoments(
        mu_l=int(left.sum()),
        mu_r=int(right.sum()),
        mu_lr=int((left * right).sum()),
        mu_l2=int((left * left).sum()),
        mu_r2=int((right * right).sum()),
        count=len(left),
    )


class TestPairMoments:
    def test_addition(self):
        a = PairMoments(1, 2, 1, 1, 2, 10)
        b = PairMoments(3, 1, 0, 3, 1, 5)
        total = a + b
        assert total == PairMoments(4, 3, 1, 4, 3, 15)

    def test_sum(self):
        parts = [PairMoments(1, 1, 1, 1, 1, 2)] * 3
        assert PairMoments.sum(parts).count == 6
        assert PairMoments.sum([]) == PairMoments.zero()

    def test_validate(self):
        PairMoments(1, 1, 1, 1, 1, 2).validate()
        with pytest.raises(GenomicsError):
            PairMoments(3, 1, 1, 1, 1, 2).validate()
        with pytest.raises(GenomicsError):
            PairMoments(0, 0, 0, 0, 0, -1).validate()


class TestRSquared:
    def test_matches_direct_computation(self):
        rng = np.random.Generator(np.random.PCG64(8))
        for _ in range(20):
            left = (rng.random(200) < 0.4).astype(np.int64)
            right = np.where(
                rng.random(200) < 0.7, left, (rng.random(200) < 0.4)
            ).astype(np.int64)
            moments = _moments_from_columns(left, right)
            assert r_squared(moments) == pytest.approx(
                r_squared_direct(left, right), abs=1e-12
            )

    def test_moment_additivity_equals_pooled(self):
        """Sum of per-population moments == moments of pooled population.

        This is the mathematical heart of GenDPR's Phase 2 correction.
        """
        rng = np.random.Generator(np.random.PCG64(9))
        pops = [
            ((rng.random(60) < 0.3).astype(np.int64), (rng.random(60) < 0.5).astype(np.int64))
            for _ in range(3)
        ]
        summed = PairMoments.sum(
            _moments_from_columns(l, r) for l, r in pops
        )
        pooled_left = np.concatenate([l for l, _ in pops])
        pooled_right = np.concatenate([r for _, r in pops])
        assert summed == _moments_from_columns(pooled_left, pooled_right)

    def test_perfect_correlation(self):
        column = np.array([0, 1, 0, 1, 1], dtype=np.int64)
        assert r_squared(_moments_from_columns(column, column)) == pytest.approx(1.0)

    def test_constant_column_gives_zero(self):
        const = np.ones(10, dtype=np.int64)
        varying = np.array([0, 1] * 5, dtype=np.int64)
        assert r_squared(_moments_from_columns(const, varying)) == 0.0

    def test_tiny_population(self):
        assert r_squared(PairMoments(0, 0, 0, 0, 0, 1)) == 0.0
        assert ld_pvalue(PairMoments(0, 0, 0, 0, 0, 0)) == 1.0

    def test_independence_pvalue_large(self):
        rng = np.random.Generator(np.random.PCG64(10))
        left = (rng.random(5000) < 0.4).astype(np.int64)
        right = (rng.random(5000) < 0.4).astype(np.int64)
        assert ld_pvalue(_moments_from_columns(left, right)) > 1e-5

    def test_dependence_pvalue_small(self):
        rng = np.random.Generator(np.random.PCG64(11))
        left = (rng.random(5000) < 0.4).astype(np.int64)
        right = np.where(rng.random(5000) < 0.9, left, 0).astype(np.int64)
        moments = _moments_from_columns(left, right)
        assert ld_pvalue(moments) < 1e-5
        assert is_dependent(moments, 1e-5)

    def test_is_dependent_validation(self):
        with pytest.raises(GenomicsError):
            is_dependent(PairMoments.zero(), 0.0)

    @given(
        seed=st.integers(min_value=0, max_value=500),
        n=st.integers(min_value=2, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_r_squared_bounds_property(self, seed, n):
        rng = np.random.Generator(np.random.PCG64(seed))
        left = (rng.random(n) < 0.5).astype(np.int64)
        right = (rng.random(n) < 0.5).astype(np.int64)
        value = r_squared(_moments_from_columns(left, right))
        assert 0.0 <= value <= 1.0


class TestLrTest:
    def _setup(self, seed=12, n_case=300, n_ref=300, snps=40, drift=0.1):
        rng = np.random.Generator(np.random.PCG64(seed))
        p = rng.uniform(0.1, 0.4, size=snps)
        phat = np.clip(p + rng.normal(0, drift, size=snps), 0.01, 0.99)
        case = (rng.random((n_case, snps)) < phat).astype(np.uint8)
        ref = (rng.random((n_ref, snps)) < p).astype(np.uint8)
        case_freq = case.mean(axis=0)
        ref_freq = ref.mean(axis=0)
        return case, ref, case_freq, ref_freq

    def test_lr_matrix_values(self):
        case, _ref, case_freq, ref_freq = self._setup()
        matrix = lr_matrix(case, case_freq, ref_freq)
        w1, w0 = lr_weights(case_freq, ref_freq)
        n, l = 5, 7
        expected = w1[l] if case[n, l] else w0[l]
        assert matrix[n, l] == pytest.approx(expected)

    def test_lr_scores_are_row_sums(self):
        case, _ref, case_freq, ref_freq = self._setup()
        matrix = lr_matrix(case, case_freq, ref_freq)
        assert np.allclose(lr_scores(matrix), matrix.sum(axis=1))
        assert np.allclose(
            lr_scores(matrix, [0, 3]), matrix[:, [0, 3]].sum(axis=1)
        )

    def test_lr_matrix_merge_invariance(self):
        """Stacked shard matrices == matrix of the pooled population."""
        case, _ref, case_freq, ref_freq = self._setup()
        top, bottom = case[:100], case[100:]
        merged = np.vstack(
            [lr_matrix(top, case_freq, ref_freq), lr_matrix(bottom, case_freq, ref_freq)]
        )
        assert np.array_equal(merged, lr_matrix(case, case_freq, ref_freq))

    def test_lr_matrix_validation(self):
        case, _ref, case_freq, ref_freq = self._setup()
        with pytest.raises(GenomicsError):
            lr_matrix(case[:, :5], case_freq, ref_freq)
        with pytest.raises(GenomicsError):
            lr_matrix(case[0], case_freq, ref_freq)
        with pytest.raises(GenomicsError):
            lr_weights(case_freq[:3], ref_freq)

    def test_detection_threshold_quantile(self):
        scores = np.arange(100, dtype=np.float64)
        threshold = detection_threshold(scores, alpha=0.1)
        assert np.mean(scores > threshold) <= 0.1
        assert threshold == 89.0

    def test_detection_threshold_validation(self):
        with pytest.raises(GenomicsError):
            detection_threshold(np.array([]), 0.1)
        with pytest.raises(GenomicsError):
            detection_threshold(np.array([1.0]), 0.0)

    def test_empirical_power_separated_distributions(self):
        power = empirical_power(
            np.full(100, 10.0), np.zeros(100), alpha=0.1
        )
        assert power == 1.0

    def test_empirical_power_identical_distributions(self):
        scores = np.arange(100, dtype=np.float64)
        assert empirical_power(scores, scores, alpha=0.1) <= 0.15

    def test_case_members_score_higher(self):
        """Members of the case pool have higher LR scores than outsiders."""
        case, ref, case_freq, ref_freq = self._setup(drift=0.15)
        case_scores = lr_scores(lr_matrix(case, case_freq, ref_freq))
        ref_scores = lr_scores(lr_matrix(ref, case_freq, ref_freq))
        assert case_scores.mean() > ref_scores.mean()

    def test_select_safe_subset_blocks_leaky_snps(self):
        case, ref, case_freq, ref_freq = self._setup(drift=0.25, snps=30)
        case_lr = lr_matrix(case, case_freq, ref_freq)
        ref_lr = lr_matrix(ref, case_freq, ref_freq)
        result = select_safe_subset(
            case_lr, ref_lr, range(30), alpha=0.1, beta=0.5
        )
        assert len(result.selected_columns) < 30
        assert result.power < 0.5
        assert result.evaluations == 30

    def test_select_safe_subset_keeps_harmless_snps(self):
        case, ref, case_freq, ref_freq = self._setup(drift=0.0, snps=10)
        case_lr = lr_matrix(case, case_freq, ref_freq)
        ref_lr = lr_matrix(ref, case_freq, ref_freq)
        result = select_safe_subset(
            case_lr, ref_lr, range(10), alpha=0.1, beta=0.9
        )
        assert len(result.selected_columns) == 10

    def test_select_safe_subset_deterministic(self):
        case, ref, case_freq, ref_freq = self._setup()
        case_lr = lr_matrix(case, case_freq, ref_freq)
        ref_lr = lr_matrix(ref, case_freq, ref_freq)
        one = select_safe_subset(case_lr, ref_lr, range(40), alpha=0.1, beta=0.9)
        two = select_safe_subset(case_lr, ref_lr, range(40), alpha=0.1, beta=0.9)
        assert one.selected_columns == two.selected_columns

    def test_select_safe_subset_validation(self):
        case, ref, case_freq, ref_freq = self._setup()
        case_lr = lr_matrix(case, case_freq, ref_freq)
        ref_lr = lr_matrix(ref, case_freq, ref_freq)
        with pytest.raises(GenomicsError):
            select_safe_subset(case_lr, ref_lr, [0, 0], alpha=0.1, beta=0.9)
        with pytest.raises(GenomicsError):
            select_safe_subset(case_lr, ref_lr, [999], alpha=0.1, beta=0.9)
        with pytest.raises(GenomicsError):
            select_safe_subset(
                case_lr, ref_lr[:, :5], range(5), alpha=0.1, beta=0.9
            )


class TestAnalyticalPower:
    def test_agrees_with_empirical_on_extremes(self):
        rng = np.random.Generator(np.random.PCG64(13))
        p = rng.uniform(0.2, 0.4, size=50)
        # Strong leakage: both estimators say "detectable".
        phat_leaky = np.clip(p + 0.25, 0.01, 0.99)
        assert analytical_power(phat_leaky, p, alpha=0.1) > 0.95
        # No leakage: both say "power near alpha".
        assert analytical_power(p, p, alpha=0.1) < 0.2

    def test_monotone_in_snp_count(self):
        rng = np.random.Generator(np.random.PCG64(14))
        p = rng.uniform(0.2, 0.4, size=60)
        phat = np.clip(p + 0.05, 0.01, 0.99)
        curve = power_curve(phat, p, list(range(60)), alpha=0.1)
        assert curve[-1] > curve[0]
        assert curve[-1] <= 1.0

    def test_analytical_selection(self):
        rng = np.random.Generator(np.random.PCG64(15))
        p = rng.uniform(0.2, 0.4, size=40)
        phat = np.clip(p + rng.normal(0, 0.15, 40), 0.01, 0.99)
        selected = select_safe_subset_analytical(
            phat, p, range(40), alpha=0.1, beta=0.5
        )
        assert 0 < len(selected) < 40
        assert (
            analytical_power(phat, p, alpha=0.1, columns=selected) < 0.5
        )

    def test_alpha_validation(self):
        with pytest.raises(GenomicsError):
            analytical_power(np.array([0.3]), np.array([0.3]), alpha=1.5)

    def test_empty_subset_power_zero(self):
        assert (
            analytical_power(np.array([0.3]), np.array([0.3]), alpha=0.1, columns=[])
            == 0.0
        )
