"""Exception hierarchy for the GenDPR reproduction.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one type at the boundary.  Subsystem-specific
errors add context (which enclave, which phase, which message) without
leaking sensitive payloads into exception text.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent."""


# ---------------------------------------------------------------------------
# Crypto
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class InvalidKeyError(CryptoError):
    """A key has the wrong length or format for the requested primitive."""


class AuthenticationError(CryptoError):
    """Ciphertext or signature failed integrity verification.

    Raised when an AEAD tag or an HMAC signature does not verify.  The
    payload is never included in the message.
    """


class DecryptionError(CryptoError):
    """Ciphertext is structurally invalid (too short, bad framing)."""


# ---------------------------------------------------------------------------
# TEE
# ---------------------------------------------------------------------------


class TEEError(ReproError):
    """Base class for trusted-execution-environment failures."""


class AttestationError(TEEError):
    """A quote failed verification (wrong measurement, signer or nonce)."""


class SealingError(TEEError):
    """Sealed data could not be unsealed by this enclave identity."""


class EnclaveCrashedError(TEEError):
    """An operation was attempted on an enclave that has been torn down."""


class EnclaveViolationError(TEEError):
    """Untrusted code attempted a forbidden access into enclave memory."""


class MeasurementError(TEEError):
    """An enclave identity hash is malformed (wrong size or encoding)."""


class ResourceError(TEEError):
    """The enclave resource meter was misused (e.g. negative buffer)."""


# ---------------------------------------------------------------------------
# Network
# ---------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class UnknownPeerError(NetworkError):
    """A message was addressed to a node that is not registered."""


class SerializationError(NetworkError):
    """A payload could not be canonically encoded or decoded."""


class ChannelError(NetworkError):
    """A secure channel was used before establishment or after teardown."""


# ---------------------------------------------------------------------------
# Genomics / data
# ---------------------------------------------------------------------------


class GenomicsError(ReproError):
    """Base class for genomic-data errors."""


class DataIntegrityError(GenomicsError):
    """A signed dataset (e.g. VCF) failed its authenticity check.

    GenDPR's threat model assumes the trusted module detects tampered
    genome data; this is the error surfaced on detection.
    """


class PartitionError(GenomicsError):
    """A cohort could not be split as requested across federation members."""


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class ProtocolError(ReproError):
    """Base class for GenDPR protocol failures."""


class PhaseOrderError(ProtocolError):
    """A protocol phase was invoked out of order."""


class CollusionConfigError(ProtocolError):
    """An invalid number of tolerated colluders was requested."""


class MembershipLeakError(ProtocolError):
    """A release audit found genome-level data in an outbound message.

    This corresponds to a violation of GenDPR's core guarantee that raw
    genomic information never leaves a member's premises.
    """


# ---------------------------------------------------------------------------
# Resilience / supervision
# ---------------------------------------------------------------------------


class ResilienceError(ProtocolError):
    """Base class for failures of the supervised protocol runtime.

    These are *classified aborts*: the runtime detected a fault it is
    not allowed to mask (per the paper's fault model) and terminated
    the study in a well-defined state instead of hanging or producing
    a divergent answer.
    """


class MemberUnresponsiveError(ResilienceError):
    """A member stayed unreachable past the retry budget and was evicted.

    GenDPR makes no liveness guarantee for non-responsive members
    (Section 4): the study aborts with a structured failure report
    (see the ``report`` attribute, a
    :class:`~repro.core.resilience.FailureReport`) identifying the
    member, the phase round and the attempts made.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class LeaderFailoverError(ResilienceError):
    """Leader recovery was attempted but could not restore the study.

    Raised when the leader enclave keeps crashing past the configured
    failover budget, or when a replacement cannot be provisioned.
    """


# ---------------------------------------------------------------------------
# Byzantine integrity
# ---------------------------------------------------------------------------


class IntegrityError(ResilienceError):
    """Base class for detected Byzantine-host integrity violations.

    Crash faults are masked (retried, failed over); *integrity* faults —
    an untrusted host playing valid frames adversarially — are detected
    and the study aborts in a well-defined state rather than publishing
    a potentially divergent safe set.
    """


class EquivocationError(IntegrityError):
    """A leader broadcast was not byte-identical across followers.

    Detected by the broadcast-consistency echo round: followers exchange
    authenticated digests of the payload they ingested, and any adjacent
    pair disagreeing proves the broadcaster (or its host) equivocated.
    """

    def __init__(self, message: str, *, stage: str = "", reporter: str = "",
                 peer: str = ""):
        super().__init__(message)
        self.stage = stage
        self.reporter = reporter
        self.peer = peer


class TranscriptDivergenceError(IntegrityError):
    """Two channel endpoints disagree on their bidirectional frame history.

    Each attested channel folds every protected/opened frame into a
    running SHA-256 transcript; enclaves cross-check the digests at
    phase boundaries.  A mismatch means the untrusted transport withheld,
    reordered or spliced traffic in a way per-frame AEAD cannot see.
    """


class StaleCheckpointError(IntegrityError):
    """A sealed checkpoint older than the platform rollback counter.

    Sealed leader checkpoints bind a monotonic epoch into their AAD;
    a restore presenting an earlier epoch than the platform's counter
    is a rollback replay and is rejected instead of silently rewinding
    the study.
    """


# ---------------------------------------------------------------------------
# Static analysis
# ---------------------------------------------------------------------------


class LintError(ReproError):
    """Base class for failures of the static analyser (:mod:`repro.lint`)."""


class LintConfigError(LintError):
    """lint.toml, a baseline file or the CLI arguments are invalid."""


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class ObservabilityError(ReproError):
    """Misuse of the tracing/metrics subsystem (:mod:`repro.obs`).

    Raised for malformed trace/report documents, metric type conflicts
    and invalid histogram or quantile parameters — never on the
    disabled (null-sink) fast path, which cannot fail.
    """


# ---------------------------------------------------------------------------
# Service (repro.serve)
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for failures of the long-lived federation service."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a submission (queue at capacity).

    Backpressure is explicit: the service bounds its queue and rejects
    new studies with this classified error instead of accepting
    unbounded work and degrading every in-flight session.
    """


class StudyCancelledError(ServiceError):
    """A study session was cancelled by the client.

    Raised inside the session's protocol driver at the next round
    boundary after :meth:`~repro.serve.FederationService.cancel`, and
    surfaced from :meth:`~repro.serve.FederationService.result` for
    sessions that ended cancelled.
    """


class UnknownStudyError(ServiceError):
    """A service request referenced a study id it never accepted."""


# ---------------------------------------------------------------------------
# Fuzzing (repro.fuzz)
# ---------------------------------------------------------------------------


class FuzzError(ReproError):
    """Base class for failures of the chaos fuzzer (:mod:`repro.fuzz`)."""


class CorpusInvariantError(FuzzError):
    """The coverage-keyed corpus pool broke an internal invariant.

    Raised by the pool's hypofuzz-style ``_check_invariants`` pass
    after every mutation: a behaviour unit pointing at an evicted
    genome, a stored genome covering nothing, or a unit credited to a
    genome whose recorded behaviour never produced it.  Any of these
    means corpus deduplication can silently lose coverage, so the
    fuzzer fails closed instead.
    """
