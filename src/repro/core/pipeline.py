"""The verification pipeline as pure functions.

Every deployment of the three-phase verification — GenDPR's distributed
protocol, the centralized SecureGenome baseline and the naive
per-member scheme — must make *the same decisions given the same
aggregate inputs*; the paper's Table 4 is precisely the demonstration
that GenDPR's aggregation reconstructs the centralized inputs exactly
while the naive scheme's does not.

To make that equivalence structural rather than coincidental, the
decision logic lives here once, as pure functions over aggregate
values, and every deployment calls into it:

* :func:`ld_prune` — the adjacent-pair greedy walk of Phase 2, taking a
  caller-supplied moment source (the distributed leader fetches moments
  over channels; the baselines compute them from matrices they hold).
* :func:`run_local_pipeline` — all three phases over genotype matrices
  held locally; the centralized baseline *is* this function inside one
  enclave, the naive baseline runs it per member, and the tests use it
  as the ground-truth oracle for the distributed protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..errors import ProtocolError
from ..stats import chisq, ld, lr_test, maf

#: Moment source for the LD walk: (left, right, walk_position) -> moments.
MomentSource = Callable[[int, int, int], ld.PairMoments]


def ld_prune(
    retained: Sequence[int],
    ranking_pvalues: np.ndarray,
    get_moments: MomentSource,
    ld_cutoff: float,
) -> List[int]:
    """Phase 2's greedy adjacent-pair walk (paper Algorithm 1, lines 26-55).

    Walks the MAF-retained SNPs in panel order, comparing a running
    candidate with the next SNP: an independent pair (p-value above the
    cut-off) banks the candidate; a dependent pair keeps only the better
    chi-squared-ranked of the two as the new candidate, so of any run of
    mutually linked SNPs exactly one — the most significant — survives.

    Args:
        retained: the Phase 1 survivor list ``L'`` (ascending).
        ranking_pvalues: chi-squared ranking p-values indexed by SNP.
        get_moments: pooled correlation moments for a pair; the third
            argument is the walk position, which distributed callers use
            for prefetching.
        ld_cutoff: the dependence threshold on the r-squared p-value.
    """
    snps = list(retained)
    if len(snps) <= 1:
        return snps
    kept: List[int] = []
    candidate = snps[0]
    for position in range(1, len(snps)):
        nxt = snps[position]
        moments = get_moments(candidate, nxt, position)
        if ld.is_dependent(moments, ld_cutoff):
            candidate = chisq.most_ranked(candidate, nxt, ranking_pvalues)
        else:
            kept.append(candidate)
            candidate = nxt
    kept.append(candidate)
    return sorted(kept)


def matrix_moment_source(
    case_matrix: np.ndarray, reference_matrix: np.ndarray
) -> MomentSource:
    """Moment source over matrices held locally (baseline deployments)."""
    case = np.asarray(case_matrix)
    reference = np.asarray(reference_matrix)

    def get_moments(left: int, right: int, _position: int) -> ld.PairMoments:
        total = ld.PairMoments.zero()
        for population in (case, reference):
            col_left = population[:, left].astype(np.int64)
            col_right = population[:, right].astype(np.int64)
            mu_l = int(col_left.sum())
            mu_r = int(col_right.sum())
            total = total + ld.PairMoments(
                mu_l=mu_l,
                mu_r=mu_r,
                mu_lr=int((col_left & col_right).sum()),
                mu_l2=mu_l,
                mu_r2=mu_r,
                count=population.shape[0],
            )
        return total

    return get_moments


@dataclass(frozen=True)
class PipelineOutcome:
    """The three shrinking SNP sets plus the residual power."""

    l_prime: List[int]
    l_double_prime: List[int]
    l_safe: List[int]
    release_power: float

    def phase_counts(self) -> dict:
        return {
            "MAF": len(self.l_prime),
            "LD": len(self.l_double_prime),
            "LR": len(self.l_safe),
        }


def lr_ranking_order(
    columns: Sequence[int], ranking_pvalues: np.ndarray
) -> List[int]:
    """Column evaluation order for Phase 3: ascending ranking p-value.

    Stable sort so ties resolve by panel order — every deployment must
    use the same tie-break for the outcomes to match exactly.
    """
    ranked = np.asarray(ranking_pvalues, dtype=np.float64)[list(columns)]
    return [int(i) for i in np.argsort(ranked, kind="stable")]


def run_local_pipeline(
    case_matrix: np.ndarray,
    reference_matrix: np.ndarray,
    *,
    maf_cutoff: float,
    ld_cutoff: float,
    alpha: float,
    beta: float,
) -> PipelineOutcome:
    """All three phases over locally held genotype matrices.

    This is the SecureGenome verification as a pure function: the
    centralized baseline executes it inside one enclave over the pooled
    genomes; the naive baseline executes it per member over local
    shards; tests use it as the oracle the distributed protocol must
    match when given the full case population.
    """
    case = np.asarray(case_matrix)
    reference = np.asarray(reference_matrix)
    if case.ndim != 2 or reference.ndim != 2:
        raise ProtocolError("populations must be 2-D genotype matrices")
    if case.shape[1] != reference.shape[1]:
        raise ProtocolError("case and reference cover different SNP panels")
    n_case, num_snps = case.shape
    n_reference = reference.shape[0]

    # Phase 1: global MAF over the pooled case + reference population.
    case_counts = case.sum(axis=0, dtype=np.int64)
    reference_counts = reference.sum(axis=0, dtype=np.int64)
    frequencies = maf.allele_frequencies(
        maf.aggregate_counts([case_counts, reference_counts]),
        n_case + n_reference,
    )
    l_prime = maf.maf_filter(frequencies, maf_cutoff)

    # Phase 2: adjacent-pair LD pruning, chi-squared ranking as tie-break.
    ranking = chisq.rank_pvalues(
        case_counts, reference_counts, n_case, n_reference
    )
    l_double_prime = ld_prune(
        l_prime, ranking, matrix_moment_source(case, reference), ld_cutoff
    )

    # Phase 3: LR-test over the retained SNPs.
    if not l_double_prime:
        return PipelineOutcome(l_prime, l_double_prime, [], 0.0)
    case_freqs = case_counts[l_double_prime].astype(np.float64) / n_case
    ref_freqs = (
        reference_counts[l_double_prime].astype(np.float64) / n_reference
    )
    case_lr = lr_test.lr_matrix(case[:, l_double_prime], case_freqs, ref_freqs)
    ref_lr = lr_test.lr_matrix(
        reference[:, l_double_prime], case_freqs, ref_freqs
    )
    order = lr_ranking_order(l_double_prime, ranking)
    selection = lr_test.select_safe_subset(
        case_lr, ref_lr, order, alpha=alpha, beta=beta
    )
    l_safe = sorted(l_double_prime[c] for c in selection.selected_columns)
    return PipelineOutcome(
        l_prime=l_prime,
        l_double_prime=l_double_prime,
        l_safe=l_safe,
        release_power=selection.power,
    )
