"""Per-function def-use summaries and interprocedural taint propagation.

The propagator is a classic summary-based worklist analysis, tuned for
tractability over precision where the two conflict:

* **Labels.**  A taint set is a small ``frozenset`` of labels: concrete
  secret kinds (``genotype``, ``key``, …) minted at source calls, and
  symbolic ``param:<i>`` placeholders inside a summary.  At a call
  site, the callee's summary is *substituted* — ``param:<i>`` labels
  are replaced by the taints of the actual arguments — which is what
  makes the analysis interprocedural without reanalyzing callees per
  call site.
* **Intra-function.**  Flow-insensitive fixpoint over the statement
  list (assignments only ever *add* taint), so loops converge without
  a CFG.  Comparisons are treated as clean: one-bit decision flows
  (``count > threshold``) are the protocol's *outputs* and are audited
  at the declassification layer instead.
* **Interprocedural.**  Summaries are recomputed in deterministic
  order until a global fixpoint (callee summaries and class-attribute
  taints only ever grow, so termination is by height of the lattice,
  with a hard round cap as a backstop).
* **Objects.**  ``self.attr`` writes merge into a per-class attribute
  map shared across methods; containers are tainted wholesale.

Leaks recorded inside a summary may be *conditional* (taints are param
symbols — they fire only when a caller passes secrets in) or
*concrete* (a source reaches the sink inside the function).  Concrete
leaks anywhere in the final summaries become R6 findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..astutil import dotted_name
from ..rules import ModuleInfo
from .callgraph import CallGraph, CallSite, FunctionInfo, build_callgraph
from .model import TaintModel

Taint = FrozenSet[str]

EMPTY: Taint = frozenset()
PARAM_PREFIX = "param:"

#: Hard caps keeping pathological programs from blowing up the run.
MAX_GLOBAL_ROUNDS = 12
MAX_LOCAL_PASSES = 5
MAX_VIA = 6


def param_label(index: int) -> str:
    return f"{PARAM_PREFIX}{index}"


def concrete_kinds(taints: Taint) -> Taint:
    return frozenset(t for t in taints if not t.startswith(PARAM_PREFIX))


def symbolic_params(taints: Taint) -> Taint:
    return frozenset(t for t in taints if t.startswith(PARAM_PREFIX))


@dataclass(frozen=True)
class Site:
    """A source location the rules can turn into a finding."""

    module: str
    path: str
    line: int
    column: int
    content: str


def _site(module: ModuleInfo, node: ast.AST) -> Site:
    lineno = getattr(node, "lineno", 1)
    return Site(
        module=module.module,
        path=module.display_path,
        line=lineno,
        column=getattr(node, "col_offset", 0) + 1,
        content=module.line_content(lineno),
    )


@dataclass(frozen=True)
class LeakFlow:
    """Taint reaching a leak sink, possibly conditional on parameters."""

    sink_label: str
    sink_name: str
    site: Site
    taints: Taint
    #: Call chain from the summarized function down to the sink
    #: (qualnames), empty for a direct flow.
    via: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SourceCall:
    """A call site that mints a secret."""

    kind: str
    caller: str
    site: Site


@dataclass(frozen=True)
class DeclassCall:
    """A declassifier call site (audited by R8)."""

    target: str
    caller: str
    site: Site


@dataclass(frozen=True)
class BoundaryCrossing:
    """Tainted data returned across the enclave boundary (R7)."""

    callee: str
    caller: str
    kinds: Taint
    site: Site


@dataclass(frozen=True)
class FunctionSummary:
    """What one function does with taint, in terms of its parameters."""

    returns: Taint = EMPTY
    leaks: Tuple[LeakFlow, ...] = ()
    #: ``(class_qualname, attr)`` → taints written via ``self.attr``.
    attr_writes: Tuple[Tuple[Tuple[str, str], Taint], ...] = ()


@dataclass
class FlowResult:
    """Everything the flow rules and artifacts consume."""

    graph: CallGraph
    summaries: Dict[str, FunctionSummary]
    leaks: List[LeakFlow]
    source_calls: List[SourceCall]
    declass_calls: List[DeclassCall]
    crossings: List[BoundaryCrossing]
    rounds: int

    def tainted_functions(self) -> List[str]:
        return sorted(
            qualname
            for qualname, summary in self.summaries.items()
            if concrete_kinds(summary.returns)
        )


class _FunctionAnalyzer:
    """One intra-function pass: produces a fresh summary."""

    def __init__(
        self,
        fn: FunctionInfo,
        sites: List[CallSite],
        analysis: "FlowAnalysis",
    ):
        self.fn = fn
        self.analysis = analysis
        self.model = analysis.model
        self.env: Dict[str, Taint] = {}
        self.returns: Taint = EMPTY
        self.leaks: Dict[Tuple[str, int, Taint], LeakFlow] = {}
        self.attr_writes: Dict[Tuple[str, str], Taint] = {}
        self.sources: List[SourceCall] = []
        self.declass: List[DeclassCall] = []
        self._sites = {id(s.node): s for s in sites}
        params = fn.params
        for index, name in enumerate(params):
            self.env[name] = frozenset({param_label(index)})

    # -- driver --------------------------------------------------------------

    def run(self) -> FunctionSummary:
        body = getattr(self.fn.node, "body", [])
        for _ in range(MAX_LOCAL_PASSES):
            before = (dict(self.env), self.returns, dict(self.attr_writes))
            self.sources.clear()
            self.declass.clear()
            self.leaks.clear()
            for stmt in body:
                self._exec(stmt)
            after = (self.env, self.returns, self.attr_writes)
            if before == (after[0], after[1], after[2]):
                break
        return FunctionSummary(
            returns=self.returns,
            leaks=tuple(
                sorted(
                    self.leaks.values(),
                    key=lambda l: (l.site.path, l.site.line, l.sink_label),
                )
            ),
            attr_writes=tuple(
                sorted(
                    (key, taints) for key, taints in self.attr_writes.items()
                )
            ),
        )

    # -- statements ----------------------------------------------------------

    def _exec(self, stmt: ast.AST) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self._taint(stmt.value)
            for target in stmt.targets:
                self._bind(target, taints)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._taint(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taints = self._taint(stmt.value) | self._taint(stmt.target)
            self._bind(stmt.target, taints)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self._taint(stmt.value)
        elif isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, (ast.Yield, ast.YieldFrom)):
                if value.value is not None:
                    self.returns |= self._taint(value.value)
            else:
                self._taint(value)
        elif isinstance(stmt, ast.Raise):
            self._exec_raise(stmt)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._taint(stmt.test)
            for child in (*stmt.body, *stmt.orelse):
                self._exec(child)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._taint(stmt.iter))
            for child in (*stmt.body, *stmt.orelse):
                self._exec(child)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self._taint(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints)
            for child in stmt.body:
                self._exec(child)
        elif isinstance(stmt, ast.Try):
            bodies = [stmt.body, stmt.orelse, stmt.finalbody]
            bodies += [handler.body for handler in stmt.handlers]
            for body in bodies:
                for child in body:
                    self._exec(child)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs share the enclosing env (closure capture).
            for child in stmt.body:
                self._exec(child)
        elif isinstance(stmt, ast.ClassDef):
            for child in stmt.body:
                self._exec(child)
        elif isinstance(stmt, (ast.Assert, ast.Delete)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self._taint(value)

    def _exec_raise(self, stmt: ast.Raise) -> None:
        if stmt.exc is None:
            return
        taints = EMPTY
        if isinstance(stmt.exc, ast.Call):
            for arg in (*stmt.exc.args, *stmt.exc.keywords):
                value = arg.value if isinstance(arg, ast.keyword) else arg
                taints |= self._taint(value)
        else:
            taints = self._taint(stmt.exc)
        if taints and self.model.exception_sink:
            name = dotted_name(
                stmt.exc.func if isinstance(stmt.exc, ast.Call) else stmt.exc
            )
            self._record_leak(
                "exception", name or "<raise>", stmt, taints, via=()
            )

    def _bind(self, target: ast.AST, taints: Taint) -> None:
        if not taints:
            return
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(target.id, EMPTY) | taints
        elif isinstance(target, ast.Attribute):
            base = target.value
            if (
                isinstance(base, ast.Name)
                and base.id == "self"
                and self.fn.class_name
            ):
                key = (
                    f"{self.fn.module.module}.{self.fn.class_name}",
                    target.attr,
                )
                self.attr_writes[key] = (
                    self.attr_writes.get(key, EMPTY) | taints
                )
                local = f"self.{target.attr}"
                self.env[local] = self.env.get(local, EMPTY) | taints
            else:
                self._bind(base, taints)
        elif isinstance(target, ast.Subscript):
            self._bind(target.value, taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taints)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taints)

    # -- expressions ---------------------------------------------------------

    def _taint(self, node: ast.AST) -> Taint:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Attribute):
            if self.model.is_metadata_attr(node.attr):
                return EMPTY
            base = node.value
            if (
                isinstance(base, ast.Name)
                and base.id == "self"
                and self.fn.class_name
            ):
                cls = f"{self.fn.module.module}.{self.fn.class_name}"
                global_taint = self.analysis.attr_taint(cls, node.attr)
                return (
                    self.env.get(f"self.{node.attr}", EMPTY) | global_taint
                )
            return self._taint(base)
        if isinstance(node, ast.Subscript):
            return self._taint(node.value) | self._taint(node.slice)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Compare):
            # Decision bits are audited at the declassification layer.
            self._taint(node.left)
            for comparator in node.comparators:
                self._taint(comparator)
            return EMPTY
        if isinstance(node, ast.BoolOp):
            result = EMPTY
            for value in node.values:
                result |= self._taint(value)
            return result
        if isinstance(node, ast.BinOp):
            return self._taint(node.left) | self._taint(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._taint(node.operand)
        if isinstance(node, ast.IfExp):
            self._taint(node.test)
            return self._taint(node.body) | self._taint(node.orelse)
        if isinstance(node, (ast.JoinedStr, ast.List, ast.Tuple, ast.Set)):
            result = EMPTY
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    result |= self._taint(child)
            return result
        if isinstance(node, ast.FormattedValue):
            return self._taint(node.value)
        if isinstance(node, ast.Dict):
            result = EMPTY
            for key in node.keys:
                if key is not None:
                    result |= self._taint(key)
            for value in node.values:
                result |= self._taint(value)
            return result
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._comprehension(node)
        if isinstance(node, ast.NamedExpr):
            taints = self._taint(node.value)
            self._bind(node.target, taints)
            return taints
        if isinstance(node, ast.Starred):
            return self._taint(node.value)
        if isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
            if node.value is None:
                return EMPTY
            return self._taint(node.value)
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, ast.Slice):
            result = EMPTY
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    result |= self._taint(part)
            return result
        # Generic fallback: union over child expressions.
        result = EMPTY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                result |= self._taint(child)
        return result

    def _comprehension(self, node: ast.AST) -> Taint:
        for generator in node.generators:
            taints = self._taint(generator.iter)
            self._bind(generator.target, taints)
            for condition in generator.ifs:
                self._taint(condition)
        result = EMPTY
        if isinstance(node, ast.DictComp):
            result |= self._taint(node.key) | self._taint(node.value)
        else:
            result |= self._taint(node.elt)
        return result

    # -- calls ---------------------------------------------------------------

    def _call(self, node: ast.Call) -> Taint:
        site = self._sites.get(id(node))
        names: Tuple[str, ...] = site.names if site else ()
        model = self.model

        receiver = EMPTY
        if isinstance(node.func, ast.Attribute):
            receiver = self._taint(node.func.value)

        arg_taints: List[Taint] = [self._taint(arg) for arg in node.args]
        kw_taints: Dict[Optional[str], Taint] = {
            kw.arg: self._taint(kw.value) for kw in node.keywords
        }
        everything = receiver
        for taints in arg_taints:
            everything |= taints
        for taints in kw_taints.values():
            everything |= taints

        if names and model.is_clean_call(names):
            return EMPTY
        kind = model.source_kind(names) if names else None
        if kind is not None:
            self.sources.append(
                SourceCall(
                    kind=kind,
                    caller=self.fn.qualname,
                    site=_site(self.fn.module, node),
                )
            )
            return frozenset({kind})
        if names and model.is_declassifier(names):
            self.declass.append(
                DeclassCall(
                    target=names[-1],
                    caller=self.fn.qualname,
                    site=_site(self.fn.module, node),
                )
            )
            return EMPTY
        if names and model.is_sanctioned(names):
            return EMPTY
        label = model.leak_label(names) if names else None
        if label is not None:
            if everything:
                self._record_leak(label, names[0], node, everything, via=())
            return EMPTY

        if site and site.targets:
            return self._known_call(node, site, receiver, arg_taints, kw_taints)
        return everything

    def _known_call(
        self,
        node: ast.Call,
        site: CallSite,
        receiver: Taint,
        arg_taints: List[Taint],
        kw_taints: Dict[Optional[str], Taint],
    ) -> Taint:
        result = EMPTY
        unmapped = EMPTY
        for qualname in site.targets:
            info = self.analysis.graph.index.functions.get(qualname)
            summary = self.analysis.summaries.get(qualname)
            if info is None or summary is None:
                continue
            argmap, spill = self._argument_map(
                info, site, receiver, arg_taints, kw_taints
            )
            unmapped |= spill
            result |= self._substitute(summary.returns, argmap)
            # Lift the callee's conditional leaks into this summary.
            for leak in summary.leaks:
                params = symbolic_params(leak.taints)
                if not params:
                    continue  # already recorded globally by the callee
                lifted = self._substitute(params, argmap)
                lifted |= concrete_kinds(leak.taints)
                if lifted and len(leak.via) < MAX_VIA:
                    self._record_leak(
                        leak.sink_label,
                        leak.sink_name,
                        None,
                        lifted,
                        via=(qualname, *leak.via),
                        at=leak.site,
                    )
            # Lift constructor/method attribute writes into the class map.
            for (key, taints) in summary.attr_writes:
                written = self._substitute(taints, argmap)
                if concrete_kinds(written):
                    self.analysis.merge_attr(key, concrete_kinds(written))
        return result | unmapped

    def _argument_map(
        self,
        info: FunctionInfo,
        site: CallSite,
        receiver: Taint,
        arg_taints: List[Taint],
        kw_taints: Dict[Optional[str], Taint],
    ) -> Tuple[Dict[int, Taint], Taint]:
        """Map actual-argument taints onto callee parameter indices.

        Returns the map plus any tainted arguments that could not be
        mapped (starred args, ``**kwargs``) — the caller treats those
        conservatively as flowing straight to the result.
        """
        params = info.params
        argmap: Dict[int, Taint] = {}
        spill = EMPTY
        offset = 1 if info.is_method else 0
        if receiver and params:
            argmap[0] = receiver
        positional = arg_taints[site.arg_offset :]
        for position, taints in enumerate(positional):
            index = offset + position
            if index < len(params):
                argmap[index] = argmap.get(index, EMPTY) | taints
            else:
                spill |= taints
        for name, taints in kw_taints.items():
            if not taints:
                continue
            if name is not None and name in params:
                index = params.index(name)
                argmap[index] = argmap.get(index, EMPTY) | taints
            else:
                spill |= taints
        return argmap, spill

    @staticmethod
    def _substitute_one(
        label: str, argmap: Dict[int, Taint]
    ) -> Taint:
        if label.startswith(PARAM_PREFIX):
            index = int(label[len(PARAM_PREFIX) :])
            return argmap.get(index, EMPTY)
        return frozenset({label})

    def _substitute(self, taints: Taint, argmap: Dict[int, Taint]) -> Taint:
        result = EMPTY
        for label in taints:
            result |= self._substitute_one(label, argmap)
        return result

    def _record_leak(
        self,
        label: str,
        sink_name: str,
        node: Optional[ast.AST],
        taints: Taint,
        via: Tuple[str, ...],
        at: Optional[Site] = None,
    ) -> None:
        site = at if at is not None else _site(self.fn.module, node)
        key = (f"{site.path}:{site.line}:{label}", len(via), taints)
        existing = self.leaks.get(key)
        if existing is None or len(via) < len(existing.via):
            self.leaks[key] = LeakFlow(
                sink_label=label,
                sink_name=sink_name,
                site=site,
                taints=taints,
                via=via,
            )


class FlowAnalysis:
    """Whole-program driver: build the graph, iterate to fixpoint."""

    def __init__(self, modules: Iterable[ModuleInfo], model: TaintModel):
        self.modules = list(modules)
        self.model = model
        self.graph, self.call_sites = build_callgraph(
            self.modules, model.dispatchers
        )
        self.summaries: Dict[str, FunctionSummary] = {
            qualname: FunctionSummary()
            for qualname in self.graph.index.functions
        }
        self._class_attrs: Dict[Tuple[str, str], Taint] = {}
        self._attrs_changed = False
        self._sources: Dict[str, List[SourceCall]] = {}
        self._declass: Dict[str, List[DeclassCall]] = {}

    # -- shared state used by the per-function analyzers ---------------------

    def attr_taint(self, cls: str, attr: str) -> Taint:
        return self._class_attrs.get((cls, attr), EMPTY)

    def merge_attr(self, key: Tuple[str, str], taints: Taint) -> None:
        previous = self._class_attrs.get(key, EMPTY)
        merged = previous | taints
        if merged != previous:
            self._class_attrs[key] = merged
            self._attrs_changed = True

    # -- driver --------------------------------------------------------------

    def run(self) -> FlowResult:
        order = sorted(self.graph.index.functions)
        rounds = 0
        for rounds in range(1, MAX_GLOBAL_ROUNDS + 1):
            changed = False
            self._attrs_changed = False
            for qualname in order:
                fn = self.graph.index.functions[qualname]
                analyzer = _FunctionAnalyzer(
                    fn, self.call_sites.get(qualname, []), self
                )
                summary = analyzer.run()
                # Seed the class-attribute map from concrete writes.
                for key, taints in summary.attr_writes:
                    self.merge_attr(key, concrete_kinds(taints))
                self._sources[qualname] = list(analyzer.sources)
                self._declass[qualname] = list(analyzer.declass)
                if summary != self.summaries[qualname]:
                    self.summaries[qualname] = summary
                    changed = True
            if not changed and not self._attrs_changed:
                break
        return self._extract(rounds)

    # -- extraction ----------------------------------------------------------

    def _boundary_modules(self) -> Set[str]:
        return {
            module.module
            for module in self.modules
            if self.model.boundary_scope in module.scopes
        }

    def _extract(self, rounds: int) -> FlowResult:
        leaks: Dict[Tuple[str, int, str, Taint], LeakFlow] = {}
        for qualname in sorted(self.summaries):
            for leak in self.summaries[qualname].leaks:
                kinds = concrete_kinds(leak.taints)
                if not kinds:
                    continue
                key = (leak.site.path, leak.site.line, leak.sink_label, kinds)
                flow = replace(leak, taints=kinds)
                existing = leaks.get(key)
                if existing is None or len(flow.via) < len(existing.via):
                    leaks[key] = flow

        source_calls = [
            call
            for qualname in sorted(self._sources)
            for call in self._sources[qualname]
        ]
        declass_calls = [
            call
            for qualname in sorted(self._declass)
            for call in self._declass[qualname]
        ]

        crossings = self._find_crossings()
        return FlowResult(
            graph=self.graph,
            summaries=self.summaries,
            leaks=sorted(
                leaks.values(), key=lambda l: (l.site.path, l.site.line)
            ),
            source_calls=source_calls,
            declass_calls=declass_calls,
            crossings=crossings,
            rounds=rounds,
        )

    def _find_crossings(self) -> List[BoundaryCrossing]:
        boundary = self._boundary_modules()
        if not boundary:
            return []
        crossings: Dict[Tuple[str, int, str], BoundaryCrossing] = {}
        functions = self.graph.index.functions
        for caller_qualname in sorted(self.call_sites):
            caller = functions.get(caller_qualname)
            if caller is None or caller.module.module in boundary:
                continue
            for site in self.call_sites[caller_qualname]:
                if site.names and (
                    self.model.is_declassifier(site.names)
                    or self.model.is_sanctioned(site.names)
                ):
                    continue
                crossing_kinds = EMPTY
                callee_name = None
                for target in site.targets:
                    info = functions.get(target)
                    if info is None or info.module.module not in boundary:
                        continue
                    if self.model.is_declared_ecall_result(target):
                        continue
                    if self.model.is_sanctioned((target,)):
                        continue
                    summary = self.summaries.get(target)
                    if summary is None:
                        continue
                    kinds = concrete_kinds(summary.returns)
                    if kinds:
                        crossing_kinds |= kinds
                        callee_name = target
                if not crossing_kinds:
                    # Direct source calls from outside the boundary are
                    # crossings too (e.g. unsealing a checkpoint from
                    # untrusted orchestration code).
                    kind = self.model.source_kind(site.names)
                    if kind is not None and any(
                        pattern.startswith(module + ".")
                        for module in boundary
                        for pattern in self.model.sources
                        if self.model.source_kind((pattern,)) == kind
                        and any(
                            _matches_site(pattern, name)
                            for name in site.names
                        )
                    ):
                        crossing_kinds = frozenset({kind})
                        callee_name = site.names[-1]
                if crossing_kinds and callee_name is not None:
                    place = _site(caller.module, site.node)
                    key = (place.path, place.line, callee_name)
                    crossings[key] = BoundaryCrossing(
                        callee=callee_name,
                        caller=caller_qualname,
                        kinds=crossing_kinds,
                        site=place,
                    )
        return sorted(
            crossings.values(), key=lambda c: (c.site.path, c.site.line)
        )


def _matches_site(pattern: str, name: str) -> bool:
    if pattern.endswith("*"):
        return name.startswith(pattern[:-1])
    return name == pattern


#: Small per-process cache so R6/R7/R8 share one analysis per engine
#: run (keyed on module identity + model identity).
_CACHE: Dict[Tuple[Tuple[int, ...], Tuple[object, ...]], FlowResult] = {}
_CACHE_LIMIT = 8


def analyze(
    modules: Iterable[ModuleInfo], model: TaintModel
) -> FlowResult:
    """Run (or reuse) the whole-program analysis for these modules."""
    module_list = list(modules)
    key = (tuple(id(m) for m in module_list), model.cache_key())
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    result = FlowAnalysis(module_list, model).run()
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.clear()
    _CACHE[key] = result
    return result
