"""The naive distributed baseline (paper Section 7.3).

"In the naive approach, each GDO computes the LD and LR-test
independently (relying only on their local dataset) and shares an
encrypted vector of selected SNP indexes, of which the leader computes
an intersection and outputs as safe only mutually chosen SNPs."

Each member therefore runs the *same* per-phase decision functions as
GenDPR, but over its **local** case shard (plus the public reference
set) instead of globally aggregated statistics.  Per phase, the leader
intersects the members' locally retained lists and broadcasts the
result as the next phase's input — so the paper's observation can be
reproduced exactly: the MAF intersection usually matches the global
filter, while LD and LR decisions based on local shards diverge and
select a smaller, partly disjoint (and hence unsafe-to-trust) set.

Because this baseline exists to compare *outcomes* (Table 4), it is
implemented as plain computation over the shards rather than through
the enclave machinery; the message pattern it would generate (one index
vector per member per phase) is accounted analytically in
:func:`naive_traffic_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..config import StudyConfig
from ..errors import ProtocolError
from ..genomics.partition import LocalDataset
from ..genomics.population import Cohort
from ..stats import chisq, lr_test, maf
from . import pipeline


@dataclass(frozen=True)
class NaiveResult:
    """Per-phase intersections of the naive scheme."""

    l_prime: List[int]
    l_double_prime: List[int]
    l_safe: List[int]
    #: Each member's local selections, keyed by GDO id, per phase.
    local_prime: Dict[str, List[int]]
    local_double_prime: Dict[str, List[int]]
    local_safe: Dict[str, List[int]]

    def phase_counts(self) -> Dict[str, int]:
        return {
            "MAF": len(self.l_prime),
            "LD": len(self.l_double_prime),
            "LR": len(self.l_safe),
        }


def _intersect(per_member: Dict[str, List[int]]) -> List[int]:
    sets = [set(v) for v in per_member.values()]
    if not sets:
        return []
    return sorted(set.intersection(*sets))


def run_naive_study(
    cohort: Cohort, config: StudyConfig, datasets: Sequence[LocalDataset]
) -> NaiveResult:
    """Run the naive per-member verification with per-phase intersection."""
    if not datasets:
        raise ProtocolError("need at least one member")
    if config.snp_count != cohort.num_snps:
        raise ProtocolError("config and cohort disagree on the SNP panel")
    thresholds = config.thresholds
    reference = cohort.reference.array()
    ref_counts = cohort.reference.allele_counts()
    n_ref = cohort.reference.num_individuals

    # Phase 1: each member filters on its *local* MAF; intersect.
    local_prime: Dict[str, List[int]] = {}
    rankings: Dict[str, np.ndarray] = {}
    for dataset in datasets:
        case_counts = dataset.case.allele_counts()
        n_case = dataset.num_case
        frequencies = maf.allele_frequencies(
            maf.aggregate_counts([case_counts, ref_counts]), n_case + n_ref
        )
        local_prime[dataset.gdo_id] = maf.maf_filter(
            frequencies, thresholds.maf_cutoff
        )
        rankings[dataset.gdo_id] = chisq.rank_pvalues(
            case_counts, ref_counts, n_case, n_ref
        )
    l_prime = _intersect(local_prime)

    # Phase 2: each member prunes LD over the intersected list using only
    # its local shard (plus the public reference); intersect.
    local_double_prime: Dict[str, List[int]] = {}
    for dataset in datasets:
        source = pipeline.matrix_moment_source(dataset.case.array(), reference)
        local_double_prime[dataset.gdo_id] = pipeline.ld_prune(
            l_prime,
            rankings[dataset.gdo_id],
            source,
            thresholds.ld_cutoff,
        )
    l_double_prime = _intersect(local_double_prime)

    # Phase 3: each member runs the LR-test with its *local* case
    # frequencies — the incorrect step GenDPR's broadcast fixes.
    local_safe: Dict[str, List[int]] = {}
    for dataset in datasets:
        if not l_double_prime:
            local_safe[dataset.gdo_id] = []
            continue
        case = dataset.case.array()
        n_case = dataset.num_case
        case_freqs = (
            case[:, l_double_prime].sum(axis=0, dtype=np.int64).astype(np.float64)
            / n_case
        )
        ref_freqs = ref_counts[l_double_prime].astype(np.float64) / n_ref
        case_lr = lr_test.lr_matrix(
            case[:, l_double_prime], case_freqs, ref_freqs
        )
        ref_lr = lr_test.lr_matrix(
            reference[:, l_double_prime], case_freqs, ref_freqs
        )
        order = pipeline.lr_ranking_order(
            l_double_prime, rankings[dataset.gdo_id]
        )
        selection = lr_test.select_safe_subset(
            case_lr,
            ref_lr,
            order,
            alpha=thresholds.false_positive_rate,
            beta=thresholds.power_threshold,
        )
        local_safe[dataset.gdo_id] = sorted(
            l_double_prime[c] for c in selection.selected_columns
        )
    l_safe = _intersect(local_safe)

    return NaiveResult(
        l_prime=l_prime,
        l_double_prime=l_double_prime,
        l_safe=l_safe,
        local_prime=local_prime,
        local_double_prime=local_double_prime,
        local_safe=local_safe,
    )


def naive_traffic_bytes(result: NaiveResult, num_members: int) -> int:
    """Bytes the naive scheme's index-vector exchanges would move.

    One 32-bit index per selected SNP per member per phase, leader
    broadcasts of the intersections back, matching the paper's sizing
    convention (4 bytes per SNP index).
    """
    per_member = 4 * (
        sum(len(v) for v in result.local_prime.values())
        + sum(len(v) for v in result.local_double_prime.values())
        + sum(len(v) for v in result.local_safe.values())
    )
    broadcasts = (
        4
        * (num_members - 1)
        * (len(result.l_prime) + len(result.l_double_prime) + len(result.l_safe))
    )
    return per_member + broadcasts
