"""Serialization codec and simulated network."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import NetworkProfile
from repro.errors import NetworkError, SerializationError, UnknownPeerError
from repro.net import (
    Envelope,
    LinkStats,
    SimulatedNetwork,
    decode,
    encode,
    encoded_size,
)


class TestSerialization:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**100,
            -(2**100),
            3.14,
            float("inf"),
            "",
            "unicode ünïcode",
            b"",
            b"bytes",
            [],
            [1, "two", None],
            (1, 2),
            {},
            {"a": 1, "b": [True, {"c": b"x"}]},
        ],
    )
    def test_roundtrip_scalars_and_containers(self, value):
        assert decode(encode(value)) == value

    def test_roundtrip_preserves_types(self):
        assert decode(encode((1, 2))) == (1, 2)
        assert isinstance(decode(encode((1, 2))), tuple)
        assert isinstance(decode(encode([1, 2])), list)
        assert decode(encode(True)) is True
        assert decode(encode(1)) == 1 and decode(encode(1)) is not True

    @pytest.mark.parametrize(
        "dtype", [np.uint8, np.int64, np.float64, np.float32]
    )
    def test_roundtrip_arrays(self, dtype):
        array = np.arange(24, dtype=dtype).reshape(4, 6)
        out = decode(encode(array))
        assert out.dtype == array.dtype
        assert np.array_equal(out, array)

    def test_roundtrip_empty_and_0d_arrays(self):
        empty = np.zeros((0, 5), dtype=np.int64)
        assert decode(encode(empty)).shape == (0, 5)
        scalar = np.array(3.5)
        assert decode(encode(scalar)).shape == ()

    def test_noncontiguous_array(self):
        array = np.arange(24, dtype=np.int64).reshape(4, 6)[:, ::2]
        assert np.array_equal(decode(encode(array)), array)

    def test_dict_key_order_canonical(self):
        assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})

    def test_numpy_scalars_coerce(self):
        assert decode(encode(np.int64(7))) == 7
        assert decode(encode(np.float64(2.5))) == 2.5

    def test_rejects_unknown_types(self):
        with pytest.raises(SerializationError):
            encode(object())

    def test_rejects_non_string_dict_keys(self):
        with pytest.raises(SerializationError):
            encode({1: "x"})

    def test_rejects_trailing_bytes(self):
        with pytest.raises(SerializationError):
            decode(encode(1) + b"\x00")

    def test_rejects_truncation(self):
        data = encode([1, 2, 3])
        with pytest.raises(SerializationError):
            decode(data[:-1])

    def test_rejects_deep_nesting(self):
        value: list = []
        for _ in range(100):
            value = [value]
        with pytest.raises(SerializationError):
            encode(value)

    def test_encoded_size(self):
        assert encoded_size({"x": 1}) == len(encode({"x": 1}))

    json_like = st.recursive(
        st.none()
        | st.booleans()
        | st.integers(min_value=-(2**64), max_value=2**64)
        | st.floats(allow_nan=False)
        | st.text(max_size=20)
        | st.binary(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=20,
    )

    @given(json_like)
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, value):
        assert decode(encode(value)) == value


class TestSimulatedNetwork:
    def _net(self, profile=None):
        net = SimulatedNetwork(profile)
        net.register("a")
        net.register("b")
        net.register("c")
        return net

    def test_send_receive(self):
        net = self._net()
        net.send(Envelope(sender="a", receiver="b", tag="t", body=b"x"))
        envelope = net.receive("b", "t")
        assert envelope.body == b"x"
        assert envelope.sender == "a"

    def test_fifo_per_receiver(self):
        net = self._net()
        for i in range(5):
            net.send(Envelope("a", "b", "t", str(i).encode()))
        assert [net.receive("b").body for _ in range(5)] == [
            str(i).encode() for i in range(5)
        ]

    def test_tag_mismatch(self):
        net = self._net()
        net.send(Envelope("a", "b", "t1", b""))
        with pytest.raises(NetworkError):
            net.receive("b", "t2")

    def test_tag_mismatch_preserves_inbox(self):
        net = self._net()
        net.send(Envelope("a", "b", "t1", b"payload"))
        with pytest.raises(NetworkError):
            net.receive("b", "t2")
        # The mismatched envelope is peeked, not consumed: the correct
        # receive still succeeds afterwards.
        assert net.pending("b") == 1
        assert net.receive("b", "t1").body == b"payload"
        assert net.pending("b") == 0

    def test_tag_mismatch_reports_pending_tags(self):
        net = self._net()
        net.send(Envelope("a", "b", "t1", b""))
        net.send(Envelope("c", "b", "t3", b""))
        with pytest.raises(NetworkError, match="t1.*t3"):
            net.receive("b", "t2")

    def test_empty_inbox(self):
        with pytest.raises(NetworkError):
            self._net().receive("a")

    def test_unknown_nodes(self):
        net = self._net()
        with pytest.raises(UnknownPeerError):
            net.send(Envelope("a", "nope", "t", b""))
        with pytest.raises(UnknownPeerError):
            net.receive("nope")

    def test_duplicate_registration(self):
        net = self._net()
        with pytest.raises(NetworkError):
            net.register("a")

    def test_self_send_rejected(self):
        net = self._net()
        with pytest.raises(NetworkError):
            net.send(Envelope("a", "a", "t", b""))

    def test_broadcast_skips_sender(self):
        net = self._net()
        count = net.broadcast("a", ["a", "b", "c"], "t", b"hello")
        assert count == 2
        assert net.pending("b") == 1 and net.pending("c") == 1
        assert net.pending("a") == 0

    def test_drain(self):
        net = self._net()
        for _ in range(3):
            net.send(Envelope("a", "b", "t", b"x"))
        assert len(net.drain("b", "t", 3)) == 3

    def test_partition_and_heal(self):
        net = self._net()
        net.partition("b")
        with pytest.raises(NetworkError):
            net.send(Envelope("a", "b", "t", b""))
        with pytest.raises(NetworkError):
            net.send(Envelope("b", "a", "t", b""))
        net.heal("b")
        net.send(Envelope("a", "b", "t", b""))
        assert net.pending("b") == 1

    def test_link_stats_merge(self):
        net = self._net()
        net.send(Envelope("a", "b", "t", bytes(100)))
        net.send(Envelope("b", "c", "t", bytes(50)))
        ab = net.link_stats("a", "b")
        bc = net.link_stats("b", "c")
        merged = LinkStats()
        assert merged.merge(ab) is merged  # chains
        merged.merge(bc)
        assert merged.messages == ab.messages + bc.messages
        assert merged.payload_bytes == ab.payload_bytes + bc.payload_bytes
        assert merged.wire_bytes == ab.wire_bytes + bc.wire_bytes
        total = net.total_stats()
        assert (total.messages, total.payload_bytes, total.wire_bytes) == (
            merged.messages, merged.payload_bytes, merged.wire_bytes
        )

    def test_links_view(self):
        net = self._net()
        net.send(Envelope("a", "b", "t", bytes(10)))
        links = net.links()
        assert set(links) == {("a", "b")}
        assert links[("a", "b")].messages == 1

    def test_traffic_accounting(self):
        net = self._net()
        net.send(Envelope("a", "b", "t", bytes(100)))
        net.send(Envelope("a", "b", "t", bytes(50)))
        stats = net.link_stats("a", "b")
        assert stats.messages == 2
        assert stats.payload_bytes == 150
        assert stats.wire_bytes > 150
        total = net.total_stats()
        assert total.messages == 2
        assert ("a", "b") in net.traffic_matrix()

    def test_simulated_clock(self):
        profile = NetworkProfile(latency_s=0.01, bandwidth_bytes_per_s=1000)
        net = self._net(profile)
        net.send(Envelope("a", "b", "t", bytes(100)))
        # latency + size/bandwidth, with headers adding a little
        assert net.simulated_time > 0.01 + 100 / 1000

    def test_zero_profile_clock(self):
        net = self._net()
        net.send(Envelope("a", "b", "t", bytes(100)))
        assert net.simulated_time == 0.0

    def test_nodes_sorted(self):
        assert self._net().nodes() == ["a", "b", "c"]

    def test_heal_unknown_node_rejected(self):
        with pytest.raises(UnknownPeerError):
            self._net().heal("nope")

    def test_heal_is_idempotent_for_known_nodes(self):
        net = self._net()
        net.heal("a")  # never partitioned: a no-op, not an error
        net.partition("a")
        net.heal("a")
        net.heal("a")
        net.send(Envelope("a", "b", "t", b""))

    def test_broadcast_is_atomic_on_partitioned_target(self):
        net = self._net()
        net.partition("c")
        with pytest.raises(NetworkError):
            net.broadcast("a", ["b", "c"], "t", b"x")
        # Validation precedes delivery: "b" saw nothing.
        assert net.pending("b") == 0

    def test_broadcast_is_atomic_on_unknown_target(self):
        net = self._net()
        with pytest.raises(UnknownPeerError):
            net.broadcast("a", ["b", "nope"], "t", b"x")
        assert net.pending("b") == 0

    def test_drain_restores_inbox_on_failure(self):
        net = self._net()
        for i in range(3):
            net.send(Envelope("a", "b", "t", str(i).encode()))
        net.send(Envelope("a", "b", "other", b"odd one out"))
        with pytest.raises(NetworkError):
            net.drain("b", "t", 4)
        # All-or-nothing: the three popped envelopes went back, in order.
        assert net.pending("b") == 4
        assert [e.body for e in net.drain("b", "t", 3)] == [b"0", b"1", b"2"]

    def test_drain_restores_inbox_when_short(self):
        net = self._net()
        net.send(Envelope("a", "b", "t", b"only"))
        with pytest.raises(NetworkError):
            net.drain("b", "t", 2)
        assert net.pending("b") == 1

    def test_advance_clock(self):
        net = self._net()
        assert net.advance_clock(1.5) == 1.5
        assert net.simulated_time == 1.5
        with pytest.raises(NetworkError):
            net.advance_clock(-0.1)

    def test_flush_discards_pending(self):
        net = self._net()
        for _ in range(3):
            net.send(Envelope("a", "b", "t", b"x"))
        assert net.flush("b") == 3
        assert net.pending("b") == 0
        with pytest.raises(UnknownPeerError):
            net.flush("nope")


def test_network_profile_validation():
    with pytest.raises(Exception):
        NetworkProfile(latency_s=-1)
    with pytest.raises(Exception):
        NetworkProfile(bandwidth_bytes_per_s=0)
    assert NetworkProfile(latency_s=0.5).transfer_time(10) == 0.5


class TestScopedNetwork:
    def _scoped(self, profile=None):
        net = SimulatedNetwork(profile)
        alpha = net.scope("alpha")
        beta = net.scope("beta")
        for scope in (alpha, beta):
            scope.register("a")
            scope.register("b")
        return net, alpha, beta

    def test_same_logical_ids_are_isolated(self):
        _, alpha, beta = self._scoped()
        alpha.send(Envelope("a", "b", "t", b"from-alpha"))
        beta.send(Envelope("a", "b", "t", b"from-beta"))
        assert alpha.receive("b", "t").body == b"from-alpha"
        assert beta.receive("b", "t").body == b"from-beta"
        assert alpha.pending("b") == 0 and beta.pending("b") == 0

    def test_envelopes_keep_logical_ids(self):
        _, alpha, _ = self._scoped()
        alpha.send(Envelope("a", "b", "t", b"x"))
        envelope = alpha.receive("b")
        assert envelope.sender == "a" and envelope.receiver == "b"

    def test_scoped_nodes_and_flush(self):
        net, alpha, beta = self._scoped()
        assert sorted(alpha.nodes()) == ["a", "b"]
        assert sorted(net.nodes()) == [
            "alpha//a", "alpha//b", "beta//a", "beta//b"
        ]
        alpha.send(Envelope("a", "b", "t", b"x"))
        beta.send(Envelope("a", "b", "t", b"y"))
        assert alpha.flush("b") == 1
        assert beta.pending("b") == 1

    def test_per_scope_clock_isolation(self):
        profile = NetworkProfile(latency_s=1.0)
        net, alpha, beta = self._scoped(profile)
        alpha.send(Envelope("a", "b", "t", b"x"))
        assert alpha.simulated_time == pytest.approx(1.0)
        assert beta.simulated_time == 0.0
        # Retry backoff on one session's clock must not leak.
        beta.advance_clock(5.0)
        assert alpha.simulated_time == pytest.approx(1.0)
        assert beta.simulated_time == pytest.approx(5.0)
        # The shared router accrues transfer time from every scope.
        assert net.simulated_time == pytest.approx(1.0)

    def test_concurrent_drain_is_atomic(self):
        net, alpha, beta = self._scoped()
        for index in range(4):
            alpha.send(Envelope("a", "b", "t", str(index).encode()))
            beta.send(Envelope("a", "b", "t", str(index).encode()))
        assert [e.body for e in alpha.drain("b", "t", 4)] == [
            str(i).encode() for i in range(4)
        ]
        assert len(beta.drain("b", "t", 4)) == 4

    def test_namespace_separator_rejected(self):
        net = SimulatedNetwork()
        with pytest.raises(NetworkError):
            net.register("x//y")
        with pytest.raises(NetworkError):
            net.scope("")
        scope = net.scope("s")
        with pytest.raises(NetworkError):
            net.scope("s")
        with pytest.raises(NetworkError):
            scope.register("a//b")

    def test_release_scope_drops_namespace(self):
        net, alpha, beta = self._scoped()
        alpha.send(Envelope("a", "b", "t", b"x"))
        net.release_scope(alpha)
        assert sorted(net.nodes()) == ["beta//a", "beta//b"]
        # The namespace is reusable after release.
        again = net.scope("alpha")
        again.register("a")
        assert again.pending("a") == 0

    def test_scope_link_stats_are_per_scope(self):
        _, alpha, beta = self._scoped()
        alpha.send(Envelope("a", "b", "t", b"payload"))
        assert ("a", "b") in alpha.links()
        assert beta.links() == {} or ("a", "b") not in beta.links()
        stats = alpha.link_stats("a", "b")
        assert stats.messages == 1
