"""Centralized baseline: SecureGenome inside a single TEE.

The paper compares GenDPR against "a centralized approach that runs
SecureGenome inside a centralized TEE enclave".  In that deployment the
federation members outsource their *entire encrypted genome datasets*
to one central enclave, which pools them and runs the three-phase
verification locally — the architecture GenDPR exists to avoid, both
for GDPR reasons and because it ships gigabytes of genomes instead of
kilobyte vectors.

The implementation reuses the same enclave/channel machinery: every
member runs a :class:`CentralizedEnclave` in "uploader" role, the
central site runs the same class in "verifier" role (one trusted
codebase, so mutual attestation works), and the verifier executes
:func:`repro.core.pipeline.run_local_pipeline` over the pooled matrix —
byte-for-byte the same decision logic GenDPR distributes.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..config import StudyConfig
from ..crypto.rng import DeterministicRng
from ..crypto.signing import MacSigner
from ..errors import PhaseOrderError, ProtocolError, TEEError
from ..genomics.partition import LocalDataset
from ..genomics.population import Cohort
from ..genomics.vcf import SignedMatrix
from ..net import Envelope, SimulatedNetwork, serialization
from ..tee.attestation import AttestationService
from ..tee.channel import ChannelEndpoint, establish_channel
from ..tee.enclave import Enclave, ecall
from ..tee.storage import ColumnReader, SealedColumnStore, seal_matrix
from . import pipeline
from .phases import StudyResult
from .timing import (
    DATA_AGGREGATION,
    INDEXING,
    LD_ANALYSIS,
    LR_ANALYSIS,
    PhaseClock,
    PhaseTimings,
)

_CENTER_ID = "center"


class CentralizedEnclave(Enclave):
    """Uploader/verifier trusted module of the centralized deployment."""

    CODE_VERSION = "1"

    def __init__(
        self, platform_key: bytes, enclave_id: str, data_auth_key: bytes, rng=None
    ):
        super().__init__(platform_key, enclave_id, rng=rng)
        self._data_signer = MacSigner(data_auth_key, purpose="vcf-dataset")
        self._channels: Dict[str, ChannelEndpoint] = {}
        self._params: Optional[Dict[str, Any]] = None
        self._pooled: Dict[str, np.ndarray] = {}
        self._reference: Optional[np.ndarray] = None
        self._outcome: Optional[pipeline.PipelineOutcome] = None
        self._audit_log: List[Dict[str, Any]] = []

    def install_channel(self, endpoint: ChannelEndpoint) -> None:
        if endpoint.local_id != self.enclave_id:
            raise TEEError("endpoint does not belong to this enclave")
        self._channels[endpoint.peer_id] = endpoint

    def _config(self) -> Dict[str, Any]:
        if self._params is None:
            raise PhaseOrderError("enclave is not configured")
        return self._params

    @ecall
    def configure(self, params: Dict[str, Any]) -> None:
        for key in ("snp_count", "maf_cutoff", "ld_cutoff", "alpha", "beta"):
            if key not in params:
                raise ProtocolError(f"missing configuration key {key!r}")
        self._params = dict(params)

    # -- Member (uploader) side --------------------------------------------------

    @ecall
    def load_local_dataset(self, signed_dataset) -> SealedColumnStore:
        config = self._config()
        if isinstance(signed_dataset, SignedMatrix):
            matrix = signed_dataset.open_verified(self._data_signer)
        else:
            _panel, matrix = signed_dataset.open_verified(self._data_signer)
        if matrix.num_snps != config["snp_count"]:
            raise ProtocolError("dataset does not match the study panel")
        return seal_matrix(self, matrix.array(), label="case")

    @ecall
    def export_genomes(self, store: SealedColumnStore) -> bytes:
        """Encrypt the member's full genome matrix for the central enclave.

        This is the outsourcing step GenDPR eliminates; the audit entry
        records that genome rows leave the premises (encrypted).
        """
        rows = []
        with ColumnReader(self, store) as reader:
            matrix = reader.columns(list(range(store.num_cols)))
        payload = {"gdo": self.enclave_id, "genomes": matrix}
        raw = serialization.encode(payload)
        self._audit_log.append(
            {
                "peer": _CENTER_ID,
                "kind": "genomes",
                "plaintext_bytes": len(raw),
                "genotype_rows": store.num_rows,
            }
        )
        return self._channels[_CENTER_ID].protect(raw, kind=b"genomes")

    # -- Center (verifier) side ----------------------------------------------------

    @ecall
    def ingest_genomes(self, member_id: str, frame: bytes) -> None:
        raw = self._channels[member_id].open(frame, kind=b"genomes")
        payload = serialization.decode(raw)
        matrix = np.asarray(payload["genomes"], dtype=np.uint8)
        if matrix.ndim != 2 or matrix.shape[1] != self._config()["snp_count"]:
            raise ProtocolError(f"bad genome matrix from {member_id}")
        self._pooled[member_id] = matrix
        self.meter.register_buffer(f"pooled/{member_id}", matrix.nbytes)

    @ecall
    def load_reference_matrix(self, raw: bytes, num_rows: int) -> None:
        num_snps = self._config()["snp_count"]
        if num_rows <= 0 or len(raw) != num_rows * num_snps:
            raise ProtocolError("reference matrix has inconsistent size")
        self._reference = (
            np.frombuffer(raw, dtype=np.uint8).reshape(num_rows, num_snps).copy()
        )
        self.meter.register_buffer("reference", self._reference.nbytes)

    @ecall
    def pool(self) -> int:
        """Stack member matrices (sorted member order); returns row count."""
        if not self._pooled:
            raise PhaseOrderError("no genomes ingested")
        self._case = np.vstack(
            [self._pooled[m] for m in sorted(self._pooled)]
        )
        self.meter.register_buffer("pooled/all", self._case.nbytes)
        return int(self._case.shape[0])

    @ecall
    def run_phase(self, phase: str) -> List[int]:
        """Run one verification phase over the pooled data.

        Phases must run in order ("maf", "ld", "lr"); each returns its
        retained SNP list.  Splitting per-phase lets the harness time
        them separately, as the paper's figures do.
        """
        if self._reference is None:
            raise PhaseOrderError("reference population not loaded")
        if not hasattr(self, "_case"):
            raise PhaseOrderError("genomes not pooled")
        config = self._config()
        if phase == "maf":
            from ..stats import maf as maf_stats

            case_counts = self._case.sum(axis=0, dtype=np.int64)
            ref_counts = self._reference.sum(axis=0, dtype=np.int64)
            frequencies = maf_stats.allele_frequencies(
                maf_stats.aggregate_counts([case_counts, ref_counts]),
                self._case.shape[0] + self._reference.shape[0],
            )
            self._case_counts = case_counts
            self._ref_counts = ref_counts
            self._l_prime = maf_stats.maf_filter(
                frequencies, config["maf_cutoff"]
            )
            return list(self._l_prime)
        if phase == "ld":
            if not hasattr(self, "_l_prime"):
                raise PhaseOrderError("MAF phase has not run")
            from ..stats import chisq

            self._ranking = chisq.rank_pvalues(
                self._case_counts,
                self._ref_counts,
                self._case.shape[0],
                self._reference.shape[0],
            )
            self._l_double_prime = pipeline.ld_prune(
                self._l_prime,
                self._ranking,
                pipeline.matrix_moment_source(self._case, self._reference),
                config["ld_cutoff"],
            )
            return list(self._l_double_prime)
        if phase == "lr":
            if not hasattr(self, "_l_double_prime"):
                raise PhaseOrderError("LD phase has not run")
            from ..stats import lr_test

            columns = self._l_double_prime
            if not columns:
                self._l_safe: List[int] = []
                self._release_power = 0.0
                return []
            n_case = self._case.shape[0]
            n_ref = self._reference.shape[0]
            case_freqs = self._case_counts[columns].astype(np.float64) / n_case
            ref_freqs = self._ref_counts[columns].astype(np.float64) / n_ref
            case_lr = lr_test.lr_matrix(
                self._case[:, columns], case_freqs, ref_freqs
            )
            ref_lr = lr_test.lr_matrix(
                self._reference[:, columns], case_freqs, ref_freqs
            )
            order = pipeline.lr_ranking_order(columns, self._ranking)
            selection = lr_test.select_safe_subset(
                case_lr, ref_lr, order, alpha=config["alpha"], beta=config["beta"]
            )
            self._l_safe = sorted(
                columns[c] for c in selection.selected_columns
            )
            self._release_power = selection.power
            return list(self._l_safe)
        raise ProtocolError(f"unknown phase {phase!r}")

    @ecall
    def release_power(self) -> float:
        if not hasattr(self, "_release_power"):
            raise PhaseOrderError("LR phase has not run")
        return float(self._release_power)

    @ecall
    def export_audit_log(self) -> List[Dict[str, Any]]:
        return [dict(entry) for entry in self._audit_log]


class CentralizedVerifier:
    """Orchestrates the centralized baseline end-to-end."""

    def __init__(
        self,
        config: StudyConfig,
        datasets: List[LocalDataset],
        cohort: Cohort,
        *,
        network: Optional[SimulatedNetwork] = None,
    ):
        if not datasets:
            raise ProtocolError("need at least one data owner")
        self._config = config
        self._datasets = sorted(datasets, key=lambda d: d.gdo_id)
        self._cohort = cohort
        self._network = network or SimulatedNetwork()
        self._build()

    def _build(self) -> None:
        rng = DeterministicRng(
            f"centralized/{self._config.study_id}/{self._config.seed}"
        )
        attestation = AttestationService(master_secret=rng.bytes(32))
        data_auth_key = rng.bytes(32)
        signer = MacSigner(data_auth_key, purpose="vcf-dataset")
        params = {
            "snp_count": self._config.snp_count,
            "maf_cutoff": self._config.thresholds.maf_cutoff,
            "ld_cutoff": self._config.thresholds.ld_cutoff,
            "alpha": self._config.thresholds.false_positive_rate,
            "beta": self._config.thresholds.power_threshold,
        }

        center_platform = attestation.register_platform("platform/center")
        self.center = CentralizedEnclave(
            center_platform.root_key,
            _CENTER_ID,
            data_auth_key,
            rng=rng.fork("enclave/center"),
        )
        self.center.ecall("configure", params, label="setup")
        self._network.register(_CENTER_ID)

        self.members: Dict[str, CentralizedEnclave] = {}
        self.stores: Dict[str, SealedColumnStore] = {}
        verifier = attestation.verifier()
        for dataset in self._datasets:
            platform = attestation.register_platform(
                f"platform/{dataset.gdo_id}"
            )
            member = CentralizedEnclave(
                platform.root_key,
                dataset.gdo_id,
                data_auth_key,
                rng=rng.fork(f"enclave/{dataset.gdo_id}"),
            )
            member.ecall("configure", params, label="setup")
            self._network.register(dataset.gdo_id)
            center_end, member_end, _ = establish_channel(
                self.center,
                center_platform,
                member,
                platform,
                verifier,
                rng=rng.fork(f"channel/{dataset.gdo_id}"),
            )
            self.center.install_channel(center_end)
            member.install_channel(member_end)
            signed = SignedMatrix.create(dataset.case, signer)
            self.stores[dataset.gdo_id] = member.ecall(
                "load_local_dataset", signed, label="setup"
            )
            self.members[dataset.gdo_id] = member

    def run(self) -> StudyResult:
        """Ship genomes to the center, pool, verify; return the result."""
        timings = PhaseTimings()
        clock = PhaseClock(timings)

        with clock.task(DATA_AGGREGATION):
            for gdo_id, member in self.members.items():
                frame = member.ecall(
                    "export_genomes", self.stores[gdo_id], label="export"
                )
                self._network.send(
                    Envelope(
                        sender=gdo_id,
                        receiver=_CENTER_ID,
                        tag="genomes",
                        body=frame,
                    )
                )
                inbound = self._network.receive(_CENTER_ID, "genomes")
                self.center.ecall(
                    "ingest_genomes", gdo_id, inbound.body, label="ingest"
                )
            self.center.ecall(
                "load_reference_matrix",
                self._cohort.reference.to_bytes(),
                self._cohort.reference.num_individuals,
                label="ingest",
            )
            self.center.ecall("pool", label="ingest")

        with clock.task(INDEXING):
            l_prime = self.center.ecall("run_phase", "maf", label="maf")
        with clock.task(LD_ANALYSIS):
            l_double_prime = self.center.ecall("run_phase", "ld", label="ld")
        with clock.task(LR_ANALYSIS):
            l_safe = self.center.ecall("run_phase", "lr", label="lr")

        totals = self._network.total_stats()
        return StudyResult(
            study_id=self._config.study_id,
            leader_id=_CENTER_ID,
            num_members=len(self.members),
            l_des=self._config.snp_count,
            l_prime=list(l_prime),
            l_double_prime=list(l_double_prime),
            l_safe=list(l_safe),
            timings=timings,
            network_bytes=totals.wire_bytes,
            network_messages=totals.messages,
            enclave_peak_memory={
                _CENTER_ID: self.center.meter.report().peak_memory_bytes
            },
            enclave_cpu_utilization={
                _CENTER_ID: self.center.meter.report().cpu_utilization
            },
            release_power=float(self.center.ecall("release_power", label="report")),
        )


def run_centralized_study(
    cohort: Cohort,
    config: StudyConfig,
    num_members: int,
    *,
    network: Optional[SimulatedNetwork] = None,
) -> StudyResult:
    """Partition + provision + run the centralized baseline in one call."""
    from ..genomics.partition import partition_cohort

    datasets = partition_cohort(cohort, num_members)
    return CentralizedVerifier(config, datasets, cohort, network=network).run()
