"""Federation assembly: platforms, enclaves, attestation, channels, hosts.

This module performs everything the paper assumes has happened before a
study runs: every GDO's TEE-enabled server is provisioned and remotely
attested, the leader is elected, pairwise secure channels are
established between the leader enclave and every member enclave, and
each member's signed local dataset is verified and sealed by its own
enclave.

The untrusted side of each member is a :class:`GdoHost` — a blind
router that moves encrypted frames between the network and its
enclave's ECALL surface.  Hosts only ever see ciphertext; the audit
tests rely on this separation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..config import StudyConfig
from ..crypto.rng import DeterministicRng
from ..crypto.signing import MacSigner
from ..errors import ProtocolError
from ..genomics.partition import LocalDataset
from ..genomics.population import Cohort
from ..genomics.vcf import SignedMatrix
from ..net import Envelope, SimulatedNetwork
from ..tee.attestation import AttestationService, Platform
from ..tee.channel import establish_channel
from ..tee.enclave import GuardedEnclaveProxy, guarded
from ..tee.storage import SealedColumnStore
from .enclave_logic import GenDPREnclave
from .integrity import IntegrityMonitor
from .leader import elect_leader

#: Platform monotonic-counter name backing checkpoint freshness epochs.
ROLLBACK_COUNTER = "leader-checkpoint"


@dataclass
class GdoHost:
    """Untrusted middleware of one federation member."""

    gdo_id: str
    enclave: GuardedEnclaveProxy
    network: SimulatedNetwork
    store: Optional[SealedColumnStore] = None
    reference_store: Optional[SealedColumnStore] = None
    #: Wall seconds spent inside this host's enclave answering requests.
    answer_seconds: float = 0.0

    _HANDLERS = {
        "summary": "answer_summary",
        "ld": "answer_ld",
        "lr": "answer_lr",
    }

    def handle_envelope(self, envelope: Envelope) -> Optional[Envelope]:
        """Route one inbound frame into the enclave; maybe produce a reply."""
        if envelope.receiver != self.gdo_id:
            raise ProtocolError(
                f"{self.gdo_id} received a frame addressed to {envelope.receiver}"
            )
        begin = time.perf_counter()
        try:
            if envelope.tag == "retained":
                self.enclave.ecall(
                    "ingest_retained", envelope.body, label="retained"
                )
                return None
            if envelope.tag == "shard-task":
                self.enclave.ecall(
                    "ingest_shard_task", envelope.body, label="shard"
                )
                return None
            if envelope.tag == "shard":
                # A tree child's partial; replies never flow back down.
                self.enclave.ecall(
                    "shard_ingest_partial",
                    envelope.sender,
                    envelope.body,
                    label="shard",
                )
                return None
            if envelope.tag.startswith("transcript:"):
                # Transcript attestations touch only channel state, not
                # the sealed dataset.  The tag carries the stage
                # ("transcript:<stage>") so each verification round has
                # a unique kind — a Byzantine replay of an earlier
                # round's reply is rejected by tag mismatch instead of
                # reaching the channel and tripping replay protection.
                response = self.enclave.ecall(
                    "answer_transcript", envelope.body, label="transcript"
                )
            else:
                handler = self._HANDLERS.get(envelope.tag)
                if handler is None:
                    raise ProtocolError(
                        f"unknown protocol tag {envelope.tag!r}"
                    )
                if self.store is None:
                    raise ProtocolError(
                        f"{self.gdo_id} has no local dataset"
                    )
                response = self.enclave.ecall(
                    handler, self.store, envelope.body, label=envelope.tag
                )
        finally:
            self.answer_seconds += time.perf_counter() - begin
        return Envelope(
            sender=self.gdo_id,
            receiver=envelope.sender,
            tag=envelope.tag,
            body=response,
        )


@dataclass
class Federation:
    """A fully provisioned GenDPR federation, ready to run a study."""

    config: StudyConfig
    network: SimulatedNetwork
    attestation: AttestationService
    leader_id: str
    hosts: Dict[str, GdoHost]
    enclaves: Dict[str, GenDPREnclave] = field(repr=False, default_factory=dict)
    platforms: Dict[str, Platform] = field(repr=False, default_factory=dict)
    handshake_bytes: int = 0
    #: Dataset-authentication secret, retained so a replacement leader
    #: enclave can be provisioned during failover (never logged).
    data_auth_key: bytes = field(repr=False, default=b"")
    #: Installed :class:`~repro.faults.FaultInjector` for chaos runs.
    fault_injector: Optional[object] = field(repr=False, default=None)
    #: Byzantine-integrity detection ledger for this federation.
    integrity_monitor: IntegrityMonitor = field(
        repr=False, default_factory=IntegrityMonitor
    )
    #: Number of leader replacements performed so far.
    failovers: int = 0
    #: Channel topology inherited from the substrate ("star" or "mesh");
    #: a member replacement re-attests exactly the channels this names.
    topology: str = "star"
    #: Number of member-enclave replacements (shard tree repairs).
    member_restorations: int = 0

    @property
    def member_ids(self) -> List[str]:
        return sorted(self.hosts)

    @property
    def leader_host(self) -> GdoHost:
        return self.hosts[self.leader_id]

    def resource_reports(self) -> Dict[str, object]:
        return {
            gdo_id: enclave.meter.report()
            for gdo_id, enclave in self.enclaves.items()
        }

    def replace_leader_enclave(self) -> GenDPREnclave:
        """Provision a replacement leader enclave after a crash.

        Automates what ``tests/test_core_recovery.py`` choreographed by
        hand: re-run the (deterministic) election to confirm leadership
        stays with the same GDO — its platform alone can unseal the
        sealed checkpoint and datasets — then start a fresh enclave on
        that platform, mutually re-attest a channel with every member,
        and swap the new guarded proxy into the leader host.  The caller
        (the protocol supervisor) restores state from the latest sealed
        checkpoint afterwards.
        """
        re_elected = elect_leader(
            self.member_ids, self.config.seed, self.config.study_id
        )
        if re_elected != self.leader_id:
            raise ProtocolError(
                f"re-election chose {re_elected!r}, expected {self.leader_id!r}"
            )
        self.failovers += 1
        rng = DeterministicRng(
            f"federation/{self.config.study_id}/{self.config.seed}"
            f"/failover/{self.failovers}"
        )
        replacement = GenDPREnclave(
            platform_key=self.platforms[self.leader_id].root_key,
            enclave_id=self.leader_id,
            data_auth_key=self.data_auth_key,
            rng=rng.fork("enclave"),
        )
        replacement.ecall(
            "configure", _study_params(self.config, self.member_ids, self.leader_id),
            label="failover",
        )
        # The platform's rollback counter survives the crash — the
        # replacement sees its predecessor's checkpoint epochs, which is
        # what makes stale-checkpoint detection work across failovers.
        replacement.install_rollback_counter(
            self.platforms[self.leader_id].monotonic_counter(ROLLBACK_COUNTER)
        )
        if self.fault_injector is not None:
            adversary = self.fault_injector.equivocation_adversary()
            if adversary is not None:
                replacement.install_equivocation_adversary(adversary)
        verifier = self.attestation.verifier()
        for member_id in self.member_ids:
            if member_id == self.leader_id:
                continue
            leader_end, member_end, hs_bytes = establish_channel(
                replacement,
                self.platforms[self.leader_id],
                self.enclaves[member_id],
                self.platforms[member_id],
                verifier,
                rng=rng.fork(f"channel/{member_id}"),
            )
            replacement.install_channel(leader_end)
            self.enclaves[member_id].install_channel(member_end)
            self.handshake_bytes += hs_bytes
        self.enclaves[self.leader_id] = replacement
        interceptor = (
            self.fault_injector.on_ecall if self.fault_injector is not None else None
        )
        self.hosts[self.leader_id].enclave = guarded(replacement, interceptor)
        return replacement

    def replace_member_enclave(
        self, member_id: str, *, reinstall_adversary: bool = True
    ) -> GenDPREnclave:
        """Provision a replacement *member* enclave (shard tree repair).

        The member's genotype partition is not lost with its enclave:
        the host still holds the sealed dataset store, and a fresh
        enclave on the *same platform* derives the same sealing key, so
        the replacement answers from the original data without any data
        movement.  The replacement re-attests exactly the channels the
        federation's topology gave its predecessor (every peer on a
        mesh, the leader alone on a star).

        ``reinstall_adversary`` distinguishes the two repair causes: a
        *crash* replacement inherits a compromised platform's shard
        adversary (the attacker owns the site, not the enclave
        instance), while a *quarantine* replacement deliberately loads a
        fresh attested module — modelling the operator re-deploying
        audited code — which is what lets a detected equivocation
        resolve into a clean completion.
        """
        if member_id == self.leader_id:
            raise ProtocolError(
                "leader replacement goes through replace_leader_enclave"
            )
        if member_id not in self.hosts:
            raise ProtocolError(f"unknown member {member_id!r}")
        self.member_restorations += 1
        rng = DeterministicRng(
            f"federation/{self.config.study_id}/{self.config.seed}"
            f"/repair/{member_id}/{self.member_restorations}"
        )
        replacement = GenDPREnclave(
            platform_key=self.platforms[member_id].root_key,
            enclave_id=member_id,
            data_auth_key=self.data_auth_key,
            rng=rng.fork("enclave"),
        )
        replacement.ecall(
            "configure",
            _study_params(self.config, self.member_ids, self.leader_id),
            label="repair",
        )
        replacement.install_rollback_counter(
            self.platforms[member_id].monotonic_counter(ROLLBACK_COUNTER)
        )
        if reinstall_adversary and self.fault_injector is not None:
            adversary = self.fault_injector.shard_adversary()
            if adversary is not None and adversary.target == member_id:
                replacement.install_shard_adversary(adversary)
        peers = (
            [p for p in self.member_ids if p != member_id]
            if self.topology == "mesh"
            else [self.leader_id]
        )
        verifier = self.attestation.verifier()
        for peer_id in peers:
            member_end, peer_end, hs_bytes = establish_channel(
                replacement,
                self.platforms[member_id],
                self.enclaves[peer_id],
                self.platforms[peer_id],
                verifier,
                rng=rng.fork(f"channel/{peer_id}"),
            )
            replacement.install_channel(member_end)
            self.enclaves[peer_id].install_channel(peer_end)
            self.handshake_bytes += hs_bytes
        self.enclaves[member_id] = replacement
        interceptor = (
            self.fault_injector.on_ecall if self.fault_injector is not None else None
        )
        self.hosts[member_id].enclave = guarded(replacement, interceptor)
        return replacement


def _study_params(
    config: StudyConfig, member_ids: List[str], leader_id: str
) -> Dict[str, object]:
    """The agreed study parameters every enclave is configured with."""
    return {
        "study_id": config.study_id,
        "snp_count": config.snp_count,
        "maf_cutoff": config.thresholds.maf_cutoff,
        "ld_cutoff": config.thresholds.ld_cutoff,
        "alpha": config.thresholds.false_positive_rate,
        "beta": config.thresholds.power_threshold,
        "member_ids": list(member_ids),
        "leader_id": leader_id,
        "f_values": list(config.collusion.f_values),
        "num_shards": config.sharding.num_shards,
    }


@dataclass
class FederationSubstrate:
    """The study-independent half of a federation.

    Everything here is paid once — platforms, enclaves, remote
    attestation, secure channels — and can be reused across studies:
    none of it depends on a :class:`~repro.config.StudyConfig`.  The
    long-lived service (:mod:`repro.serve`) keeps substrates warm in a
    pool; :func:`bind_study` stamps a concrete study onto one.

    ``topology`` records which channels exist: ``"star"`` (a single
    designated center holds a channel to every member — the one-shot
    path, where the leader is known before provisioning) or ``"mesh"``
    (every pair — required for reuse, since a future study's elected
    leader is unknown at provisioning time).
    """

    network: SimulatedNetwork
    attestation: AttestationService
    enclaves: Dict[str, GenDPREnclave] = field(repr=False, default_factory=dict)
    platforms: Dict[str, Platform] = field(repr=False, default_factory=dict)
    member_ids: List[str] = field(default_factory=list)
    handshake_bytes: int = 0
    data_auth_key: bytes = field(repr=False, default=b"")
    topology: str = "mesh"
    star_center: Optional[str] = None


def provision_substrate(
    member_ids: List[str],
    *,
    rng: DeterministicRng,
    network: Optional[SimulatedNetwork] = None,
    topology: str = "mesh",
    star_center: Optional[str] = None,
) -> FederationSubstrate:
    """Provision platforms, enclaves and attested channels for a member set.

    The RNG draw order (attestation master secret, then the dataset
    authenticity key, then label-derived forks) is exactly the one
    :func:`build_federation` always used, so a star substrate bound to
    its study reproduces the historical one-shot federation bit for
    bit.
    """
    if not member_ids:
        raise ProtocolError("a federation needs at least one member")
    member_ids = sorted(member_ids)
    if len(set(member_ids)) != len(member_ids):
        raise ProtocolError("duplicate GDO ids")
    if topology not in ("star", "mesh"):
        raise ProtocolError(f"unknown channel topology {topology!r}")
    if topology == "star":
        if star_center not in member_ids:
            raise ProtocolError("star topology needs a member as its center")
    elif star_center is not None:
        raise ProtocolError("star_center only applies to star topology")

    network = network if network is not None else SimulatedNetwork()
    attestation = AttestationService(master_secret=rng.bytes(32))
    data_auth_key = rng.bytes(32)

    enclaves: Dict[str, GenDPREnclave] = {}
    platforms: Dict[str, Platform] = {}
    for gdo_id in member_ids:
        platform = attestation.register_platform(f"platform/{gdo_id}")
        enclave = GenDPREnclave(
            platform_key=platform.root_key,
            enclave_id=gdo_id,
            data_auth_key=data_auth_key,
            rng=rng.fork(f"enclave/{gdo_id}"),
        )
        network.register(gdo_id)
        enclaves[gdo_id] = enclave
        platforms[gdo_id] = platform
        # Checkpoint-freshness epochs come from each platform's
        # monotonic counter; only a leader ever advances its own, but a
        # substrate cannot know which member future elections pick.
        enclave.install_rollback_counter(
            platform.monotonic_counter(ROLLBACK_COUNTER)
        )

    verifier = attestation.verifier()
    handshake_bytes = 0
    if topology == "star":
        pairs = [
            (star_center, member_id)
            for member_id in member_ids
            if member_id != star_center
        ]
    else:
        pairs = [
            (a, b)
            for index, a in enumerate(member_ids)
            for b in member_ids[index + 1:]
        ]
    for end_a, end_b in pairs:
        # The historical fork label for star channels; mesh pairs get a
        # label naming both ends.
        label = (
            f"channel/{end_b}"
            if topology == "star"
            else f"channel/{end_a}/{end_b}"
        )
        a_end, b_end, hs_bytes = establish_channel(
            enclaves[end_a],
            platforms[end_a],
            enclaves[end_b],
            platforms[end_b],
            verifier,
            rng=rng.fork(label),
        )
        enclaves[end_a].install_channel(a_end)
        enclaves[end_b].install_channel(b_end)
        handshake_bytes += hs_bytes

    return FederationSubstrate(
        network=network,
        attestation=attestation,
        enclaves=enclaves,
        platforms=platforms,
        member_ids=member_ids,
        handshake_bytes=handshake_bytes,
        data_auth_key=data_auth_key,
        topology=topology,
        star_center=star_center,
    )


def bind_study(
    substrate: FederationSubstrate,
    config: StudyConfig,
    datasets: List[LocalDataset],
    cohort: Cohort,
) -> Federation:
    """Stamp one study onto a (possibly reused) substrate.

    Elects the leader, resets every enclave's per-study state via
    ``configure``, installs the study's fault injector (or clears a
    previous study's), signs and loads the member datasets and the
    reference population, and returns a ready :class:`Federation`.
    """
    if not datasets:
        raise ProtocolError("a federation needs at least one member")
    config.collusion.validate_for(len(datasets))
    member_ids = sorted(d.gdo_id for d in datasets)
    if member_ids != substrate.member_ids:
        raise ProtocolError(
            f"datasets name members {member_ids}, but the substrate was "
            f"provisioned for {substrate.member_ids}"
        )

    leader_id = elect_leader(member_ids, config.seed, config.study_id)
    if substrate.topology == "star" and leader_id != substrate.star_center:
        raise ProtocolError(
            f"study elects {leader_id!r} but the star substrate centers "
            f"on {substrate.star_center!r}; reuse needs a mesh substrate"
        )
    if (
        config.sharding.enabled
        and substrate.topology == "star"
        and len(member_ids) > 2
    ):
        # Tree aggregation sends member-to-member frames along non-root
        # edges; a star substrate has no channels for them.
        raise ProtocolError(
            "sharded studies need a mesh substrate for the combine tree"
        )

    network = substrate.network
    fault_injector = None
    ecall_interceptor = None
    if config.faults.enabled:
        # Local import keeps repro.faults optional on the default path.
        from ..faults import FaultInjector, FaultPlan

        fault_injector = FaultInjector(
            FaultPlan.from_config(config.faults), leader_id=leader_id
        )
        network.install_fault_injector(fault_injector)
        ecall_interceptor = fault_injector.on_ecall
    else:
        network.uninstall_fault_injector()

    hosts: Dict[str, GdoHost] = {}
    for gdo_id in member_ids:
        hosts[gdo_id] = GdoHost(
            gdo_id=gdo_id,
            enclave=guarded(substrate.enclaves[gdo_id], ecall_interceptor),
            network=network,
        )

    # Configure every enclave with the agreed study parameters; this
    # also clears any per-study aggregates a previous study left behind.
    params = _study_params(config, member_ids, leader_id)
    for enclave in substrate.enclaves.values():
        enclave.ecall("configure", params, label="setup")

    # Chaos runs may compromise the leader's broadcast path; binding
    # with no adversary clears one a previous study installed.
    adversary = (
        fault_injector.equivocation_adversary()
        if fault_injector is not None
        else None
    )
    substrate.enclaves[leader_id].install_equivocation_adversary(adversary)

    # Same for a compromised shard emitter: install on the targeted
    # member, clear everywhere else (a previous study may have armed a
    # different node).
    shard_adversary = (
        fault_injector.shard_adversary() if fault_injector is not None else None
    )
    for gdo_id, enclave in substrate.enclaves.items():
        enclave.install_shard_adversary(
            shard_adversary
            if shard_adversary is not None and shard_adversary.target == gdo_id
            else None
        )

    # Members verify and seal their signed local datasets (binary fast
    # path; the text SignedVcf container is accepted equivalently).
    data_signer = MacSigner(substrate.data_auth_key, purpose="vcf-dataset")
    for dataset in datasets:
        signed = SignedMatrix.create(dataset.case, data_signer)
        hosts[dataset.gdo_id].store = substrate.enclaves[dataset.gdo_id].ecall(
            "load_local_dataset", signed, label="setup"
        )

    # The leader seals the public reference population for streaming.
    hosts[leader_id].reference_store = substrate.enclaves[leader_id].ecall(
        "load_reference_matrix",
        cohort.reference.to_bytes(),
        cohort.reference.num_individuals,
        label="setup",
    )

    return Federation(
        config=config,
        network=network,
        attestation=substrate.attestation,
        leader_id=leader_id,
        hosts=hosts,
        enclaves=substrate.enclaves,
        platforms=substrate.platforms,
        handshake_bytes=substrate.handshake_bytes,
        data_auth_key=substrate.data_auth_key,
        fault_injector=fault_injector,
        topology=substrate.topology,
    )


def build_federation(
    config: StudyConfig,
    datasets: List[LocalDataset],
    cohort: Cohort,
    *,
    network: Optional[SimulatedNetwork] = None,
) -> Federation:
    """Provision a federation for one study.

    One-shot path: provisions a star substrate centered on the elected
    leader and immediately binds the study to it.  The service keeps
    mesh substrates warm instead and calls :func:`bind_study` directly.

    Args:
        config: study parameters (thresholds, collusion policy, seed).
        datasets: one local case shard per member (see
            :func:`repro.genomics.partition.partition_cohort`).
        cohort: the full cohort; only its panel and public reference
            population are used here — case genomes reach members solely
            through their ``datasets`` shard.
        network: optionally a pre-configured simulated network.
    """
    if not datasets:
        raise ProtocolError("a federation needs at least one member")
    member_ids = sorted(d.gdo_id for d in datasets)
    leader_id = elect_leader(member_ids, config.seed, config.study_id)
    # Sharded studies aggregate along member-to-member tree edges, so
    # they need the full mesh; the historical star layout (and its RNG
    # fork labels) is kept for everything else.
    sharded = config.sharding.enabled and len(member_ids) > 2
    substrate = provision_substrate(
        member_ids,
        rng=DeterministicRng(f"federation/{config.study_id}/{config.seed}"),
        network=network,
        topology="mesh" if sharded else "star",
        star_center=None if sharded else leader_id,
    )
    return bind_study(substrate, config, datasets, cohort)
