"""Authenticated encryption: round trips, tamper rejection, domain binding."""

from __future__ import annotations

import pytest

from repro.crypto.authenticated import (
    AEAD_OVERHEAD,
    AesCtrHmacAead,
    StreamAead,
    default_aead,
)
from repro.crypto.rng import DeterministicRng
from repro.errors import AuthenticationError, DecryptionError

_KEY = bytes(range(32))
_SCHEMES = [StreamAead, AesCtrHmacAead]


@pytest.mark.parametrize("scheme", _SCHEMES)
class TestAeadCommon:
    def test_roundtrip(self, scheme):
        aead = scheme(_KEY)
        rng = DeterministicRng(scheme.__name__)
        for length in (0, 1, 64, 1000):
            data = rng.bytes(length)
            assert aead.decrypt(aead.encrypt(data)) == data

    def test_roundtrip_with_associated_data(self, scheme):
        aead = scheme(_KEY)
        frame = aead.encrypt(b"payload", b"header")
        assert aead.decrypt(frame, b"header") == b"payload"

    def test_wrong_associated_data_rejected(self, scheme):
        aead = scheme(_KEY)
        frame = aead.encrypt(b"payload", b"header")
        with pytest.raises(AuthenticationError):
            aead.decrypt(frame, b"other")

    def test_tampered_ciphertext_rejected(self, scheme):
        aead = scheme(_KEY)
        frame = bytearray(aead.encrypt(bytes(100)))
        frame[20] ^= 0x01
        with pytest.raises(AuthenticationError):
            aead.decrypt(bytes(frame))

    def test_tampered_tag_rejected(self, scheme):
        aead = scheme(_KEY)
        frame = bytearray(aead.encrypt(b"payload"))
        frame[-1] ^= 0x01
        with pytest.raises(AuthenticationError):
            aead.decrypt(bytes(frame))

    def test_tampered_nonce_rejected(self, scheme):
        aead = scheme(_KEY)
        frame = bytearray(aead.encrypt(b"payload"))
        frame[0] ^= 0x01
        with pytest.raises(AuthenticationError):
            aead.decrypt(bytes(frame))

    def test_truncated_frame_rejected(self, scheme):
        aead = scheme(_KEY)
        with pytest.raises(DecryptionError):
            aead.decrypt(aead.encrypt(b"")[: AEAD_OVERHEAD - 1])

    def test_wrong_key_rejected(self, scheme):
        frame = scheme(_KEY).encrypt(b"payload")
        with pytest.raises(AuthenticationError):
            scheme(bytes(32)).decrypt(frame)

    def test_fresh_nonce_per_encryption(self, scheme):
        aead = scheme(_KEY)
        assert aead.encrypt(b"same") != aead.encrypt(b"same")

    def test_explicit_nonce_is_deterministic(self, scheme):
        aead = scheme(_KEY)
        nonce = bytes(16)
        assert aead.encrypt(b"x", nonce=nonce) == aead.encrypt(b"x", nonce=nonce)

    def test_overhead_constant(self, scheme):
        aead = scheme(_KEY)
        for length in (0, 10, 1000):
            assert len(aead.encrypt(bytes(length))) == length + AEAD_OVERHEAD

    def test_short_key_rejected(self, scheme):
        with pytest.raises(ValueError):
            scheme(b"short")


def test_schemes_are_not_interchangeable():
    frame = StreamAead(_KEY).encrypt(b"payload")
    with pytest.raises(AuthenticationError):
        AesCtrHmacAead(_KEY).decrypt(frame)


def test_default_aead_is_stream():
    assert isinstance(default_aead(_KEY), StreamAead)
