"""``repro.obs`` — end-to-end observability: tracing, metrics, reports.

The subsystem every future performance PR measures against.  Four
pieces, all zero-dependency:

* **Tracing core** (:mod:`~repro.obs.span`, :mod:`~repro.obs.tracer`) —
  hierarchical spans with a context-manager/decorator API, monotonic
  timestamps and a thread-safe in-memory collector.  Disabled tracing
  degrades to a stateless null sink: one attribute lookup per event,
  zero allocations.
* **Metrics** (:mod:`~repro.obs.metrics`) — counters, gauges and
  fixed-bucket histograms with bracketed percentile estimates, plus the
  :mod:`~repro.obs.bridge` feeding existing accounting
  (``LinkStats``, ``ResourceReport``, ``PhaseTimings``) into a registry.
* **Exporters** (:mod:`~repro.obs.export`) — JSONL span dumps, Chrome
  ``trace_event`` JSON for ``about://tracing``, and a console tree.
* **RunReport** (:mod:`~repro.obs.report`) — spans + metrics + config
  fingerprint bundled into one machine-readable JSON artifact,
  consumed by ``repro report`` and emitted by the bench runner.

Span taxonomy, metric names and the RunReport schema are documented in
``docs/OBSERVABILITY.md``.
"""

from .export import (
    read_jsonl,
    render_span_tree,
    span_from_dict,
    span_to_dict,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exponential_buckets,
)
from .report import RunReport, config_fingerprint, phase_durations
from .span import NULL_SINK, NullCollector, Span, SpanCollector
from .tracer import NULL_SPAN, TRACER, Tracer, traced

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SINK",
    "NULL_SPAN",
    "NullCollector",
    "RunReport",
    "Span",
    "SpanCollector",
    "TRACER",
    "Tracer",
    "config_fingerprint",
    "exponential_buckets",
    "phase_durations",
    "read_jsonl",
    "render_span_tree",
    "span_from_dict",
    "span_to_dict",
    "to_chrome_trace",
    "traced",
    "write_chrome_trace",
    "write_jsonl",
]
