"""The long-lived federation service: repro.serve."""

from __future__ import annotations

import time

import pytest

from repro import StudyConfig, run_study
from repro.config import FaultConfig
from repro.errors import (
    ConfigError,
    EnclaveCrashedError,
    ServiceError,
    ServiceOverloadedError,
    StudyCancelledError,
    UnknownStudyError,
)
from repro.genomics import SyntheticSpec, generate_cohort
from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    FederationService,
    ServiceConfig,
    StudySession,
)


@pytest.fixture(scope="module")
def cohort():
    built, _ = generate_cohort(
        SyntheticSpec(num_snps=30, num_case=48, num_control=40, seed=11)
    )
    return built


def study(study_id, *, seed=0, **overrides):
    return StudyConfig(snp_count=30, seed=seed, study_id=study_id, **overrides)


def decisions(result):
    return (
        result.l_prime,
        result.l_double_prime,
        result.l_safe,
        result.release_power,
        result.leader_id,
    )


def _wait_until_running(service, study_id, attempts=500):
    """Poll until the dispatcher hands the study to a worker."""
    while service.status(study_id)["status"] == "queued" and attempts:
        attempts -= 1
        time.sleep(0.01)
    assert service.status(study_id)["status"] == "running"


class _GateHold:
    """Occupies round-gate slots so a submitted study blocks mid-run."""

    def __init__(self, service, cohort, count=None):
        session = StudySession("gate-hold", cohort, study("gate-hold"))
        gate = service._gate.session_gate(session)
        slots = count if count is not None else service.config.max_concurrent_rounds
        self._tickets = [gate("hold") for _ in range(slots)]

    def __enter__(self):
        for ticket in self._tickets:
            ticket.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        for ticket in self._tickets:
            ticket.__exit__(exc_type, exc, tb)
        return False


class TestServiceConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ServiceConfig(pool_size=0)
        with pytest.raises(ConfigError):
            ServiceConfig(pool_size=1, max_active=2)
        with pytest.raises(ConfigError):
            ServiceConfig(max_concurrent_rounds=0)
        with pytest.raises(ConfigError):
            ServiceConfig(service_id="bad//id")


class TestLifecycle:
    def test_submit_status_result(self, cohort):
        with FederationService(ServiceConfig(pool_size=1, max_active=1)) as service:
            study_id = service.submit(cohort, study("svc-basic"))
            result = service.result(study_id, timeout=120)
            status = service.status(study_id)
        assert status["status"] == DONE
        assert status["rounds"] > 0
        solo = run_study(cohort, study("svc-basic"), 3)
        assert decisions(result) == decisions(solo)

    def test_per_request_run_report(self, cohort):
        with FederationService(ServiceConfig(pool_size=1, max_active=1)) as service:
            study_id = service.submit(cohort, study("svc-report"))
            result = service.result(study_id, timeout=120)
        report = result.observability
        assert report is not None
        assert report.study_id == "svc-report"
        assert report.meta["slot"].startswith("service-0/slot-")
        assert "serve.rounds_gated" in report.metrics["counters"]

    def test_warm_slot_reuse(self, cohort):
        with FederationService(ServiceConfig(pool_size=1, max_active=1)) as service:
            first = service.submit(cohort, study("svc-warm-0"))
            service.result(first, timeout=120)
            second = service.submit(cohort, study("svc-warm-1", seed=1))
            result = service.result(second, timeout=120)
            metrics = service.metrics()
            assert service.status(second)["warm"] is True
            assert service.status(first)["warm"] is False
        assert metrics["warm_hits"] == 1
        assert metrics["cold_provisions"] == 1
        assert metrics["retired_slots"] == 0
        # Warm reuse must not change the verdict.
        solo = run_study(cohort, study("svc-warm-1", seed=1), 3)
        assert decisions(result) == decisions(solo)

    def test_submit_validation(self, cohort):
        with FederationService(ServiceConfig(pool_size=1, max_active=1)) as service:
            bad = StudyConfig(snp_count=29, study_id="svc-bad")
            with pytest.raises(ServiceError):
                service.submit(cohort, bad)
            service.submit(cohort, study("svc-dup"))
            with pytest.raises(ServiceError):
                service.submit(cohort, study("svc-dup"))
            service.result("svc-dup", timeout=120)

    def test_unknown_study(self, cohort):
        with FederationService(ServiceConfig(pool_size=1, max_active=1)) as service:
            with pytest.raises(UnknownStudyError):
                service.status("nope")
            with pytest.raises(UnknownStudyError):
                service.result("nope")
            with pytest.raises(UnknownStudyError):
                service.cancel("nope")

    def test_close_cancels_queued(self, cohort):
        service = FederationService(ServiceConfig(pool_size=1, max_active=1))
        with _GateHold(service, cohort):
            running = service.submit(cohort, study("svc-close-0"))
            _wait_until_running(service, running)
            queued = service.submit(cohort, study("svc-close-1"))
            # Shutdown first (cancels the queued study, stops the
            # dispatcher), then release the running one.
            service.close(wait=False)
            service.cancel(running)
        service.close()
        assert service.status(queued)["status"] == CANCELLED
        with pytest.raises(ServiceError):
            service.submit(cohort, study("svc-late"))


class TestAdmissionControl:
    def test_queue_full_rejection_is_classified(self, cohort):
        config = ServiceConfig(pool_size=1, max_active=1, queue_limit=1)
        service = FederationService(config)
        try:
            with _GateHold(service, cohort):
                running = service.submit(cohort, study("svc-adm-0"))
                _wait_until_running(service, running)
                service.submit(cohort, study("svc-adm-1"))
                with pytest.raises(ServiceOverloadedError):
                    service.submit(cohort, study("svc-adm-2"))
                metrics = service.metrics()
                assert metrics["rejected"] == 1
                assert metrics["queue_depth"] == 1
                service.cancel(running)
                service.cancel("svc-adm-1")
            with pytest.raises(StudyCancelledError):
                service.result(running, timeout=60)
        finally:
            service.close()

    def test_cancel_queued_is_immediate(self, cohort):
        service = FederationService(ServiceConfig(pool_size=1, max_active=1))
        try:
            with _GateHold(service, cohort):
                service.submit(cohort, study("svc-cq-0"))
                queued = service.submit(cohort, study("svc-cq-1"))
                assert service.cancel(queued) is True
                assert service.status(queued)["status"] == CANCELLED
                with pytest.raises(StudyCancelledError):
                    service.result(queued)
                service.cancel("svc-cq-0")
        finally:
            service.close()

    def test_cancel_mid_phase_retires_slot_and_drains_on(self, cohort):
        service = FederationService(ServiceConfig(pool_size=1, max_active=1))
        try:
            with _GateHold(service, cohort):
                study_id = service.submit(cohort, study("svc-mid"))
                # The study blocks at the round gate: running, no rounds.
                _wait_until_running(service, study_id)
                assert service.cancel(study_id) is True
            with pytest.raises(StudyCancelledError):
                service.result(study_id, timeout=60)
            assert service.status(study_id)["status"] == CANCELLED
            # The aborted study may have stranded channel sequence
            # state, so the slot is retired; the replacement serves the
            # next study bit-identically.
            follow_up = service.submit(cohort, study("svc-mid-next", seed=3))
            result = service.result(follow_up, timeout=120)
            metrics = service.metrics()
            assert metrics["retired_slots"] == 1
            assert metrics["cold_provisions"] == 2
        finally:
            service.close()
        solo = run_study(cohort, study("svc-mid-next", seed=3), 3)
        assert decisions(result) == decisions(solo)

    def test_cancel_after_done_returns_false(self, cohort):
        with FederationService(ServiceConfig(pool_size=1, max_active=1)) as service:
            study_id = service.submit(cohort, study("svc-late-cancel"))
            service.result(study_id, timeout=120)
            assert service.cancel(study_id) is False

    def test_memory_budget_throttles_but_never_wedges(self, cohort):
        config = ServiceConfig(
            pool_size=2, max_active=2, enclave_memory_budget_bytes=1
        )
        with FederationService(config) as service:
            ids = [
                service.submit(cohort, study(f"svc-mem-{i}", seed=i))
                for i in range(3)
            ]
            for study_id in ids:
                service.result(study_id, timeout=120)
            assert service.metrics()["completed"] == 3


class TestFailureIsolation:
    def test_crash_aborts_only_its_session(self, cohort):
        with FederationService(ServiceConfig(pool_size=1, max_active=1)) as service:
            crashing = study(
                "svc-crash",
                faults=FaultConfig(
                    enabled=True, seed=0, crash_points=(("gdo-1", 3),)
                ),
            )
            service.submit(cohort, crashing)
            with pytest.raises(EnclaveCrashedError):
                service.result("svc-crash", timeout=120)
            assert service.status("svc-crash")["status"] == FAILED
            # The poisoned slot was retired and replaced; the service
            # keeps draining the queue with correct results.
            healthy = service.submit(cohort, study("svc-after-crash"))
            result = service.result(healthy, timeout=120)
            metrics = service.metrics()
        assert metrics["retired_slots"] == 1
        assert metrics["cold_provisions"] == 2
        assert metrics["completed"] == 1 and metrics["failed"] == 1
        solo = run_study(cohort, study("svc-after-crash"), 3)
        assert decisions(result) == decisions(solo)

    def test_concurrent_sessions_match_solo(self, cohort):
        configs = [study(f"svc-conc-{i}", seed=i) for i in range(4)]
        solo = {c.study_id: run_study(cohort, c, 3) for c in configs}
        service_config = ServiceConfig(
            pool_size=2, max_active=2, max_concurrent_rounds=2
        )
        with FederationService(service_config) as service:
            for config in configs:
                service.submit(cohort, config)
            served = {
                c.study_id: service.result(c.study_id, timeout=120)
                for c in configs
            }
            metrics = service.metrics()
        for study_id, result in served.items():
            assert decisions(result) == decisions(solo[study_id])
        assert metrics["completed"] == 4
        assert metrics["rounds_admitted"] > 0


class TestScheduler:
    def test_gate_cancellation_is_classified(self, cohort):
        from repro.serve import FairRoundGate

        gate = FairRoundGate(1)
        session = StudySession("gated", cohort, study("gated"))
        session.cancel_requested.set()
        with pytest.raises(StudyCancelledError):
            with gate.session_gate(session)("summaries"):
                pass
        # The gate stays usable for other sessions afterwards.
        other = StudySession("other", cohort, study("other"))
        with gate.session_gate(other)("summaries"):
            pass
        assert gate.stats()["rounds_admitted"] == 1

    def test_metrics_registry_bridge(self, cohort):
        with FederationService(ServiceConfig(pool_size=1, max_active=1)) as service:
            study_id = service.submit(cohort, study("svc-metrics"))
            service.result(study_id, timeout=120)
            registry = service.metrics_registry()
        snapshot = registry.as_dict()
        assert snapshot["counters"]["serve.completed"] == 1
        assert "serve.queue_depth" in snapshot["gauges"]
        assert "serve.warm_hit_rate" in snapshot["gauges"]
