"""Federation provisioning, host routing, leader election and egress audit."""

from __future__ import annotations

import pytest

from repro import StudyConfig
from repro.core.audit import (
    ALLOWED_KINDS,
    audit_federation,
    genome_egress_savings,
)
from repro.core.federation import build_federation
from repro.core.leader import elect_leader
from repro.errors import (
    EnclaveViolationError,
    PhaseOrderError,
    ProtocolError,
)
from repro.net import Envelope


class TestLeaderElection:
    def test_deterministic(self):
        members = ["gdo-0", "gdo-1", "gdo-2"]
        assert elect_leader(members, 1, "s") == elect_leader(members, 1, "s")

    def test_member_order_irrelevant(self):
        assert elect_leader(["b", "a", "c"], 3, "s") == elect_leader(
            ["a", "c", "b"], 3, "s"
        )

    def test_all_members_electable(self):
        members = ["gdo-0", "gdo-1", "gdo-2"]
        leaders = {elect_leader(members, seed, "s") for seed in range(40)}
        assert leaders == set(members)

    def test_study_id_matters(self):
        members = [f"gdo-{i}" for i in range(10)]
        choices = {elect_leader(members, 7, f"study-{i}") for i in range(20)}
        assert len(choices) > 1

    def test_validation(self):
        with pytest.raises(ProtocolError):
            elect_leader([], 0, "s")
        with pytest.raises(ProtocolError):
            elect_leader(["a", "a"], 0, "s")


class TestFederationBuild:
    def test_structure(self, federation, datasets):
        assert len(federation.hosts) == len(datasets)
        assert federation.leader_id in federation.hosts
        assert federation.handshake_bytes > 0
        assert set(federation.member_ids) == {d.gdo_id for d in datasets}

    def test_all_enclaves_share_measurement(self, federation):
        measurements = {
            enclave.measurement for enclave in federation.enclaves.values()
        }
        assert len(measurements) == 1

    def test_hosts_hold_guarded_proxies(self, federation):
        host = federation.leader_host
        with pytest.raises(EnclaveViolationError):
            _ = host.enclave._channels

    def test_stores_provisioned(self, federation):
        for gdo_id, host in federation.hosts.items():
            assert host.store is not None, gdo_id
        assert federation.leader_host.reference_store is not None

    def test_resource_reports(self, federation):
        reports = federation.resource_reports()
        assert set(reports) == set(federation.hosts)

    def test_empty_federation_rejected(self, small_cohort, study_config):
        with pytest.raises(ProtocolError):
            build_federation(study_config, [], small_cohort)

    def test_collusion_validated_at_build(self, small_cohort, datasets):
        from repro import CollusionPolicy
        from repro.errors import CollusionConfigError

        config = StudyConfig(
            snp_count=small_cohort.num_snps,
            collusion=CollusionPolicy.static(5),
            study_id="too-many",
        )
        with pytest.raises(CollusionConfigError):
            build_federation(config, datasets, small_cohort)


class TestHostRouting:
    def test_unknown_tag_rejected(self, federation):
        host = federation.hosts[federation.member_ids[0]]
        peer = next(m for m in federation.member_ids if m != host.gdo_id)
        with pytest.raises(ProtocolError):
            host.handle_envelope(
                Envelope(sender=peer, receiver=host.gdo_id, tag="bogus", body=b"")
            )

    def test_misaddressed_envelope_rejected(self, federation):
        host = federation.hosts[federation.member_ids[0]]
        with pytest.raises(ProtocolError):
            host.handle_envelope(
                Envelope(sender="x", receiver="someone-else", tag="summary", body=b"")
            )


class TestEgressAudit:
    def test_protocol_run_is_clean(self, federation, study_result):
        report = audit_federation(federation)
        assert report.ok, report.violations
        assert report.records  # something was actually exchanged
        kinds = {record.kind for record in report.records}
        assert kinds <= ALLOWED_KINDS
        assert all(record.genotype_rows == 0 for record in report.records)
        report.raise_on_violation()  # no raise

    def test_bytes_by_kind(self, federation, study_result):
        report = audit_federation(federation)
        by_kind = report.bytes_by_kind()
        assert sum(by_kind.values()) == report.total_plaintext_bytes
        assert by_kind.get("summary", 0) > 0
        assert by_kind.get("lr", 0) > 0

    def test_savings_accounting(self, federation, study_result, small_cohort):
        savings = genome_egress_savings(federation, small_cohort.num_snps)
        assert savings["genomes_in_federation"] == small_cohort.case.num_individuals
        assert savings["byte_encoding_avoided_bytes"] == small_cohort.case.nbytes
        assert savings["actual_protocol_bytes"] > 0

    def test_violation_detection(self):
        from repro.core.audit import AuditReport, EgressRecord
        from repro.errors import MembershipLeakError

        report = AuditReport(
            records=[
                EgressRecord(
                    sender="gdo-0",
                    peer="gdo-1",
                    kind="genomes",
                    plaintext_bytes=100,
                    genotype_rows=10,
                )
            ],
            violations=["leak"],
        )
        assert not report.ok
        with pytest.raises(MembershipLeakError):
            report.raise_on_violation()


class TestEnclavePhaseOrder:
    def test_lead_calls_require_state(self, small_cohort, study_config, datasets):
        federation = build_federation(study_config, datasets, small_cohort)
        leader = federation.leader_host.enclave
        with pytest.raises(PhaseOrderError):
            leader.ecall("lead_run_maf")
        with pytest.raises(PhaseOrderError):
            leader.ecall("lead_release_statistics")

    def test_member_cannot_lead(self, federation):
        member_id = next(
            m for m in federation.member_ids if m != federation.leader_id
        )
        member = federation.hosts[member_id].enclave
        with pytest.raises(ProtocolError):
            member.ecall("lead_run_maf")
