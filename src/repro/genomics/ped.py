"""PLINK text PED/MAP import and export.

Biocenters typically hold genotypes in PLINK's classic text formats: a
``.map`` file listing variants (chromosome, id, genetic distance,
position) and a ``.ped`` file with one individual per line — family/
individual ids, parents, sex, phenotype, then two alleles per variant.

GenDPR's verification operates on the paper's binary encoding (0 = only
major alleles, 1 = minor allele present), so import collapses each
diploid genotype under **dominant coding**: an individual is a ``1`` at
a SNP iff at least one of its two alleles is the minor allele.  The
minor allele of each SNP is determined from the imported sample itself
(the rarer allele), matching how a study would preprocess before
encoding.

Phenotype column semantics follow PLINK: ``2`` = affected (case),
``1`` = unaffected (control), ``0``/``-9`` = missing (rejected here —
the verification needs every individual assigned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..errors import GenomicsError
from .genotype import GenotypeMatrix
from .population import Cohort
from .snp import SnpInfo, SnpPanel

_MISSING_ALLELE = "0"


@dataclass(frozen=True)
class PedIndividual:
    """Metadata of one ``.ped`` row (genotypes live in the matrix)."""

    family_id: str
    individual_id: str
    phenotype: int  # 1 = control, 2 = case


def write_map(panel: SnpPanel) -> str:
    """Render a panel as PLINK ``.map`` text."""
    lines = [
        f"{snp.chromosome}\t{snp.snp_id}\t0\t{snp.position}" for snp in panel
    ]
    return "\n".join(lines) + "\n"


def read_map(text: str) -> SnpPanel:
    """Parse PLINK ``.map`` text into a panel."""
    snps: List[SnpInfo] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        fields = line.split()
        if len(fields) != 4:
            raise GenomicsError(
                f".map line {line_number}: expected 4 fields, got {len(fields)}"
            )
        chromosome, snp_id, _distance, position = fields
        try:
            snps.append(
                SnpInfo(
                    snp_id=snp_id,
                    chromosome=int(chromosome),
                    position=int(position),
                )
            )
        except ValueError as exc:
            raise GenomicsError(f".map line {line_number}: bad field") from exc
    if not snps:
        raise GenomicsError(".map file contains no variants")
    return SnpPanel(snps)


def write_ped(
    panel: SnpPanel,
    genotypes: GenotypeMatrix,
    phenotypes: List[int],
) -> str:
    """Render genotypes as ``.ped`` text.

    The binary encoding is expanded to diploid letters: ``0`` becomes
    the homozygous major genotype (``A A``), ``1`` the heterozygous
    ``A G`` — a lossless inverse for the dominant re-import.
    """
    if genotypes.num_snps != len(panel):
        raise GenomicsError("matrix and panel cover different variants")
    if len(phenotypes) != genotypes.num_individuals:
        raise GenomicsError("one phenotype per individual required")
    lines = []
    data = genotypes.array()
    for row in range(genotypes.num_individuals):
        phenotype = phenotypes[row]
        if phenotype not in (1, 2):
            raise GenomicsError("phenotypes must be 1 (control) or 2 (case)")
        fields = [f"FAM{row}", f"IND{row}", "0", "0", "0", str(phenotype)]
        for col, snp in enumerate(panel):
            if data[row, col]:
                fields += [snp.major_allele, snp.minor_allele]
            else:
                fields += [snp.major_allele, snp.major_allele]
        lines.append("\t".join(fields))
    return "\n".join(lines) + "\n"


def _minor_alleles(
    allele_columns: np.ndarray, line_offset: int
) -> List[Tuple[str, str]]:
    """Per SNP, determine (major, minor) from observed allele counts."""
    num_snps = allele_columns.shape[1] // 2
    out: List[Tuple[str, str]] = []
    for snp in range(num_snps):
        pair = allele_columns[:, 2 * snp : 2 * snp + 2]
        values, counts = np.unique(pair, return_counts=True)
        alleles: Dict[str, int] = {
            str(v): int(c) for v, c in zip(values, counts)
        }
        if _MISSING_ALLELE in alleles:
            raise GenomicsError(
                f"SNP column {snp}: missing genotypes are not supported"
            )
        if len(alleles) > 2:
            raise GenomicsError(f"SNP column {snp}: more than two alleles")
        if len(alleles) == 1:
            allele = next(iter(alleles))
            out.append((allele, "?"))  # monomorphic: no minor allele seen
            continue
        ordered = sorted(alleles.items(), key=lambda kv: (kv[1], kv[0]))
        minor, major = ordered[0][0], ordered[1][0]
        out.append((major, minor))
    return out


def read_ped(
    ped_text: str, panel: SnpPanel
) -> Tuple[GenotypeMatrix, List[PedIndividual]]:
    """Parse ``.ped`` text under dominant binary coding."""
    rows: List[List[str]] = []
    meta: List[PedIndividual] = []
    expected_fields = 6 + 2 * len(panel)
    for line_number, line in enumerate(ped_text.splitlines(), start=1):
        if not line.strip():
            continue
        fields = line.split()
        if len(fields) != expected_fields:
            raise GenomicsError(
                f".ped line {line_number}: expected {expected_fields} fields, "
                f"got {len(fields)}"
            )
        try:
            phenotype = int(fields[5])
        except ValueError as exc:
            raise GenomicsError(
                f".ped line {line_number}: bad phenotype"
            ) from exc
        if phenotype not in (1, 2):
            raise GenomicsError(
                f".ped line {line_number}: phenotype must be 1 or 2 "
                f"(missing phenotypes are not supported)"
            )
        meta.append(
            PedIndividual(
                family_id=fields[0],
                individual_id=fields[1],
                phenotype=phenotype,
            )
        )
        rows.append(fields[6:])
    if not rows:
        raise GenomicsError(".ped file contains no individuals")

    allele_columns = np.array(rows, dtype=object)
    assignments = _minor_alleles(allele_columns, 0)
    matrix = np.zeros((len(rows), len(panel)), dtype=np.uint8)
    for snp, (major, minor) in enumerate(assignments):
        pair = allele_columns[:, 2 * snp : 2 * snp + 2]
        carries_minor = (pair == minor).any(axis=1)
        matrix[:, snp] = carries_minor.astype(np.uint8)
    return GenotypeMatrix(matrix), meta


def cohort_from_ped(ped_text: str, map_text: str) -> Cohort:
    """Build a study cohort from PED/MAP text.

    Individuals with phenotype 2 form the case population, phenotype 1
    the control population (which also serves as the LR-test reference,
    the paper's setting).
    """
    panel = read_map(map_text)
    matrix, individuals = read_ped(ped_text, panel)
    phenotypes = np.array([ind.phenotype for ind in individuals])
    case_rows = [int(i) for i in np.nonzero(phenotypes == 2)[0]]
    control_rows = [int(i) for i in np.nonzero(phenotypes == 1)[0]]
    if not case_rows or not control_rows:
        raise GenomicsError("need both case and control individuals")
    return Cohort.control_as_reference(
        panel,
        matrix.select_individuals(case_rows),
        matrix.select_individuals(control_rows),
    )
