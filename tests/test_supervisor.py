"""Supervised runtime: retry, eviction, automated leader failover."""

from __future__ import annotations

import dataclasses

import pytest

from repro import StudyConfig, generate_cohort, partition_cohort
from repro.config import FaultConfig, IntegrityConfig, ResilienceConfig
from repro.core.federation import build_federation
from repro.core.leader import elect_leader
from repro.core.protocol import GenDPRProtocol
from repro.errors import (
    LeaderFailoverError,
    MemberUnresponsiveError,
    ResilienceError,
    SealingError,
)
from repro.genomics import SyntheticSpec

MEMBERS = 3


@pytest.fixture(scope="module")
def cohort():
    cohort, _ = generate_cohort(
        SyntheticSpec(num_snps=80, num_case=120, num_control=100, seed=5)
    )
    return cohort


@pytest.fixture(scope="module")
def base_config(cohort):
    return StudyConfig(snp_count=cohort.num_snps, study_id="supervised", seed=5)


@pytest.fixture(scope="module")
def leader_id(base_config):
    member_ids = [f"gdo-{i}" for i in range(MEMBERS)]
    return elect_leader(member_ids, base_config.seed, base_config.study_id)


@pytest.fixture(scope="module")
def reference(cohort, base_config):
    federation = build_federation(
        base_config, partition_cohort(cohort, MEMBERS), cohort
    )
    return GenDPRProtocol(federation).run()


def _run(cohort, config):
    federation = build_federation(
        config, partition_cohort(cohort, MEMBERS), cohort
    )
    result = GenDPRProtocol(federation).run()
    return federation, result


def _same_outcome(result, reference):
    return (
        result.l_prime == reference.l_prime
        and result.l_double_prime == reference.l_double_prime
        and result.l_safe == reference.l_safe
    )


class TestSupervisedHappyPath:
    def test_resilient_run_without_faults_is_identical(
        self, cohort, base_config, reference
    ):
        config = dataclasses.replace(
            base_config, resilience=ResilienceConfig.supervised()
        )
        federation, result = _run(cohort, config)
        assert _same_outcome(result, reference)
        assert federation.failovers == 0


class TestLeaderFailover:
    # Proxied leader ECALLs in a supervised run: 1 = initial
    # checkpoint, 2 = lead_collect_summaries, 3 = checkpoint,
    # 4 = lead_run_maf, 5 = lead_broadcast_retained, 6 = checkpoint, ...

    def test_crash_after_phase_one_completes_identically(
        self, cohort, base_config, reference, leader_id
    ):
        """The ISSUE's flagship scenario: kill the leader right after
        Phase 1, watch the supervisor re-elect (same GDO), re-attest,
        restore the sealed checkpoint and finish bit-identically —
        with no manual re-wiring."""
        config = dataclasses.replace(
            base_config,
            faults=FaultConfig(
                enabled=True, seed=0, crash_points=((leader_id, 4),)
            ),
            resilience=ResilienceConfig.supervised(),
        )
        federation, result = _run(cohort, config)
        assert federation.failovers == 1
        assert federation.fault_injector.counters()["crashes"] == 1
        assert _same_outcome(result, reference)

    @pytest.mark.parametrize("ecall_index", [1, 2, 3, 6, 7, 9, 10])
    def test_crash_at_any_step_is_recovered(
        self, cohort, base_config, reference, leader_id, ecall_index
    ):
        config = dataclasses.replace(
            base_config,
            faults=FaultConfig(
                enabled=True, seed=0, crash_points=((leader_id, ecall_index),)
            ),
            resilience=ResilienceConfig.supervised(),
        )
        federation, result = _run(cohort, config)
        assert federation.failovers == 1
        assert _same_outcome(result, reference)

    def test_repeated_crashes_within_budget_are_absorbed(
        self, cohort, base_config, reference, leader_id
    ):
        config = dataclasses.replace(
            base_config,
            faults=FaultConfig(
                enabled=True,
                seed=0,
                crash_points=((leader_id, 4), (leader_id, 8)),
            ),
            resilience=ResilienceConfig.supervised(max_failovers=2),
        )
        federation, result = _run(cohort, config)
        assert federation.failovers == 2
        assert _same_outcome(result, reference)

    def test_failover_budget_aborts_classified(
        self, cohort, base_config, leader_id
    ):
        config = dataclasses.replace(
            base_config,
            faults=FaultConfig(
                enabled=True,
                seed=0,
                crash_points=((leader_id, 4), (leader_id, 8)),
            ),
            resilience=ResilienceConfig.supervised(max_failovers=1),
        )
        with pytest.raises(LeaderFailoverError):
            _run(cohort, config)

    def test_failover_is_traced(self, cohort, base_config, leader_id):
        from repro.config import ObservabilityConfig

        config = dataclasses.replace(
            base_config,
            observability=ObservabilityConfig(enabled=True),
            faults=FaultConfig(
                enabled=True, seed=0, crash_points=((leader_id, 4),)
            ),
            resilience=ResilienceConfig.supervised(),
        )
        _federation, result = _run(cohort, config)
        counters = result.observability.metrics["counters"]
        assert counters["resilience.failovers"] == 1
        assert counters["resilience.leader_crashes"] == 1
        assert counters["faults.crashes"] == 1
        events = [
            s for s in result.observability.spans
            if s.name == "supervisor.failover"
        ]
        assert len(events) == 1


class TestMemberEviction:
    def test_member_crash_aborts_with_failure_report(
        self, cohort, base_config, leader_id
    ):
        member = next(
            m
            for m in (f"gdo-{i}" for i in range(MEMBERS))
            if m != leader_id
        )
        config = dataclasses.replace(
            base_config,
            faults=FaultConfig(
                enabled=True, seed=0, crash_points=((member, 1),)
            ),
            resilience=ResilienceConfig.supervised(),
        )
        with pytest.raises(MemberUnresponsiveError) as excinfo:
            _run(cohort, config)
        report = excinfo.value.report
        assert report is not None
        assert report.member_id == member
        assert report.cause == "enclave_crashed"
        assert isinstance(excinfo.value, ResilienceError)
        assert report.to_dict()["study_id"] == base_config.study_id

    def test_member_past_retry_budget_aborts_classified(
        self, cohort, base_config, leader_id
    ):
        member = next(
            m
            for m in (f"gdo-{i}" for i in range(MEMBERS))
            if m != leader_id
        )
        # A partition window so wide no retry budget can ride it out.
        config = dataclasses.replace(
            base_config,
            faults=FaultConfig(
                enabled=True,
                seed=0,
                partition_windows=((member, 1, 10_000),),
            ),
            resilience=ResilienceConfig.supervised(max_attempts=3),
        )
        with pytest.raises(MemberUnresponsiveError) as excinfo:
            _run(cohort, config)
        assert excinfo.value.report.attempts == 3

    def test_bounded_partition_is_ridden_out(
        self, cohort, base_config, reference, leader_id
    ):
        member = next(
            m
            for m in (f"gdo-{i}" for i in range(MEMBERS))
            if m != leader_id
        )
        config = dataclasses.replace(
            base_config,
            faults=FaultConfig(
                enabled=True, seed=0, partition_windows=((member, 2, 2),)
            ),
            resilience=ResilienceConfig.supervised(max_attempts=6),
        )
        federation, result = _run(cohort, config)
        assert federation.fault_injector.counters()["partition_blocks"] >= 1
        assert _same_outcome(result, reference)


class TestByzantineCheckpointRestore:
    """Tampered sealed checkpoints at failover (docs/RESILIENCE.md).

    With integrity verification on, leader ECALL 5 (``lead_run_maf``)
    sits just past the *second* checkpoint — crashing there forces a
    restore while a superseded sealed blob exists for the adversary to
    serve.
    """

    def _byzantine_config(self, base_config, leader_id, tamper, failovers):
        return dataclasses.replace(
            base_config,
            integrity=IntegrityConfig.on(),
            resilience=ResilienceConfig.supervised(max_failovers=failovers),
            faults=FaultConfig.byzantine(
                9,
                intensity=0.0,
                checkpoint_tamper=tamper,
                crash_points=((leader_id, 5),),
            ),
        )

    def test_corrupted_checkpoint_fails_closed_against_budget(
        self, cohort, base_config, leader_id
    ):
        config = self._byzantine_config(
            base_config, leader_id, "corrupt", failovers=2
        )
        federation = build_federation(
            config, partition_cohort(cohort, MEMBERS), cohort
        )
        with pytest.raises(SealingError):
            GenDPRProtocol(federation).run()
        # Every restore attempt consumed a failover and was counted:
        # the study never proceeds on unauthenticated state.
        assert federation.failovers == 2
        counters = federation.integrity_monitor.counters()
        assert counters["sealed_restore_failures"] >= 1
        assert counters["quarantines"] >= 1

    def test_stale_checkpoint_rejected_then_recovered(
        self, cohort, base_config, reference, leader_id
    ):
        config = self._byzantine_config(
            base_config, leader_id, "stale", failovers=3
        )
        federation = build_federation(
            config, partition_cohort(cohort, MEMBERS), cohort
        )
        result = GenDPRProtocol(federation).run()
        assert _same_outcome(result, reference)
        counters = federation.integrity_monitor.counters()
        assert counters["stale_checkpoints_rejected"] == 1
        # The rejected rollback cost one failover; the clean restore
        # that followed cost another.
        assert federation.failovers == 2
