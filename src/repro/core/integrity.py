"""Byzantine-integrity accounting for one federation run.

The detection mechanisms live where the data is — transcript digests in
:class:`~repro.tee.channel.ChannelEndpoint`, echo verification in the
trusted module, epoch checks in the sealed-checkpoint path.  What they
have in common is the *bookkeeping*: every detection must increment a
metric (``integrity.*`` in the run report) and every violation that
triggers a recovery must leave a quarantine record, so a chaos run's
verdict is readable without scraping logs.  :class:`IntegrityMonitor`
is that shared ledger; one instance is attached to each
:class:`~repro.core.federation.Federation`.
"""

from __future__ import annotations

import threading
from typing import Dict, List

from ..errors import (
    EquivocationError,
    IntegrityError,
    ProtocolError,
    SealingError,
    StaleCheckpointError,
    TranscriptDivergenceError,
)
from .resilience import FailureReport

#: Counter names, in the order they appear in reports.
COUNTER_NAMES = (
    "equivocations_detected",
    "transcript_divergences",
    "stale_checkpoints_rejected",
    "sealed_restore_failures",
    "quarantines",
)


def classify_violation(error: Exception) -> str:
    """The ``integrity.*`` counter name a violation is attributed to."""
    if isinstance(error, EquivocationError):
        return "equivocations_detected"
    if isinstance(error, TranscriptDivergenceError):
        return "transcript_divergences"
    if isinstance(error, StaleCheckpointError):
        return "stale_checkpoints_rejected"
    if isinstance(error, SealingError):
        return "sealed_restore_failures"
    if isinstance(error, IntegrityError):
        # A future IntegrityError subtype without a dedicated counter
        # still must not vanish from the ledger.
        return "quarantines"
    raise ProtocolError(
        f"not an integrity violation: {type(error).__name__}"
    )


class IntegrityMonitor:
    """Thread-safe detection counters + quarantine ledger of one run."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}
        self._quarantined: List[FailureReport] = []

    def record_detection(self, error: Exception) -> str:
        """Classify a detected violation and bump its counter.

        Called at the *detection site* (the integrity rounds, the
        checkpoint-restore path), so the metric increments whether or
        not a supervisor is present to recover.  Returns the counter
        name the error was attributed to.
        """
        name = classify_violation(error)
        with self._lock:
            self._counters[name] += 1
        return name

    def quarantine(self, report: FailureReport) -> None:
        """Record the implicated node of a violation-triggered recovery."""
        with self._lock:
            self._quarantined.append(report)
            self._counters["quarantines"] += 1

    # -- reporting -----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def quarantined(self) -> List[FailureReport]:
        with self._lock:
            return list(self._quarantined)

    @property
    def detections(self) -> int:
        """Total violations detected (quarantines excluded: one event
        may legitimately both count a detection and a quarantine)."""
        with self._lock:
            return sum(
                count
                for name, count in self._counters.items()
                if name != "quarantines"
            )
