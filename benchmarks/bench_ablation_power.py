"""Ablation — empirical vs analytical LR-test power.

GenDPR (like SecureGenome) selects the safe subset with an *empirical*
power estimate: LR scores of actual case/reference individuals.  A
cheaper design would use the closed-form normal approximation of
:mod:`repro.stats.power` over the frequency vectors alone.  This
ablation compares the two selectors' outputs and cost on the paper's
largest scenario, quantifying what the empirical search buys: the
analytical selector needs no LR-matrix exchange at all but trusts the
CLT on exactly the borderline subsets where decisions matter.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import PAPER_CASE_FULL, paper_cohort, render_table
from repro.core.pipeline import lr_ranking_order, run_local_pipeline
from repro.stats import (
    lr_matrix,
    rank_pvalues,
    select_safe_subset,
    select_safe_subset_analytical,
)

SNPS = 5_000
ALPHA, BETA = 0.1, 0.9


def test_ablation_empirical_vs_analytical_power(benchmark, save_result):
    cohort, _ = paper_cohort(PAPER_CASE_FULL, SNPS)
    case = cohort.case.array()
    reference = cohort.reference.array()
    outcome = run_local_pipeline(
        case, reference, maf_cutoff=0.05, ld_cutoff=1e-5, alpha=ALPHA, beta=BETA
    )
    columns = outcome.l_double_prime
    n_case, n_ref = case.shape[0], reference.shape[0]
    case_freqs = case[:, columns].sum(axis=0) / n_case
    ref_freqs = reference[:, columns].sum(axis=0) / n_ref
    ranking = rank_pvalues(
        case.sum(axis=0, dtype=np.int64),
        reference.sum(axis=0, dtype=np.int64),
        n_case,
        n_ref,
    )
    order = lr_ranking_order(columns, ranking)

    def run_both():
        begin = time.perf_counter()
        case_lr = lr_matrix(case[:, columns], case_freqs, ref_freqs)
        ref_lr = lr_matrix(reference[:, columns], case_freqs, ref_freqs)
        empirical = select_safe_subset(
            case_lr, ref_lr, order, alpha=ALPHA, beta=BETA
        )
        empirical_s = time.perf_counter() - begin
        begin = time.perf_counter()
        analytical = select_safe_subset_analytical(
            case_freqs, ref_freqs, order, alpha=ALPHA, beta=BETA
        )
        analytical_s = time.perf_counter() - begin
        return empirical, analytical, empirical_s, analytical_s

    empirical, analytical, emp_s, ana_s = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    emp_set = {columns[c] for c in empirical.selected_columns}
    ana_set = {columns[c] for c in analytical}
    overlap = len(emp_set & ana_set)
    table = render_table(
        ["Selector", "Selected", "Overlap", "Seconds"],
        [
            ["Empirical (protocol)", len(emp_set), overlap, f"{emp_s:.3f}"],
            ["Analytical (ablation)", len(ana_set), overlap, f"{ana_s:.3f}"],
        ],
    )
    save_result(
        "ablation_power",
        "Ablation: empirical vs analytical LR-test selection "
        f"(L''={len(columns)}).\n" + table,
    )
    assert emp_set, "empirical selector must retain something"
    # The analytical approximation must agree on the clear majority.
    assert overlap >= 0.5 * min(len(emp_set), len(ana_set))
