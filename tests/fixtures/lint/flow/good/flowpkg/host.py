"""Untrusted host using only sanctioned and audited paths."""

from .enclave import MiniEnclave


def run():
    enc = MiniEnclave()
    frame = enc.export_column(3)  # ok: ciphertext is clean
    stats = enc.release_stats()  # lint: declassify(stats are the study output)
    return frame, stats
