"""R6/R7/R8 fixture tests: the whole-program taint rules fire on the
``bad`` flowpkg tree, stay quiet on the ``good`` twin, and pin the
declassification inventory exactly.

The fixture ships its own ``lint.toml`` with ``replace = true`` so the
taint model under test is the miniature flowpkg policy, not the
repro-specific defaults.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.errors import LintConfigError
from repro.lint import LintConfig, run_lint
from repro.lint.config import load_config
from repro.lint.flow.model import (
    DEFAULT_SOURCES,
    TaintModel,
)
from repro.lint.flow.rules import find_declassify_marker
from repro.lint.reporting import json_report

FLOW = pathlib.Path(__file__).parent / "fixtures" / "lint" / "flow"
CONFIG = load_config(FLOW / "lint.toml")


def lint_tree(name: str):
    return run_lint([FLOW / name], CONFIG)


def lines_by_file(findings, rule):
    grouped = {}
    for finding in findings:
        if finding.rule != rule:
            continue
        stem = pathlib.Path(finding.path).name
        grouped.setdefault(stem, set()).add(finding.line)
    return grouped


class TestBadFixture:
    """The planted violations, pinned to exact lines."""

    def test_r6_secret_leaks(self):
        result = lint_tree("bad")
        assert lines_by_file(result.findings, "R6") == {
            # print(col) direct; print(payload) reached via log_helper
            "enclave.py": {21, 25},
            # metrics_push(direct): interprocedural genotype -> metrics
            "host.py": {16},
        }

    def test_r6_via_chain_names_the_intermediate(self):
        result = lint_tree("bad")
        lifted = [
            f
            for f in result.findings
            if f.rule == "R6" and f.line == 25
        ]
        assert len(lifted) == 1
        assert "via" in lifted[0].message
        assert "log_helper" in lifted[0].message
        assert "genotype" in lifted[0].message
        assert "stdout" in lifted[0].message

    def test_r7_boundary_crossings(self):
        result = lint_tree("bad")
        assert lines_by_file(result.findings, "R7") == {
            # direct call and string-dispatched ecall("export_column")
            "host.py": {12, 13},
        }
        for finding in result.findings:
            if finding.rule == "R7":
                assert "export_column" in finding.message
                assert "enclave" in finding.message

    def test_r7_declared_ecall_result_is_allowed(self):
        # enc.ecall("declared_result") on host.py:14 must NOT fire.
        result = lint_tree("bad")
        assert 14 not in lines_by_file(result.findings, "R7").get(
            "host.py", set()
        )

    def test_r8_unmarked_declassifier_call(self):
        result = lint_tree("bad")
        assert lines_by_file(result.findings, "R8") == {"host.py": {15}}
        (finding,) = [f for f in result.findings if f.rule == "R8"]
        assert "declassify" in finding.message

    def test_declassification_inventory(self):
        result = lint_tree("bad")
        inventory = result.artifacts["declassifications"]
        assert len(inventory) == 1
        (entry,) = inventory
        assert entry["target"] == (
            "flowpkg.enclave.MiniEnclave.release_stats"
        )
        assert entry["caller"] == "flowpkg.host.run"
        assert entry["module"] == "flowpkg.host"
        assert entry["path"].endswith("host.py")
        assert entry["line"] == 15
        assert entry["reason"] is None
        assert entry["marked"] is False

    def test_flow_artifacts(self):
        result = lint_tree("bad")
        callgraph = result.artifacts["callgraph"]
        assert callgraph["functions"] >= 10
        edges = set(map(tuple, callgraph["edges"]))
        # The dispatcher edge resolved through the string literal.
        assert (
            "flowpkg.host.run",
            "flowpkg.enclave.MiniEnclave.export_column",
        ) in edges
        flow = result.artifacts["flow"]
        # Store.load minted genotype in leak_column, audit,
        # export_column and declared_result.
        assert len(flow["source_calls"]) == 4
        assert {c["kind"] for c in flow["source_calls"]} == {"genotype"}
        assert (
            "flowpkg.enclave.MiniEnclave.export_column"
            in flow["tainted_returns"]
        )

    def test_rules_run_is_exactly_the_flow_set(self):
        result = lint_tree("bad")
        assert result.rules_run == ["R6", "R7", "R8"]


class TestGoodFixture:
    def test_no_findings(self):
        result = lint_tree("good")
        assert result.findings == [], [
            f.render() for f in result.findings
        ]

    def test_inventory_pins_the_marked_release(self):
        result = lint_tree("good")
        inventory = result.artifacts["declassifications"]
        assert len(inventory) == 1
        (entry,) = inventory
        assert entry["line"] == 9
        assert entry["reason"] == "stats are the study output"
        assert entry["marked"] is True
        assert "orphan" not in entry


class TestReportSchema:
    """Satellite: the JSON report carries the flow payloads."""

    def test_flow_json_report(self):
        result = lint_tree("bad")
        report = json_report(result, CONFIG, ["bad"])
        assert report["version"] == 2
        assert set(report["rules"]) == {"R6", "R7", "R8"}
        assert report["clean"] is False
        assert len(report["declassifications"]) == 1
        assert report["declassifications"][0]["marked"] is False
        by_rule = report["summary"]["by_rule"]
        assert by_rule == {"R6": 3, "R7": 2, "R8": 1}

    def test_flow_rules_absent_without_flow(self):
        result = run_lint([FLOW / "bad"], LintConfig())
        assert "R6" not in result.rules_run
        assert not any(
            f.rule in {"R6", "R7", "R8"} for f in result.findings
        )
        report = json_report(result, LintConfig(), ["bad"])
        assert report["declassifications"] == []


class TestMarkersAndModel:
    def test_orphan_marker_is_inventoried(self, tmp_path):
        stale = tmp_path / "stale.py"
        stale.write_text(
            "X = 1  # lint: declassify(kept for review)\n",
            encoding="utf-8",
        )
        result = run_lint([stale], CONFIG)
        assert result.findings == []
        inventory = result.artifacts["declassifications"]
        assert len(inventory) == 1
        assert inventory[0]["orphan"] is True
        assert inventory[0]["reason"] == "kept for review"
        assert inventory[0]["target"] is None

    def test_find_declassify_marker(self):
        match = find_declassify_marker(
            "x = release()  # lint: declassify(published by design)"
        )
        assert match is not None
        assert match.group("reason") == "published by design"

    def test_marker_ignores_quoted_mentions(self):
        assert (
            find_declassify_marker("msg = '# lint: declassify(doc)'")
            is None
        )
        assert (
            find_declassify_marker('"""# lint: declassify(doc)"""')
            is None
        )

    def test_model_replace_drops_defaults(self):
        model = TaintModel.from_config(
            {"replace": True, "sources": {"m.f": "key"}}
        )
        assert dict(model.sources) == {"m.f": "key"}
        assert model.sanctioned == ()

    def test_model_extends_defaults_by_default(self):
        model = TaintModel.from_config({"sources": {"m.f": "key"}})
        assert model.sources["m.f"] == "key"
        for pattern, kind in DEFAULT_SOURCES.items():
            assert model.sources[pattern] == kind

    def test_model_rejects_bad_tables(self):
        with pytest.raises(LintConfigError):
            TaintModel.from_config({"sources": ["not-a-table"]})
        with pytest.raises(LintConfigError):
            TaintModel.from_config({"sanctioned": "not-a-list"})
        with pytest.raises(LintConfigError):
            TaintModel.from_config({"leak_sinks": {"print": 3}})
