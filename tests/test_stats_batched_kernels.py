"""Batched numpy kernels vs their scalar loop references.

The shard pipeline leans on vectorised statistics (window pair lists,
pair-moment slabs, chi-squared rankings, LR matrices).  Each kernel
ships a ``*_scalar`` loop oracle that evaluates the same primitives in
the same operation order, so equality here is *exact* — element-wise
identical over randomised genotype matrices, not approximate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import chisq, ld, lr_test

SEEDS = (0, 1, 7)


def _random_genotypes(rng: np.random.Generator, rows: int, cols: int) -> np.ndarray:
    frequencies = rng.uniform(0.02, 0.6, size=cols)
    return (rng.random((rows, cols)) < frequencies).astype(np.int8)


class TestWindowPairs:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("window", [1, 3, 25])
    def test_matches_scalar_on_random_walks(self, seed, window):
        rng = np.random.default_rng(seed)
        snps = sorted(rng.choice(500, size=60, replace=False).tolist())
        fast = ld.window_pairs(snps, window)
        slow = ld.window_pairs_scalar(snps, window)
        assert fast.dtype == np.int64
        assert np.array_equal(fast, slow)

    @pytest.mark.parametrize("snps", [[], [5], [5, 9]])
    def test_degenerate_walks(self, snps):
        fast = ld.window_pairs(snps, 25)
        slow = ld.window_pairs_scalar(snps, 25)
        assert np.array_equal(fast, slow)
        assert fast.shape == (max(0, len(snps) - 1), 2)

    def test_window_larger_than_walk(self):
        snps = [3, 1, 4, 1, 5][:4]
        fast = ld.window_pairs(snps, 100)
        slow = ld.window_pairs_scalar(snps, 100)
        assert np.array_equal(fast, slow)
        assert fast.shape[0] == 6  # all C(4, 2) pairs

    def test_rejects_bad_window(self):
        from repro.errors import GenomicsError

        with pytest.raises(GenomicsError):
            ld.window_pairs([1, 2, 3], 0)


class TestPairMomentsKernel:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_scalar_on_random_matrices(self, seed):
        rng = np.random.default_rng(seed)
        gathered = _random_genotypes(rng, rows=120, cols=18)
        inverse = rng.integers(0, 18, size=(200, 2))
        fast = ld.pair_moments_kernel(gathered, inverse)
        slow = ld.pair_moments_scalar(gathered, inverse)
        assert fast.dtype == np.int64
        assert np.array_equal(fast, slow)

    def test_batching_does_not_change_results(self):
        rng = np.random.default_rng(13)
        gathered = _random_genotypes(rng, rows=80, cols=10)
        inverse = rng.integers(0, 10, size=(37, 2))
        whole = ld.pair_moments_kernel(gathered, inverse, batch=4096)
        tiny = ld.pair_moments_kernel(gathered, inverse, batch=3)
        assert np.array_equal(whole, tiny)

    def test_binary_square_sums_repeat_linear(self):
        rng = np.random.default_rng(3)
        gathered = _random_genotypes(rng, rows=50, cols=6)
        inverse = rng.integers(0, 6, size=(20, 2))
        out = ld.pair_moments_kernel(gathered, inverse)
        assert np.array_equal(out[:, 3], out[:, 0])
        assert np.array_equal(out[:, 4], out[:, 1])

    def test_empty_pair_list(self):
        gathered = np.zeros((10, 4), dtype=np.int8)
        out = ld.pair_moments_kernel(gathered, np.empty((0, 2), dtype=np.int64))
        assert out.shape == (0, 5)

    def test_moments_feed_identical_r_squared(self):
        """Kernel rows and direct column correlation agree pairwise."""
        rng = np.random.default_rng(11)
        gathered = _random_genotypes(rng, rows=150, cols=8)
        inverse = np.asarray([(0, 1), (2, 5), (3, 3)], dtype=np.int64)
        rows = ld.pair_moments_kernel(gathered, inverse)
        for (left, right), row in zip(inverse.tolist(), rows):
            moments = ld.PairMoments(*row.tolist(), count=gathered.shape[0])
            direct = ld.r_squared_direct(gathered[:, left], gathered[:, right])
            assert ld.r_squared(moments) == pytest.approx(direct, abs=1e-12)


class TestRankPvalues:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_scalar_on_random_counts(self, seed):
        rng = np.random.default_rng(seed)
        n_case, n_control = 180, 140
        case = rng.integers(0, n_case + 1, size=64)
        control = rng.integers(0, n_control + 1, size=64)
        fast = chisq.rank_pvalues(case, control, n_case, n_control)
        slow = chisq.rank_pvalues_scalar(case, control, n_case, n_control)
        assert np.array_equal(fast, slow)

    def test_degenerate_margins(self):
        """Fixed alleles (all zero / all carriers) rank as p = 1 exactly."""
        n_case, n_control = 30, 20
        case = np.array([0, n_case, 0, 17])
        control = np.array([0, n_control, n_control, 11])
        fast = chisq.rank_pvalues(case, control, n_case, n_control)
        slow = chisq.rank_pvalues_scalar(case, control, n_case, n_control)
        assert np.array_equal(fast, slow)
        assert fast[0] == 1.0 and fast[1] == 1.0


class TestLrMatrix:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_scalar_on_random_cohorts(self, seed):
        rng = np.random.default_rng(seed)
        genotypes = _random_genotypes(rng, rows=90, cols=40)
        case_freq = rng.uniform(0.0, 1.0, size=40)
        ref_freq = rng.uniform(0.0, 1.0, size=40)
        fast = lr_test.lr_matrix(genotypes, case_freq, ref_freq)
        slow = lr_test.lr_matrix_scalar(genotypes, case_freq, ref_freq)
        assert np.array_equal(fast, slow)

    def test_extreme_frequencies_clipped_identically(self):
        genotypes = np.array([[0, 1], [1, 0], [1, 1]], dtype=np.int8)
        case_freq = np.array([0.0, 1.0])
        ref_freq = np.array([1.0, 0.0])
        fast = lr_test.lr_matrix(genotypes, case_freq, ref_freq)
        slow = lr_test.lr_matrix_scalar(genotypes, case_freq, ref_freq)
        assert np.array_equal(fast, slow)
        assert np.isfinite(fast).all()
