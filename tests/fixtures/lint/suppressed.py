"""Inline-suppression fixture: violations acknowledged in place."""

import time


def checkpoint_label(counter):
    stamp = time.time()  # lint: disable=R2  debugging label, not a decision
    frozen = list({counter, 2, 3})  # lint: disable
    return stamp, frozen


def still_flagged(counter):
    return id(counter)  # no suppression comment: must still fire
