"""Message envelopes carried by the simulated network.

An :class:`Envelope` is the untrusted wire unit: routing metadata in the
clear (sender, receiver, protocol tag) and an opaque body.  For GenDPR
traffic the body is always a secure-channel frame — the network layer
never sees plaintext intermediate data, which the audit harness checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_COUNTER = itertools.count()


@dataclass(frozen=True)
class Envelope:
    """One point-to-point message on the simulated network."""

    sender: str
    receiver: str
    tag: str
    body: bytes
    message_id: int = field(default_factory=lambda: next(_COUNTER))

    def size(self) -> int:
        """Total bytes on the wire (headers + body)."""
        return (
            len(self.sender.encode("utf-8"))
            + len(self.receiver.encode("utf-8"))
            + len(self.tag.encode("utf-8"))
            + 8  # message id
            + len(self.body)
        )


@dataclass
class LinkStats:
    """Accumulated traffic between one ordered pair of nodes."""

    messages: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0

    def record(self, envelope: Envelope) -> None:
        self.messages += 1
        self.payload_bytes += len(envelope.body)
        self.wire_bytes += envelope.size()

    def merge(self, other: "LinkStats") -> "LinkStats":
        """Fold another link's totals into this one; returns ``self``.

        The single aggregation path shared by
        :meth:`SimulatedNetwork.total_stats` and the observability
        metrics bridge, so the two can never disagree.
        """
        self.messages += other.messages
        self.payload_bytes += other.payload_bytes
        self.wire_bytes += other.wire_bytes
        return self
