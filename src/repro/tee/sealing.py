"""TEE data sealing.

GenDPR uses the TEE's sealing mechanism "to store data persistently
outside the TEE.  Sealed data can only be encrypted/decrypted by the
enclave using its private key" (Section 4).  The simulation implements
MRENCLAVE-policy sealing: the sealing key is derived from the platform
root key and the enclave measurement, so

* the same enclave code on the same platform can unseal its own blobs,
* a different enclave (different measurement) on the same platform
  cannot, and
* the same enclave code on a different platform cannot either.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.authenticated import StreamAead
from ..errors import AuthenticationError, SealingError
from .enclave import Enclave

_SEAL_MAGIC = b"RSEAL1"


@dataclass(frozen=True)
class SealedBlob:
    """An opaque sealed payload, safe to store on untrusted media."""

    data: bytes
    label: str

    def __len__(self) -> int:
        return len(self.data)


def seal(enclave: Enclave, plaintext: bytes, label: str = "") -> SealedBlob:
    """Seal ``plaintext`` to ``enclave``'s identity.

    ``label`` is bound as associated data: unsealing under a different
    label fails, preventing blob-swapping between storage slots.
    """
    aead = StreamAead(enclave._sealing_key())
    frame = aead.encrypt(
        plaintext, associated_data=_SEAL_MAGIC + label.encode("utf-8")
    )
    return SealedBlob(data=_SEAL_MAGIC + frame, label=label)


def unseal(enclave: Enclave, blob: SealedBlob) -> bytes:
    """Unseal a blob; raises :class:`SealingError` on any mismatch."""
    if not blob.data.startswith(_SEAL_MAGIC):
        raise SealingError("not a sealed blob")
    aead = StreamAead(enclave._sealing_key())
    try:
        return aead.decrypt(
            blob.data[len(_SEAL_MAGIC) :],
            associated_data=_SEAL_MAGIC + blob.label.encode("utf-8"),
        )
    except AuthenticationError as exc:
        raise SealingError(
            "unsealing failed: wrong enclave identity, platform or label"
        ) from exc
