"""Resource metering."""

from __future__ import annotations

import time

import pytest

from repro.errors import ResourceError
from repro.tee.resources import (
    BASELINE_MEMORY_BYTES,
    ResourceMeter,
    ResourceReport,
)


class TestResourceMeter:
    def test_baseline_memory(self):
        meter = ResourceMeter()
        assert meter.current_memory_bytes == BASELINE_MEMORY_BYTES

    def test_register_and_release(self):
        meter = ResourceMeter()
        meter.register_buffer("x", 1000)
        meter.register_buffer("y", 500)
        assert meter.current_memory_bytes == BASELINE_MEMORY_BYTES + 1500
        meter.release_buffer("x")
        assert meter.current_memory_bytes == BASELINE_MEMORY_BYTES + 500
        meter.release_buffer("unknown")  # no-op

    def test_resize_replaces(self):
        meter = ResourceMeter()
        meter.register_buffer("x", 1000)
        meter.register_buffer("x", 200)
        assert meter.current_memory_bytes == BASELINE_MEMORY_BYTES + 200

    def test_peak_tracks_high_water_mark(self):
        meter = ResourceMeter()
        meter.register_buffer("big", 10_000)
        meter.release_buffer("big")
        meter.register_buffer("small", 10)
        report = meter.report()
        assert report.peak_memory_bytes == BASELINE_MEMORY_BYTES + 10_000
        assert report.current_memory_bytes == BASELINE_MEMORY_BYTES + 10

    def test_negative_size_rejected(self):
        with pytest.raises(ResourceError):
            ResourceMeter().register_buffer("x", -1)

    def test_measure_accumulates_by_label(self):
        meter = ResourceMeter()
        with meter.measure("phase-a"):
            time.sleep(0.005)
        with meter.measure("phase-a"):
            pass
        with meter.measure("phase-b"):
            pass
        report = meter.report()
        assert report.ecall_count == 3
        assert report.cpu_seconds_by_label["phase-a"] >= 0.005
        assert set(report.cpu_seconds_by_label) == {"phase-a", "phase-b"}

    def test_measure_records_on_exception(self):
        meter = ResourceMeter()
        with pytest.raises(RuntimeError):
            with meter.measure("failing"):
                raise RuntimeError("boom")
        assert meter.report().ecall_count == 1

    def test_cpu_utilization_bounds(self):
        meter = ResourceMeter()
        with meter.measure("work"):
            time.sleep(0.002)
        report = meter.report()
        assert 0.0 < report.cpu_utilization <= 1.0

    def test_reset_clock(self):
        meter = ResourceMeter()
        time.sleep(0.005)
        meter.reset_clock()
        assert meter.report().elapsed_seconds < 0.005


class TestResourceReport:
    def test_zero_elapsed_utilization(self):
        report = ResourceReport(
            cpu_seconds_by_label={},
            total_cpu_seconds=0.0,
            elapsed_seconds=0.0,
            current_memory_bytes=0,
            peak_memory_bytes=0,
            ecall_count=0,
        )
        assert report.cpu_utilization == 0.0

    def test_utilization_capped_at_one(self):
        report = ResourceReport(
            cpu_seconds_by_label={"x": 5.0},
            total_cpu_seconds=5.0,
            elapsed_seconds=1.0,
            current_memory_bytes=0,
            peak_memory_bytes=0,
            ecall_count=1,
        )
        assert report.cpu_utilization == 1.0

    def test_kib_conversion(self):
        report = ResourceReport(
            cpu_seconds_by_label={},
            total_cpu_seconds=0.0,
            elapsed_seconds=1.0,
            current_memory_bytes=2048,
            peak_memory_bytes=4096,
            ecall_count=0,
        )
        assert report.peak_memory_kib == 4.0
