"""Engine-level lint tests: suppression, baseline, CLI, JSON schema.

Rule semantics live in ``tests/test_lint_rules.py``; this module covers
the machinery around them — discovery, syntax-error handling, inline
suppressions, the baseline lifecycle, TOML configuration, the CLI
subcommand and the JSON report contract that CI archives.
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading

import pytest

from repro.cli import main
from repro.errors import LintConfigError
from repro.lint import (
    Baseline,
    LintConfig,
    OrderedLockFactory,
    ScopeMap,
    combined_cycles,
    find_config,
    json_report,
    load_config,
    run_lint,
)
from repro.lint.engine import SYNTAX_RULE
from repro.lint.rules.locks import find_cycles

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint"

PROTOCOL_ONLY = LintConfig(
    scope_map=ScopeMap({"protocol": ("suppressed",)}), baseline_path=None
)


class TestSuppression:
    def test_inline_suppressions_counted_not_reported(self):
        result = run_lint([FIXTURES / "suppressed.py"], PROTOCOL_ONLY)
        # time.time and list({...}) are disabled in place; id() is not.
        assert result.suppressed_inline == 2
        assert [f.rule for f in result.findings] == ["R2"]
        assert "id(" in result.findings[0].line_content
        # all_findings keeps the pre-filter view for --update-baseline.
        assert len(result.all_findings) == 3

    def test_bare_disable_covers_every_rule(self):
        result = run_lint([FIXTURES / "suppressed.py"], PROTOCOL_ONLY)
        suppressed_lines = {
            f.line for f in result.all_findings
        } - {f.line for f in result.findings}
        assert len(suppressed_lines) == 2


class TestMultiLineSuppression:
    """Suppression anchors to whole logical statements, not one line.

    Regression tests for the extent-based matcher: a marker anywhere on
    a parenthesized multi-line statement suppresses a finding on any of
    its physical lines, while compound-statement extents stay
    header-only so body markers never leak upward.
    """

    def _lint(self, tmp_path, source):
        module = tmp_path / "mod.py"
        module.write_text(source, encoding="utf-8")
        config = LintConfig(
            scope_map=ScopeMap({"protocol": ("mod",)}), baseline_path=None
        )
        return run_lint([module], config)

    def test_marker_on_closing_line_suppresses_multiline_raise(self):
        result = self._lint(
            tmp_path=self._tmp,
            source=(
                "def fail():\n"
                "    raise ValueError(\n"
                '        "boom"\n'
                "    )  # lint: disable=R5\n"
            ),
        )
        assert result.findings == []
        assert result.suppressed_inline == 1

    def test_marker_on_opening_line_suppresses_later_finding(self):
        # The R2 finding anchors at the ``id(`` line; the marker sits on
        # the closing bracket two lines down — same statement, covered.
        result = self._lint(
            tmp_path=self._tmp,
            source=(
                "def key(counter):\n"
                "    return [\n"
                "        id(counter),\n"
                "    ]  # lint: disable=R2\n"
            ),
        )
        assert result.findings == []
        assert result.suppressed_inline == 1

    def test_body_marker_does_not_suppress_header_finding(self):
        # ``for item in {...}`` fires R2 on the header; a marker inside
        # the loop body must not reach it (header-only extents).
        result = self._lint(
            tmp_path=self._tmp,
            source=(
                "def walk():\n"
                "    out = []\n"
                "    for item in {1, 2, 3}:\n"
                "        out.append(item)  # lint: disable=R2\n"
                "    return out\n"
            ),
        )
        assert [f.rule for f in result.findings] == ["R2"]
        assert result.findings[0].line == 3
        assert result.suppressed_inline == 0

    def test_marker_scoped_to_other_rule_does_not_suppress(self):
        result = self._lint(
            tmp_path=self._tmp,
            source=(
                "def fail():\n"
                "    raise ValueError(\n"
                '        "boom"\n'
                "    )  # lint: disable=R2\n"
            ),
        )
        assert [f.rule for f in result.findings] == ["R5"]

    @pytest.fixture(autouse=True)
    def _capture_tmp(self, tmp_path):
        self._tmp = tmp_path


class TestBaseline:
    def test_round_trip_covers_and_unused(self, tmp_path):
        result = run_lint([FIXTURES / "suppressed.py"], PROTOCOL_ONLY)
        assert len(result.findings) == 1

        baseline = Baseline.from_findings(result.findings)
        path = tmp_path / "baseline.json"
        baseline.save(path)
        reloaded = Baseline.load(path)

        again = run_lint(
            [FIXTURES / "suppressed.py"], PROTOCOL_ONLY, reloaded
        )
        assert again.findings == []
        assert again.baselined == 1
        assert again.unused_baseline_entries == []
        assert again.clean

    def test_stale_entries_surface(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "entries": [
                        {
                            "rule": "R2",
                            "module": "suppressed",
                            "content": "this line no longer exists",
                        }
                    ],
                }
            ),
            encoding="utf-8",
        )
        baseline = Baseline.load(path)
        result = run_lint(
            [FIXTURES / "suppressed.py"], PROTOCOL_ONLY, baseline
        )
        assert len(result.findings) == 1  # nothing matched the stale entry
        assert len(result.unused_baseline_entries) == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}', encoding="utf-8")
        with pytest.raises(LintConfigError):
            Baseline.load(path)


class TestEngineMechanics:
    def test_syntax_error_becomes_finding(self):
        result = run_lint(
            [FIXTURES / "syntax_error.py"],
            LintConfig(scope_map=ScopeMap({}), baseline_path=None),
        )
        assert [f.rule for f in result.findings] == [SYNTAX_RULE]
        assert not result.clean

    def test_missing_path_is_config_error(self, tmp_path):
        with pytest.raises(LintConfigError):
            run_lint([tmp_path / "nope"], PROTOCOL_ONLY)

    def test_unscoped_module_untouched(self, tmp_path):
        victim = tmp_path / "unscoped.py"
        victim.write_text("import random\nraise_site = id(object())\n")
        result = run_lint([victim], PROTOCOL_ONLY)
        assert result.findings == []
        assert result.files_scanned == 1


@pytest.mark.skipif(
    sys.version_info < (3, 11), reason="tomllib is 3.11+"
)
class TestTomlConfig:
    def test_fixture_config_loads(self):
        config = load_config(FIXTURES / "lint.toml")
        assert config.baseline_path == "fixture-baseline.json"
        assert "r3_bad" in config.scope_map.as_dict()["crypto"]

    def test_find_config_walks_upward(self):
        assert find_config(FIXTURES / "r1_bad.py") == FIXTURES / "lint.toml"


class TestCli:
    def test_lint_fixture_tree_exits_1_with_findings(self, capsys):
        # The fixture directory deliberately contains violations.
        code = main(["lint", str(FIXTURES), "--config",
                     str(FIXTURES / "lint.toml")])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "R1" in out

    def test_injected_violation_turns_clean_tree_red(self, tmp_path, capsys):
        # A scoped tree starts clean; planting one violation flips the
        # exit code — the property the CI lint job relies on.
        pkg = tmp_path / "proj"
        pkg.mkdir()
        (pkg / "lint.toml").write_text(
            '[lint.scopes]\nprotocol = ["mod"]\n', encoding="utf-8"
        )
        target = pkg / "mod.py"
        target.write_text("VALUE = 1\n", encoding="utf-8")
        config = ["--config", str(pkg / "lint.toml")]
        if sys.version_info < (3, 11):
            pytest.skip("tomllib is 3.11+")
        assert main(["lint", str(target)] + config) == 0
        capsys.readouterr()
        target.write_text("import time\nVALUE = time.time()\n",
                          encoding="utf-8")
        assert main(["lint", str(target)] + config) == 1

    def test_json_output_matches_schema(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(
            [
                "lint",
                str(FIXTURES / "r2_bad.py"),
                "--config",
                str(FIXTURES / "lint.toml"),
                "--format",
                "json",
                "--output",
                str(report_path),
            ]
        )
        if sys.version_info < (3, 11):
            pytest.skip("tomllib is 3.11+")
        assert code == 1
        capsys.readouterr()
        report = json.loads(report_path.read_text(encoding="utf-8"))

        assert report["version"] == 2
        assert report["tool"] == "repro.lint"
        assert report["clean"] is False
        # Without --flow only the syntactic rules run (and are listed).
        assert set(report["rules"]) == {"R1", "R2", "R3", "R4", "R5"}
        assert report["baselined"] == []
        assert report["declassifications"] == []
        for rule in report["rules"].values():
            assert {"name", "rationale", "default_scopes",
                    "severity"} <= set(rule)
        assert report["summary"]["findings"] == len(report["findings"])
        assert report["summary"]["by_rule"].get("R2") == 6
        for finding in report["findings"]:
            assert {
                "rule", "severity", "path", "module", "line", "column",
                "message", "fingerprint",
            } <= set(finding)
            assert finding["rule"] == "R2"

    def test_update_baseline_grandfathers(self, tmp_path, capsys):
        if sys.version_info < (3, 11):
            pytest.skip("tomllib is 3.11+")
        pkg = tmp_path / "proj"
        pkg.mkdir()
        (pkg / "lint.toml").write_text(
            '[lint]\nbaseline = "bl.json"\n\n'
            '[lint.scopes]\nprotocol = ["mod"]\n',
            encoding="utf-8",
        )
        target = pkg / "mod.py"
        target.write_text("import time\nVALUE = time.time()\n",
                          encoding="utf-8")
        args = ["lint", str(target), "--config", str(pkg / "lint.toml")]
        assert main(args) == 1
        assert main(args + ["--update-baseline"]) == 0
        assert (pkg / "bl.json").is_file()
        assert main(args) == 0  # grandfathered now
        capsys.readouterr()


class TestJsonReportFunction:
    def test_clean_run_report(self):
        result = run_lint([FIXTURES / "r2_good.py"], PROTOCOL_ONLY)
        report = json_report(result, PROTOCOL_ONLY, ["r2_good.py"])
        assert report["clean"] is True
        assert report["findings"] == []
        assert report["summary"]["errors"] == 0


class TestLockGraph:
    def test_find_cycles_detects_inversion(self):
        edges = [("a", "b"), ("b", "c"), ("c", "a")]
        cycles = find_cycles(edges)
        assert len(cycles) == 1
        assert set(cycles[0]) == {"a", "b", "c"}

    def test_find_cycles_quiet_on_dag(self):
        assert find_cycles([("a", "b"), ("a", "c"), ("b", "c")]) == []

    def test_factory_records_nesting_edges(self):
        factory = OrderedLockFactory()
        outer = factory.lock("outer")
        inner = factory.lock("inner")
        with outer:
            with inner:
                pass
        assert ("outer", "inner") in factory.edges()
        assert factory.acquisition_counts() == {"outer": 1, "inner": 1}

    def test_factory_sees_cross_thread_inversion(self):
        factory = OrderedLockFactory()
        a = factory.lock("a")
        b = factory.lock("b")

        with a:
            with b:
                pass

        def inverted():
            with b:
                with a:
                    pass

        worker = threading.Thread(target=inverted)
        worker.start()
        worker.join()

        cycles = combined_cycles([], factory.edges())
        assert cycles, "a↔b inversion must surface as a cycle"

    def test_static_plus_runtime_union(self):
        # Static analysis saw a→b; runtime observed b→a: deadlock risk.
        assert combined_cycles([("a", "b")], [("b", "a")])
        assert combined_cycles([("a", "b")], [("a", "b")]) == []

    def test_shim_delegates_everything_else(self):
        shim = OrderedLockFactory().shim()
        lock = shim.Lock()
        assert hasattr(lock, "acquire")
        assert shim.Event is threading.Event
        assert shim.Thread is threading.Thread
