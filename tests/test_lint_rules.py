"""Per-rule fixture tests: every rule fires on its bad fixture and
stays quiet on its good twin.

The acceptance contract for ``repro.lint``: R1–R5 are each demonstrated
by at least one failing and one passing fixture, with the exact
violation inventory pinned so rule regressions surface as diffs here.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.lint import LintConfig, ScopeMap, run_lint

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "lint"

#: Fixture stems mapped into the scopes their rules patrol (the
#: file-based twin lives in tests/fixtures/lint/lint.toml).
SCOPE_MAP = ScopeMap(
    {
        "enclave": ("r1_bad", "r1_good"),
        "protocol": ("r2_bad", "r2_good", "r5_bad", "r5_good", "suppressed"),
        "stats": (),
        "crypto": ("r3_bad", "r3_good"),
        "tee": (),
        "net": ("r4_bad", "r4_good"),
        "resilience": (),
    }
)

CONFIG = LintConfig(scope_map=SCOPE_MAP, baseline_path=None)


def lint_fixture(name: str):
    path = FIXTURES / name
    assert path.is_file(), f"missing fixture {name}"
    return run_lint([path], CONFIG)


class TestRuleFires:
    """Each rule's bad fixture produces exactly the planted findings."""

    @pytest.mark.parametrize(
        "fixture, rule, expected_lines",
        [
            # import random, import socket, time.time, print,
            # random.random, os.urandom, open, socket.gethostname
            ("r1_bad.py", "R1", {4, 5, 10, 11, 12, 13, 14, 16}),
            # list(set), for-over-set, comprehension-over-set, id(),
            # time.time, random.choice
            ("r2_bad.py", "R2", {8, 9, 11, 12, 13, 14}),
            # literal SESSION_KEY, tag ==, digest !=, truncation,
            # key=..., nonce=...
            ("r3_bad.py", "R3", {6, 10, 12, 18, 22, 22}),
            # self-deadlock in stuck(); cycle closed by backward()
            ("r4_bad.py", "R4", {19, 24}),
            # ValueError, RuntimeError
            ("r5_bad.py", "R5", {6, 8}),
        ],
    )
    def test_bad_fixture_fires(self, fixture, rule, expected_lines):
        result = lint_fixture(fixture)
        found = [f for f in result.findings if f.rule == rule]
        assert found, f"{rule} did not fire on {fixture}"
        assert {f.line for f in found} == set(expected_lines)

    @pytest.mark.parametrize(
        "fixture",
        ["r1_good.py", "r2_good.py", "r3_good.py", "r4_good.py", "r5_good.py"],
    )
    def test_good_fixture_is_quiet(self, fixture):
        result = lint_fixture(fixture)
        assert result.findings == [], [f.render() for f in result.findings]

    def test_every_shipped_rule_has_fixture_coverage(self):
        from repro.lint import REGISTRY

        # R1-R5 are pinned here; the flow rules R6-R8 are pinned by the
        # flowpkg fixture trees in tests/test_lint_flow.py.
        covered = {"R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"}
        assert covered == set(REGISTRY), (
            "rule registry and fixture coverage drifted: add fixtures "
            "and an inventory entry for every new rule"
        )


class TestRuleDetails:
    def test_r3_cycle_message_names_both_locks(self):
        result = lint_fixture("r4_bad.py")
        cycle = [f for f in result.findings if "cycle" in f.message]
        assert len(cycle) == 1
        assert "Worker._alpha_lock" in cycle[0].message
        assert "Worker._beta_lock" in cycle[0].message

    def test_r5_quiet_outside_scope(self):
        # The same raise in an unscoped module is not flagged.
        config = LintConfig(
            scope_map=ScopeMap({"protocol": ()}), baseline_path=None
        )
        result = run_lint([FIXTURES / "r5_bad.py"], config)
        assert result.findings == []

    def test_r1_message_points_at_sanctioned_api(self):
        result = lint_fixture("r1_bad.py")
        messages = " ".join(f.message for f in result.findings)
        assert "repro.crypto.rng" in messages

    def test_findings_sorted_and_located(self):
        result = lint_fixture("r2_bad.py")
        lines = [f.line for f in result.findings]
        assert lines == sorted(lines)
        for finding in result.findings:
            assert finding.path.endswith("r2_bad.py")
            assert finding.module == "r2_bad"
            assert finding.column >= 1
            assert finding.line_content  # content captured for baselining
