"""Fast stream cipher for bulk payloads.

The paper's enclaves encrypt everything with AES-256 backed by AES-NI
hardware.  A pure-Python AES keystream would throttle the benchmarks to
a few hundred kilobytes per second, distorting the running-time *shape*
the reproduction must preserve (encryption is not the bottleneck in the
paper).  This module therefore provides a keyed keystream generator
whose hot path runs in C:

* the (key, nonce) pair is absorbed by SHA-256 into a 256-bit block, and
* that block keys a **Philox 4x64 counter-based generator** (numpy's
  implementation) which expands it into the keystream at memory speed.

Philox is a counter-mode PRF family from the random123 suite — the
right *shape* for a stream cipher — but it is not a vetted cipher and
this construction must not be used outside simulation.  The substitution
is recorded in DESIGN.md; the pure AES-CTR path in
:mod:`repro.crypto.modes` remains the byte-faithful reference and backs
the small control messages and key wrapping.
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np

NONCE_SIZE = 16

_ZERO_COUNTER = np.zeros(4, dtype=np.uint64)


class StreamCipher:
    """SHA-256-keyed Philox counter-mode stream cipher (encrypt == decrypt).

    The key schedule is computed once per instance: the absorbed key's
    SHA-256 state is kept as a reusable partial hash (per frame only the
    nonce is absorbed into a copy), and one Philox bit generator plus
    one ``Generator`` facade are re-keyed in place per frame instead of
    being constructed from scratch.  Re-keying restores the exact state
    a fresh ``Philox(key=...)`` would have, so the keystream is
    bit-identical to the original per-frame construction.  Instances are
    thread-safe; channel endpoints hold one cipher for their lifetime.
    """

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise ValueError("stream key must be at least 16 bytes")
        self._key = hashlib.sha256(b"repro.stream:" + key).digest()
        #: Partial SHA-256 over the derived key; per frame a copy absorbs
        #: the nonce, saving the key-prefix compression per frame.
        self._hasher = hashlib.sha256(self._key)
        self._bitgen = np.random.Philox()
        self._generator_facade = np.random.Generator(self._bitgen)
        self._state_template = self._bitgen.state
        self._lock = threading.Lock()

    def _validate_nonce(self, nonce: bytes) -> None:
        if len(nonce) != NONCE_SIZE:
            raise ValueError(f"nonce must be {NONCE_SIZE} bytes")

    def _generator(self, nonce: bytes) -> np.random.Generator:
        """Re-key the cached generator for ``(key, nonce)``.

        Caller must hold ``self._lock`` until the keystream is drawn.
        """
        self._validate_nonce(nonce)
        hasher = self._hasher.copy()
        hasher.update(nonce)
        words = np.frombuffer(hasher.digest(), dtype=np.uint64)
        # Philox-4x64 takes a 128-bit key; fold the 256-bit block onto it
        # so every seed bit influences the keystream.
        state = self._state_template
        state["state"]["counter"] = _ZERO_COUNTER
        state["state"]["key"] = words[:2] ^ words[2:]
        state["buffer_pos"] = 4
        state["has_uint32"] = 0
        state["uinteger"] = 0
        self._bitgen.state = state
        return self._generator_facade

    def keystream(self, nonce: bytes, length: int) -> bytes:
        """Generate ``length`` keystream bytes for ``(key, nonce)``."""
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            self._validate_nonce(nonce)
            return b""
        with self._lock:
            return self._generator(nonce).bytes(length)

    def process(self, nonce: bytes, data: bytes) -> bytes:
        """XOR ``data`` with the keystream (involution)."""
        if not data:
            self._validate_nonce(nonce)
            return b""
        stream = self.keystream(nonce, len(data))
        data_arr = np.frombuffer(data, dtype=np.uint8)
        stream_arr = np.frombuffer(stream, dtype=np.uint8)
        return (data_arr ^ stream_arr).tobytes()
