"""Function index, import graph and call graph over scanned modules.

Everything is purely syntactic: functions are indexed by qualified name
(``repro.tee.storage.ColumnReader.column``), and call sites resolve to
zero or more known targets through, in order,

* import-table resolution of the dotted call name (covers module-level
  functions and class constructors),
* ``self.method`` resolution inside a class (including bases defined in
  the program),
* one-step local type inference (``reader = ColumnReader(...)`` then
  ``reader.column(...)``),
* string-dispatched ECALLs (``enclave.ecall("lead_run_maf", ...)``
  resolves to the so-named method — the enclave boundary is a string
  dispatch in this codebase), and
* a unique-method fallback: an attribute call whose method name is
  defined by exactly one class in the whole program resolves to it.

Unresolved calls are not dropped — the taint analysis treats them
conservatively (taint in, taint out).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..astutil import dotted_name
from ..rules import ModuleInfo


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition, indexed for the analysis."""

    qualname: str
    module: ModuleInfo
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str]

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def params(self) -> Tuple[str, ...]:
        args = self.node.args
        names = [a.arg for a in getattr(args, "posonlyargs", [])]
        names += [a.arg for a in args.args]
        names += [a.arg for a in args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return tuple(names)

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class FunctionIndex:
    """Qualname → function table plus the lookup maps resolution needs."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: method name → qualnames of every class method with that name.
    by_method_name: Dict[str, List[str]] = field(default_factory=dict)
    #: ``module.Class`` → its base-class dotted names (import-resolved).
    class_bases: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: ``module.Class`` → method name → qualname.
    class_methods: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def add_module(self, module: ModuleInfo) -> None:
        self._visit(module, module.tree, class_path=None)

    def _visit(
        self, module: ModuleInfo, node: ast.AST, class_path: Optional[str]
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                cls_qual = f"{module.module}.{child.name}"
                bases = tuple(
                    module.imports.resolve(name)
                    for name in (dotted_name(b) for b in child.bases)
                    if name is not None
                )
                self.class_bases[cls_qual] = bases
                self.class_methods.setdefault(cls_qual, {})
                self._visit(module, child, class_path=child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if class_path:
                    qualname = f"{module.module}.{class_path}.{child.name}"
                    cls_qual = f"{module.module}.{class_path}"
                    self.class_methods.setdefault(cls_qual, {})[
                        child.name
                    ] = qualname
                    self.by_method_name.setdefault(child.name, []).append(
                        qualname
                    )
                else:
                    qualname = f"{module.module}.{child.name}"
                info = FunctionInfo(
                    qualname=qualname,
                    module=module,
                    node=child,
                    class_name=class_path,
                )
                self.functions.setdefault(qualname, info)
                # Nested defs are walked for completeness but calls to
                # them resolve only if their qualname is reachable.
                self._visit(module, child, class_path=class_path)
            else:
                self._visit(module, child, class_path=class_path)

    # -- lookups -------------------------------------------------------------

    def method_on(self, cls_qual: str, method: str) -> Optional[str]:
        """Resolve ``method`` on ``cls_qual``, walking program-known bases."""
        seen: Set[str] = set()
        queue = [cls_qual]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            qualname = self.class_methods.get(current, {}).get(method)
            if qualname is not None:
                return qualname
            queue.extend(self.class_bases.get(current, ()))
        return None

    def unique_method(self, method: str) -> Optional[str]:
        owners = self.by_method_name.get(method, [])
        if len(owners) == 1:
            return owners[0]
        return None

    def constructor(self, cls_qual: str) -> Optional[str]:
        return self.method_on(cls_qual, "__init__")

    def is_class(self, dotted: str) -> bool:
        return dotted in self.class_methods


#: Method names too generic for the unique-method fallback: resolving
#: ``path.open(...)`` to ``ChannelEndpoint.open`` just because only one
#: program class defines ``open`` would fabricate edges through stdlib
#: objects.  Distinctive names (``column_sums``, ``lead_run_maf``) stay
#: eligible.  ``digest``/``hexdigest``/``to_json``/``from_json`` are
#: here because hashlib/hmac objects and serialisation protocols use
#: them pervasively: resolving ``hashlib.sha256(x).digest()`` to
#: whichever program class happens to uniquely define ``digest``
#: fabricates an edge whose summary silently replaces the hash call's
#: real dataflow.
GENERIC_METHOD_NAMES = frozenset(
    {
        "open", "close", "read", "write", "send", "recv", "get", "set",
        "put", "pop", "push", "add", "remove", "update", "append",
        "extend", "insert", "clear", "copy", "keys", "values", "items",
        "encode", "decode", "seek", "flush", "run", "start", "stop",
        "reset", "join", "split", "strip", "format", "sort", "count",
        "index", "next", "submit", "result", "wait", "notify", "apply",
        "digest", "hexdigest", "to_json", "from_json",
    }
)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function, with resolution results."""

    caller: str
    node: ast.Call
    #: Names the model's patterns match against: the import-resolved
    #: dotted call name plus every resolved target qualname.
    names: Tuple[str, ...]
    #: Qualnames of known target functions (empty → unknown call).
    targets: Tuple[str, ...]
    #: For dispatcher calls, the positional offset of real arguments
    #: (``ecall("name", a, b)`` maps a→param 1, b→param 2 of the target).
    arg_offset: int = 0


@dataclass
class CallGraph:
    """Call edges between known functions, plus per-module imports."""

    index: FunctionIndex
    #: caller qualname → callee qualnames (known targets only).
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    #: module name → imported module names (the import graph).
    imports: Dict[str, Set[str]] = field(default_factory=dict)

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def callers_of(self, callee: str) -> List[str]:
        return sorted(
            caller for caller, callees in self.edges.items() if callee in callees
        )

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready summary (the CI call-graph artifact)."""
        return {
            "functions": len(self.index.functions),
            "edges": sorted(
                (caller, callee)
                for caller, callees in self.edges.items()
                for callee in callees
            ),
            "imports": {
                module: sorted(targets)
                for module, targets in sorted(self.imports.items())
            },
        }


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _local_constructions(fn: FunctionInfo) -> Dict[str, str]:
    """``name -> module.Class`` for ``name = Class(...)`` assignments."""
    bindings: Dict[str, str] = {}
    module = fn.module
    for stmt in ast.walk(fn.node):
        if not isinstance(stmt, ast.Assign) or not isinstance(
            stmt.value, ast.Call
        ):
            continue
        callee = dotted_name(stmt.value.func)
        if callee is None:
            continue
        resolved = module.imports.resolve(callee)
        if resolved.split(".")[0] != module.module.split(".")[0]:
            # Heuristic scope: same top-level package only.
            candidate = f"{module.module}.{callee}"
        else:
            candidate = resolved
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                for option in (resolved, candidate):
                    if option is not None:
                        bindings.setdefault(target.id, option)
    return bindings


def resolve_call(
    fn: FunctionInfo,
    node: ast.Call,
    index: FunctionIndex,
    dispatchers: Sequence[str],
    local_types: Dict[str, str],
) -> CallSite:
    """Resolve one call expression to model names and known targets."""
    module = fn.module
    names: List[str] = []
    targets: List[str] = []
    arg_offset = 0

    raw = dotted_name(node.func)
    resolved = module.imports.resolve(raw) if raw else None
    if resolved:
        names.append(resolved)

    def add_target(qualname: Optional[str]) -> None:
        if qualname is not None and qualname in index.functions:
            if qualname not in targets:
                targets.append(qualname)
            if qualname not in names:
                names.append(qualname)

    if resolved:
        # Module-level function or class in the program?
        add_target(resolved)
        if index.is_class(resolved):
            add_target(index.constructor(resolved))
            if resolved not in names:
                names.append(resolved)
        # Same-module shorthand: ``helper()`` inside ``repro.x.y``.
        if raw and "." not in raw:
            local = f"{module.module}.{raw}"
            add_target(local)
            if index.is_class(local):
                add_target(index.constructor(local))
                names.append(local)

    if isinstance(node.func, ast.Attribute):
        method = node.func.attr
        base = node.func.value
        base_name = dotted_name(base)
        if isinstance(base, ast.Name) and base.id == "self" and fn.class_name:
            cls_qual = f"{module.module}.{fn.class_name}"
            add_target(index.method_on(cls_qual, method))
        elif base_name is not None:
            receiver = local_types.get(base_name)
            if receiver is None and base_name.startswith("self."):
                receiver = local_types.get(base_name)
            if receiver is not None:
                add_target(index.method_on(receiver, method))
        if not targets and method not in GENERIC_METHOD_NAMES:
            add_target(index.unique_method(method))

    # String-dispatched ECALL boundary: resolve the literal to a method.
    site_names = tuple(names)
    is_dispatch = any(
        (n == d or n.endswith("." + d)) if not d.endswith("*") else False
        for n in site_names
        for d in dispatchers
    ) or (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in {d for d in dispatchers if "." not in d}
    )
    if is_dispatch and node.args:
        literal = _literal_str(node.args[0])
        if literal is not None:
            dispatched = index.unique_method(literal)
            if dispatched is not None:
                targets = [dispatched]
                names = list(site_names) + [dispatched]
                arg_offset = 1

    return CallSite(
        caller=fn.qualname,
        node=node,
        names=tuple(dict.fromkeys(names)),
        targets=tuple(targets),
        arg_offset=arg_offset,
    )


def build_callgraph(
    modules: Iterable[ModuleInfo], dispatchers: Sequence[str] = ()
) -> Tuple[CallGraph, Dict[str, List[CallSite]]]:
    """Index every module and resolve every call site.

    Returns the call graph and a map ``caller qualname → call sites``
    (the analysis consumes the sites; the graph is the CI artifact).
    """
    index = FunctionIndex()
    module_list = list(modules)
    for module in module_list:
        index.add_module(module)

    graph = CallGraph(index=index)
    sites: Dict[str, List[CallSite]] = {}
    known_modules = {module.module for module in module_list}
    for module in module_list:
        imported = {
            target.split(".")[0] for target in module.imports.aliases.values()
        }
        graph.imports[module.module] = {
            name
            for name in (
                target
                for target in module.imports.aliases.values()
            )
            if name.rsplit(".", 1)[0] in known_modules or name in known_modules
        } or set(imported & known_modules)

    for qualname in sorted(index.functions):
        fn = index.functions[qualname]
        local_types = _local_constructions(fn)
        fn_sites: List[CallSite] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                site = resolve_call(fn, node, index, dispatchers, local_types)
                fn_sites.append(site)
                for target in site.targets:
                    graph.add_edge(qualname, target)
        sites[qualname] = fn_sites
    return graph, sites
