"""Message authentication and dataset signing.

Two signing facilities back the simulation's trust chain:

* :class:`MacSigner` — HMAC-SHA256 under a shared symmetric key; used for
  signed VCF datasets (the trusted module checks genome-data authenticity,
  Section 4 of the paper) and for attestation-service quotes, where the
  verifier legitimately holds the same key as the signer (the simulated
  attestation service plays both roles).
* :class:`KeyedVerifier` — verification-only wrapper that cannot produce
  signatures, so components that must only *check* authenticity cannot be
  misused to forge.
"""

from __future__ import annotations

import hashlib
import hmac

from ..errors import AuthenticationError

SIGNATURE_SIZE = 32


class MacSigner:
    """HMAC-SHA256 signer with domain separation per purpose."""

    def __init__(self, key: bytes, purpose: str):
        if len(key) < 16:
            raise ValueError("signing key must be at least 16 bytes")
        if not purpose:
            raise ValueError("purpose must be non-empty")
        self._key = key
        self._purpose = purpose.encode("utf-8")

    def _mac(self, message: bytes) -> bytes:
        mac = hmac.new(self._key, digestmod=hashlib.sha256)
        mac.update(len(self._purpose).to_bytes(2, "big"))
        mac.update(self._purpose)
        mac.update(message)
        return mac.digest()

    def sign(self, message: bytes) -> bytes:
        """Produce a 32-byte signature over ``message``."""
        return self._mac(message)

    def verify(self, message: bytes, signature: bytes) -> None:
        """Raise :class:`AuthenticationError` unless ``signature`` is valid."""
        if not hmac.compare_digest(self._mac(message), signature):
            raise AuthenticationError("signature verification failed")

    def verifier(self) -> "KeyedVerifier":
        """A verification-only view of this signer."""
        return KeyedVerifier(self)


class KeyedVerifier:
    """Verification-only facade over a :class:`MacSigner`."""

    def __init__(self, signer: MacSigner):
        self._verify = signer.verify

    def verify(self, message: bytes, signature: bytes) -> None:
        self._verify(message, signature)


def digest(data: bytes) -> bytes:
    """SHA-256 digest helper used across the TEE layer."""
    return hashlib.sha256(data).digest()
