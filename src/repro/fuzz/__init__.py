"""Coverage-guided chaos fuzzing over fault-plan genomes.

The subsystem that replaced the fixed seed sweeps (``repro fuzz``):

* :mod:`~repro.fuzz.genome` — the structured input space
  (:class:`PlanGenome`: a fault config plus run axes) with canonical
  JSON, digests and threat-model normalization;
* :mod:`~repro.fuzz.mutator` — typed, deterministic mutation operators;
* :mod:`~repro.fuzz.coverage` — behaviour keys: fired
  ``faults.*``/``integrity.*``/``shard.repair.*`` counters unioned
  with arc coverage of the detection modules;
* :mod:`~repro.fuzz.oracle` — the single decision-invariant harness
  shared with the chaos test tiers;
* :mod:`~repro.fuzz.corpus` — the deduplicated minimal-covering pool,
  persisted under ``tests/fuzz_corpus/``;
* :mod:`~repro.fuzz.shrink` — greedy reduction of violating genomes;
* :mod:`~repro.fuzz.seeds` — the 42 legacy sweep seeds as genomes;
* :mod:`~repro.fuzz.engine` — the session loop tying it together;
* :mod:`~repro.fuzz.cli` — ``repro fuzz`` (the only module with I/O).

See ``docs/FUZZING.md`` for the genome format, behaviour keys, corpus
lifecycle and how to triage a shrunk reproducer.
"""

from .corpus import CorpusPool
from .coverage import Behaviour, CoverageCollector
from .engine import FuzzEngine
from .genome import PlanGenome, genome_config, normalize
from .mutator import PlanMutator
from .oracle import DecisionOracle, OracleRun
from .shrink import Shrinker, ShrinkResult

__all__ = [
    "Behaviour",
    "CorpusPool",
    "CoverageCollector",
    "DecisionOracle",
    "FuzzEngine",
    "OracleRun",
    "PlanGenome",
    "PlanMutator",
    "Shrinker",
    "ShrinkResult",
    "genome_config",
    "normalize",
]
