"""Release utility metrics.

GenDPR's whole purpose is to publish *as much as possible* safely: "a
higher number of retained SNPs ... means also more from the original
interest set of SNPs can be published" (paper Section 7.2).  This
module quantifies what a verified release preserves of the study's
scientific value, so federations can reason about the privacy/utility
trade-off concretely:

* :func:`retention_rate` — the blunt fraction of desired SNPs released.
* :func:`top_k_recall` — how many of the study's *most significant*
  associations (the SNPs researchers actually care about) survive.
* :func:`significance_mass_retained` — the share of total chi-squared
  evidence that remains public.
* :func:`utility_report` — all of the above in one structure, used by
  the examples and available to downstream operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import GenomicsError


def _validate(released: Sequence[int], statistics: np.ndarray) -> np.ndarray:
    stats = np.asarray(statistics, dtype=np.float64)
    if stats.ndim != 1:
        raise GenomicsError("statistics must be a vector over L_des")
    if np.any(stats < 0):
        raise GenomicsError("chi-squared statistics must be non-negative")
    released_set = set(int(s) for s in released)
    if len(released_set) != len(list(released)):
        raise GenomicsError("released list contains duplicates")
    if released_set and (min(released_set) < 0 or max(released_set) >= stats.size):
        raise GenomicsError("released SNP index out of range")
    return stats


def retention_rate(released: Sequence[int], num_desired: int) -> float:
    """Fraction of the desired panel whose statistics are published."""
    if num_desired <= 0:
        raise GenomicsError("num_desired must be positive")
    released_set = set(int(s) for s in released)
    if released_set and max(released_set) >= num_desired:
        raise GenomicsError("released SNP index out of range")
    return len(released_set) / num_desired


def top_k_recall(
    released: Sequence[int], statistics: np.ndarray, k: int
) -> float:
    """Share of the k most significant SNPs that are released.

    "The SNPs with the smallest p-values are the most significant" —
    equivalently, the largest chi-squared statistics.  Ties are broken
    by panel order, matching the pipeline's stable ranking.
    """
    stats = _validate(released, statistics)
    if not 0 < k <= stats.size:
        raise GenomicsError("k must be in 1..L_des")
    order = np.argsort(-stats, kind="stable")[:k]
    released_set = set(int(s) for s in released)
    return sum(1 for snp in order if int(snp) in released_set) / k


def significance_mass_retained(
    released: Sequence[int], statistics: np.ndarray
) -> float:
    """Fraction of total chi-squared evidence the release preserves.

    A mass-weighted view: releasing many null SNPs while withholding
    the hits scores poorly even when the retention *rate* looks good.
    """
    stats = _validate(released, statistics)
    total = float(stats.sum())
    if total == 0.0:
        return 1.0 if len(list(released)) == stats.size else 0.0
    released_list = [int(s) for s in released]
    return float(stats[released_list].sum()) / total if released_list else 0.0


@dataclass(frozen=True)
class UtilityReport:
    """Privacy/utility summary of one release."""

    num_desired: int
    num_released: int
    retention: float
    top10_recall: float
    top50_recall: float
    significance_mass: float

    def __str__(self) -> str:
        return (
            f"released {self.num_released}/{self.num_desired} SNPs "
            f"({100 * self.retention:.1f}%), top-10 recall "
            f"{100 * self.top10_recall:.0f}%, top-50 recall "
            f"{100 * self.top50_recall:.0f}%, significance mass "
            f"{100 * self.significance_mass:.1f}%"
        )


def utility_report(
    released: Sequence[int], statistics: np.ndarray
) -> UtilityReport:
    """Full utility summary of a release against the study statistics.

    ``statistics`` are the chi-squared values over the *entire* desired
    panel (computed inside the leader enclave; publishing the report is
    a federation-governance decision, not part of the open release).
    """
    stats = _validate(released, statistics)
    num_desired = stats.size
    released_list = [int(s) for s in released]
    return UtilityReport(
        num_desired=num_desired,
        num_released=len(released_list),
        retention=retention_rate(released_list, num_desired),
        top10_recall=top_k_recall(
            released_list, stats, min(10, num_desired)
        ),
        top50_recall=top_k_recall(
            released_list, stats, min(50, num_desired)
        ),
        significance_mass=significance_mass_retained(released_list, stats),
    )
