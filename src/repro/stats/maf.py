"""Minor allele frequencies (Phase 1 mathematics).

Phase 1 removes SNPs whose *global* MAF — computed over the pooled case
and reference populations — falls below the cut-off, because rare
variants form characteristic outliers that membership attacks exploit
(Section 3.2.1).

Everything here operates on count vectors, never genotypes: the leader
enclave receives each member's ``caseLocalCounts`` vector and the counts
of the public reference set, exactly as in the paper's workflow.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import GenomicsError


def aggregate_counts(count_vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Sum per-member allele-count vectors into ``totalGlobalCounts``."""
    if not count_vectors:
        raise GenomicsError("need at least one count vector")
    lengths = {len(v) for v in count_vectors}
    if len(lengths) != 1:
        raise GenomicsError("count vectors cover different SNP sets")
    total = np.zeros(lengths.pop(), dtype=np.int64)
    for vector in count_vectors:
        array = np.asarray(vector, dtype=np.int64)
        if np.any(array < 0):
            raise GenomicsError("allele counts must be non-negative")
        total += array
    return total


def allele_frequencies(total_counts: np.ndarray, num_individuals: int) -> np.ndarray:
    """``globalAlleleFreq[l] = totalGlobalCounts[l] / N_T``."""
    if num_individuals <= 0:
        raise GenomicsError("population size must be positive")
    counts = np.asarray(total_counts, dtype=np.float64)
    if np.any(counts < 0) or np.any(counts > num_individuals):
        raise GenomicsError("counts outside [0, N_T]")
    return counts / float(num_individuals)


def folded_maf(frequencies: np.ndarray) -> np.ndarray:
    """Fold frequencies above 0.5 to the minor allele's frequency.

    The paper's encoding already designates the minor allele as 1, but a
    finite sample can push an empirical frequency above 0.5; folding
    keeps the cut-off semantics ("rarer allele below threshold") exact.
    """
    freqs = np.asarray(frequencies, dtype=np.float64)
    return np.minimum(freqs, 1.0 - freqs)


def maf_filter(frequencies: np.ndarray, maf_cutoff: float) -> List[int]:
    """Indices of SNPs whose folded MAF is at or above the cut-off.

    This is the Phase 1 decision: SNP ``l`` is retained iff
    ``MAF_l >= MAF_cutoff``.
    """
    if not 0.0 <= maf_cutoff < 0.5:
        raise GenomicsError("maf_cutoff must be in [0, 0.5)")
    mafs = folded_maf(frequencies)
    return [int(i) for i in np.nonzero(mafs >= maf_cutoff)[0]]
