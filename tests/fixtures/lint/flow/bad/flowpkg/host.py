"""Untrusted host driving the miniature enclave."""

from .enclave import MiniEnclave


def metrics_push(value):
    return value


def run():
    enc = MiniEnclave()
    direct = enc.export_column(3)  # R7: direct crossing
    via_ecall = enc.ecall("export_column", 4)  # R7: string-dispatched
    allowed = enc.ecall("declared_result")  # ok: declared result path
    stats = enc.release_stats()  # R8: missing declassify marker
    metrics_push(direct)  # R6: genotype -> metrics (interprocedural)
    return via_ecall, allowed, stats
