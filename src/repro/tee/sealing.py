"""TEE data sealing.

GenDPR uses the TEE's sealing mechanism "to store data persistently
outside the TEE.  Sealed data can only be encrypted/decrypted by the
enclave using its private key" (Section 4).  The simulation implements
MRENCLAVE-policy sealing: the sealing key is derived from the platform
root key and the enclave measurement, so

* the same enclave code on the same platform can unseal its own blobs,
* a different enclave (different measurement) on the same platform
  cannot, and
* the same enclave code on a different platform cannot either.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.authenticated import StreamAead
from ..errors import AuthenticationError, SealingError
from .enclave import Enclave

_SEAL_MAGIC = b"RSEAL1"


@dataclass(frozen=True)
class SealedBlob:
    """An opaque sealed payload, safe to store on untrusted media.

    ``context`` is authenticated-but-clear metadata bound into the AAD
    alongside the label — e.g. the monotonic checkpoint epoch a restore
    compares against the platform rollback counter *before* unsealing.
    Tampering with it fails authentication like any other mismatch.
    """

    data: bytes
    label: str
    context: bytes = b""

    def __len__(self) -> int:
        return len(self.data)


def _associated_data(label: str, context: bytes) -> bytes:
    encoded_label = label.encode("utf-8")
    # Length-prefix the label so (label, context) pairs cannot collide
    # across a moved boundary.
    return (
        _SEAL_MAGIC
        + len(encoded_label).to_bytes(2, "big")
        + encoded_label
        + context
    )


def seal(
    enclave: Enclave, plaintext: bytes, label: str = "", context: bytes = b""
) -> SealedBlob:
    """Seal ``plaintext`` to ``enclave``'s identity.

    ``label`` (and ``context``, if any) is bound as associated data:
    unsealing under a different label or context fails, preventing
    blob-swapping between storage slots.
    """
    aead = StreamAead(enclave._sealing_key())
    frame = aead.encrypt(
        plaintext, associated_data=_associated_data(label, context)
    )
    return SealedBlob(data=_SEAL_MAGIC + frame, label=label, context=context)


def unseal(enclave: Enclave, blob: SealedBlob) -> bytes:
    """Unseal a blob; raises :class:`SealingError` on any mismatch."""
    if not blob.data.startswith(_SEAL_MAGIC):
        raise SealingError("not a sealed blob")
    aead = StreamAead(enclave._sealing_key())
    try:
        return aead.decrypt(
            blob.data[len(_SEAL_MAGIC) :],
            associated_data=_associated_data(blob.label, blob.context),
        )
    except AuthenticationError as exc:
        raise SealingError(
            "unsealing failed: wrong enclave identity, platform, label "
            "or context"
        ) from exc
