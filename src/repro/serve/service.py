"""The long-lived federation service.

:class:`FederationService` is the daemon shape of the library: the
federation substrate is provisioned once (per pool slot) and kept warm
— attested channels, enclaves, platforms — while studies arrive over
time.  Each submission becomes a :class:`~repro.serve.session.StudySession`
with isolated protocol state over the shared substrate; a dispatcher
thread admits sessions from a bounded queue under the configured
concurrency and trusted-memory budget, and every session's rounds pass
through the :class:`~repro.serve.scheduler.FairRoundGate`.

Failure isolation: a mid-service enclave crash, leader failover or
Byzantine quarantine terminates only the affected session (classified
by the :mod:`repro.errors` taxonomy, with the slot retired so no queued
study inherits poisoned state) while the service keeps draining the
queue.  Decisions are bit-identical to solo ``run_study`` runs — the
property-equivalence suite enforces it.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import replace
from typing import Deque, Dict, List, Optional

from ..config import ObservabilityConfig, StudyConfig
from ..core.phases import StudyResult
from ..core.provision import ProvisionedFederation
from ..errors import (
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    StudyCancelledError,
    UnknownStudyError,
)
from ..genomics.population import Cohort
from ..net import SimulatedNetwork
from ..obs import MetricsRegistry, RunReport, config_fingerprint
from ..obs.bridge import record_service
from .config import ServiceConfig
from .pool import EnclavePool
from .scheduler import FairRoundGate
from .session import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    TERMINAL_STATES,
    StudySession,
)

#: Dispatcher poll interval (seconds) — a liveness backstop; all state
#: changes also notify the admission condition directly.
_DISPATCH_POLL_SECONDS = 0.05


class FederationService:
    """Accepts, schedules and runs GWAS verification studies.

    Usable as a context manager::

        with FederationService(ServiceConfig(num_members=3)) as service:
            study_id = service.submit(cohort, config)
            result = service.result(study_id, timeout=60)

    The client API is ``submit`` / ``status`` / ``result`` / ``cancel``;
    ``metrics`` exposes the scheduler/queue/pool books and every
    completed session's :class:`~repro.core.phases.StudyResult` carries
    a service-built per-request :class:`~repro.obs.RunReport`.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        router: Optional[SimulatedNetwork] = None,
    ):
        self._config = config if config is not None else ServiceConfig()
        self._pool = EnclavePool(self._config, router=router)
        self._gate = FairRoundGate(self._config.max_concurrent_rounds)
        #: Guards sessions, the pending queue, counters and shutdown.
        self._admission = threading.Condition()
        self._sessions: Dict[str, StudySession] = {}
        self._pending: Deque[StudySession] = deque()
        self._active = 0
        self._shutdown = False
        self._counters: Dict[str, int] = {
            "submitted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "slot_acquisitions": 0,
        }
        self._queue_high_water = 0
        self._workers: List[threading.Thread] = []
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name=f"{self._config.service_id}-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    # -- context management ----------------------------------------------------

    def __enter__(self) -> "FederationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def pool(self) -> EnclavePool:
        return self._pool

    # -- client API ------------------------------------------------------------

    def submit(self, cohort: Cohort, config: StudyConfig) -> str:
        """Queue one study; returns its id (``config.study_id``).

        Raises :class:`~repro.errors.ServiceOverloadedError` when the
        queue is at capacity — explicit backpressure instead of
        unbounded admission.
        """
        if config.snp_count != cohort.num_snps:
            raise ServiceError(
                f"config covers {config.snp_count} SNPs, cohort has "
                f"{cohort.num_snps}"
            )
        config.collusion.validate_for(self._config.num_members)
        with self._admission:
            if self._shutdown:
                raise ServiceError("the service is shut down")
            if config.study_id in self._sessions:
                raise ServiceError(
                    f"study {config.study_id!r} was already submitted"
                )
            if len(self._pending) >= self._config.queue_limit:
                self._counters["rejected"] += 1
                raise ServiceOverloadedError(
                    f"study {config.study_id!r} rejected: queue at "
                    f"capacity ({self._config.queue_limit} waiting)"
                )
            session = StudySession(config.study_id, cohort, config)
            self._sessions[config.study_id] = session
            self._pending.append(session)
            self._counters["submitted"] += 1
            if len(self._pending) > self._queue_high_water:
                self._queue_high_water = len(self._pending)
            self._admission.notify_all()
        return config.study_id

    def status(self, study_id: str) -> Dict[str, object]:
        """Current lifecycle snapshot of one study."""
        return self._session(study_id).to_dict()

    def result(
        self, study_id: str, timeout: Optional[float] = None
    ) -> StudyResult:
        """Block for a study's outcome.

        Returns the :class:`~repro.core.phases.StudyResult` (its
        ``observability`` field carries the per-request RunReport) for
        a completed study; re-raises the session's classified error for
        a failed or cancelled one.
        """
        session = self._session(study_id)
        if not session.finished.wait(timeout=timeout):
            raise ServiceError(
                f"study {study_id!r} is still {session.status}"
            )
        if session.status == DONE:
            return session.result
        raise session.error

    def cancel(self, study_id: str) -> bool:
        """Cancel a study; returns False if it already finished.

        A queued study is withdrawn immediately; a running one is
        stopped at its next round boundary (the gate raises
        :class:`~repro.errors.StudyCancelledError` there, never
        mid-round).
        """
        session = self._session(study_id)
        with self._admission:
            if session.status in TERMINAL_STATES:
                return False
            if session.status == QUEUED:
                self._pending.remove(session)
                session.error = StudyCancelledError(
                    f"study {study_id!r} cancelled while queued"
                )
                session.mark_finished(CANCELLED)
                self._counters["cancelled"] += 1
                self._admission.notify_all()
                return True
            session.cancel_requested.set()
        self._gate.wake()
        return True

    def metrics(self) -> Dict[str, object]:
        """Scheduler / queue / pool books (the soak-job artifact)."""
        with self._admission:
            stats: Dict[str, object] = dict(self._counters)
            stats["queue_depth"] = len(self._pending)
            stats["queue_depth_high_water"] = self._queue_high_water
            stats["active_sessions"] = self._active
            finished = [
                session
                for session in self._sessions.values()
                if session.status in TERMINAL_STATES
            ]
        stats["wait_seconds"] = sum(s.wait_seconds for s in finished)
        stats["run_seconds"] = sum(s.run_seconds for s in finished)
        stats.update(self._gate.stats())
        pool_stats = self._pool.stats()
        stats.update(pool_stats)
        acquisitions = stats["slot_acquisitions"]
        stats["warm_hit_rate"] = (
            pool_stats["warm_hits"] / acquisitions if acquisitions else 0.0
        )
        return stats

    def metrics_registry(self) -> MetricsRegistry:
        """The aggregate books as ``serve.*`` metrics."""
        registry = MetricsRegistry()
        record_service(registry, self.metrics())
        return registry

    def close(self, wait: bool = True) -> None:
        """Stop admitting, cancel queued studies, drain running ones."""
        with self._admission:
            if self._shutdown:
                self._admission.notify_all()
            self._shutdown = True
            while self._pending:
                session = self._pending.popleft()
                session.error = StudyCancelledError(
                    f"study {session.study_id!r} cancelled: service "
                    f"shutting down"
                )
                session.mark_finished(CANCELLED)
                self._counters["cancelled"] += 1
            self._admission.notify_all()
        self._gate.wake()
        if wait:
            self._dispatcher.join()
            for worker in list(self._workers):
                worker.join()
        self._pool.close()

    # -- internals --------------------------------------------------------------

    def _session(self, study_id: str) -> StudySession:
        with self._admission:
            session = self._sessions.get(study_id)
        if session is None:
            raise UnknownStudyError(
                f"study {study_id!r} was never accepted by this service"
            )
        return session

    def _study_memory_estimate(self, session: StudySession) -> int:
        """Bytes of trusted memory a study will seal (case + reference)."""
        cohort = session.cohort
        individuals = (
            cohort.case.num_individuals + cohort.reference.num_individuals
        )
        return individuals * cohort.num_snps

    def _within_memory_budget(self, session: StudySession) -> bool:
        """Admission check against the pool-wide trusted-memory meter.

        Uses live :class:`~repro.tee.resources.ResourceMeter` readings
        (which include buffers still sealed from earlier studies on
        warm slots) plus the candidate's dataset estimate.  With no
        session active the check always passes, so an undersized budget
        throttles concurrency to one instead of wedging the queue.
        """
        budget = self._config.enclave_memory_budget_bytes
        if not budget:
            return True
        if self._active == 0:
            return True
        projected = (
            self._pool.current_memory_bytes()
            + self._study_memory_estimate(session)
        )
        return projected <= budget

    def _dispatch_loop(self) -> None:
        while True:
            with self._admission:
                while not self._shutdown:
                    if (
                        self._pending
                        and self._active < self._config.max_active
                        and self._within_memory_budget(self._pending[0])
                    ):
                        break
                    self._admission.wait(timeout=_DISPATCH_POLL_SECONDS)
                if self._shutdown:
                    return
                session = self._pending.popleft()
                self._active += 1
                self._counters["slot_acquisitions"] += 1
            worker = threading.Thread(
                target=self._run_session,
                args=(session,),
                name=f"{self._config.service_id}-{session.study_id}",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()

    def _run_session(self, session: StudySession) -> None:
        try:
            slot = self._pool.acquire()
        except ServiceError as exc:
            session.error = exc
            with self._admission:
                session.mark_finished(FAILED)
                self._counters["failed"] += 1
                self._active -= 1
                self._admission.notify_all()
            return
        session.slot_namespace = slot.namespace
        session.warm = slot.studies_served > 0
        session.mark_running()
        healthy = True
        outcome = FAILED
        try:
            # The global tracer cannot serve concurrent sessions, so the
            # service runs each study untraced and builds the
            # per-request RunReport itself.
            run_config = replace(
                session.config, observability=ObservabilityConfig.off()
            )
            with ProvisionedFederation(
                session.cohort,
                run_config,
                self._config.num_members,
                substrate=slot.substrate,
            ) as provisioned:
                provisioned.protocol.install_round_gate(
                    self._gate.session_gate(session)
                )
                result = provisioned.run()
                federation = provisioned.federation
                if (
                    federation.failovers
                    or federation.member_restorations
                    or federation.integrity_monitor.quarantined()
                ):
                    # The study recovered (through leader failover or a
                    # shard tree repair replacing a member enclave) or
                    # flagged a member — the substrate is no longer the
                    # pristine mesh the pool provisioned, so retire it.
                    healthy = False
            result.observability = self._session_report(session, result)
            session.result = result
            session.report = result.observability
            outcome = DONE
        except StudyCancelledError as exc:
            session.error = exc
            # Rounds complete atomically, but frames for the *next*
            # round are sealed (advancing channel sequence numbers)
            # before the exchange hits the gate — a cancelled session
            # can strand asymmetric channel state, so its slot is
            # retired rather than kept warm.
            healthy = False
            outcome = CANCELLED
        except ReproError as exc:
            session.error = exc
            healthy = False
            outcome = FAILED
        except Exception as exc:  # noqa: BLE001 - isolate the session
            session.error = exc
            healthy = False
            outcome = FAILED
        finally:
            self._pool.release(slot, healthy=healthy)
            with self._admission:
                session.mark_finished(outcome)
                key = {
                    DONE: "completed",
                    FAILED: "failed",
                    CANCELLED: "cancelled",
                }[outcome]
                self._counters[key] += 1
                self._active -= 1
                self._admission.notify_all()

    def _session_report(
        self, session: StudySession, result: StudyResult
    ) -> RunReport:
        """Per-request RunReport from the service's own books."""
        registry = MetricsRegistry()
        record_service(
            registry,
            {
                "wait_seconds": session.wait_seconds,
                "run_seconds": session.run_seconds,
                "round_wait_seconds": session.round_wait_seconds,
                "rounds_gated": session.rounds,
                "warm_hit": 1 if session.warm else 0,
            },
        )
        meta = {
            "service_id": self._config.service_id,
            "slot": session.slot_namespace,
            "warm": session.warm,
            "leader_id": result.leader_id,
            "num_members": result.num_members,
            "l_safe": len(result.l_safe),
        }
        if session.config.sharding.enabled:
            # Sharded submissions surface their execution plan in the
            # per-request report, mirroring the protocol's own meta.
            registry.gauge("shard.ranges").set(
                session.config.sharding.num_shards
            )
            meta["sharding"] = {
                "num_shards": session.config.sharding.num_shards
            }
        return RunReport(
            study_id=session.study_id,
            config_fingerprint=config_fingerprint(session.config),
            spans=[],
            metrics=registry.as_dict(),
            meta=meta,
        )
