"""Benchmark harness: paper workloads, runners and table renderers.

The runnable benchmarks live in ``benchmarks/`` at the repository root
(one file per paper table/figure); this package holds the shared
machinery so those files stay declarative.
"""

from .fig5 import fig5_report, study_decisions
from .serve import serve_report
from .shard import shard_report
from .reporting import (
    render_collusion_table,
    render_resource_table,
    render_runtime_figure,
    render_selection_table,
    render_table,
)
from .runner import centralized_row, collusion_row, gendpr_row, naive_row
from .workloads import (
    PAPER_CASE_FULL,
    PAPER_CASE_HALF,
    PAPER_COLLUSION_GDO_COUNTS,
    PAPER_CONTROL,
    PAPER_GDO_COUNTS,
    PAPER_SNP_COUNTS,
    PAPER_THRESHOLDS,
    bench_scale,
    clear_cohort_cache,
    paper_cohort,
    paper_config,
    scaled,
)

__all__ = [
    "fig5_report",
    "serve_report",
    "shard_report",
    "study_decisions",
    "render_collusion_table",
    "render_resource_table",
    "render_runtime_figure",
    "render_selection_table",
    "render_table",
    "centralized_row",
    "collusion_row",
    "gendpr_row",
    "naive_row",
    "PAPER_CASE_FULL",
    "PAPER_CASE_HALF",
    "PAPER_COLLUSION_GDO_COUNTS",
    "PAPER_CONTROL",
    "PAPER_GDO_COUNTS",
    "PAPER_SNP_COUNTS",
    "PAPER_THRESHOLDS",
    "bench_scale",
    "clear_cohort_cache",
    "paper_cohort",
    "paper_config",
    "scaled",
]
