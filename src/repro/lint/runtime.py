"""Debug lock instrumentation cross-checking R4's static graph.

R4 extracts the *syntactic* lock-nesting graph; orderings that only
arise through call chains (``pump()`` holds the router lock while
``SimulatedNetwork.receive`` takes an inbox lock) are invisible to it.
:class:`OrderedLockFactory` closes that gap at test time: it hands out
instrumented ``threading.Lock`` replacements that record, per thread,
every (held → acquired) edge actually executed.  The union of the
static and the observed dynamic edges must still be acyclic — that is
the global-acquisition-order claim the parallel engine relies on.

Debug/tests only: nothing in ``repro`` imports this module at runtime.
Typical wiring (see ``tests/test_parallel_execution.py``)::

    factory = OrderedLockFactory()
    monkeypatch.setattr(network_module, "threading", factory.shim())
    … run the workload …
    assert not combined_cycles(static_edges, factory.edges())

Instrumented locks are auto-named from their construction site
(``self._stats_lock = threading.Lock()`` inside ``SimulatedNetwork``
becomes ``SimulatedNetwork._stats_lock``), matching R4's canonical
static names, so the two graphs union without a mapping table.
"""

from __future__ import annotations

import linecache
import re
import sys
import threading
import types
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .rules.locks import find_cycles

_SUBSCRIPT_ASSIGN = re.compile(r"self\.(\w+)\s*\[")
_ATTR_ASSIGN = re.compile(r"self\.(\w+)\s*(?::[^=]+)?=")
_NAME_ASSIGN = re.compile(r"^\s*(\w+)\s*(?::[^=]+)?=")


def _caller_site(depth: int = 2) -> Tuple[str, int, str]:
    frame = sys._getframe(depth)
    code = frame.f_code
    qualname = getattr(code, "co_qualname", code.co_name)
    return code.co_filename, frame.f_lineno, qualname


def _name_from_site(filename: str, lineno: int, qualname: str) -> str:
    """Reconstruct R4's canonical lock name from the allocation site."""
    owner = qualname.split(".")[0] if "." in qualname else qualname
    line = linecache.getline(filename, lineno)
    match = _SUBSCRIPT_ASSIGN.search(line)
    if match:
        return f"{owner}.{match.group(1)}[]"
    match = _ATTR_ASSIGN.search(line)
    if match:
        return f"{owner}.{match.group(1)}"
    match = _NAME_ASSIGN.search(line)
    if match:
        return f"{owner}:{match.group(1)}"
    return f"{owner}:<anonymous@{lineno}>"


class InstrumentedLock:
    """A ``threading.Lock`` stand-in that records acquisition edges."""

    def __init__(self, factory: "OrderedLockFactory", name: str):
        self._factory = factory
        self.name = name
        self._inner = threading.Lock()

    # The real Lock API surface the repo uses.

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._factory._note_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._factory._note_release(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<InstrumentedLock {self.name!r}>"


class OrderedLockFactory:
    """Creates named instrumented locks and aggregates their edges."""

    def __init__(self) -> None:
        self._edges: Set[Tuple[str, str]] = set()
        self._acquisitions: Dict[str, int] = {}
        self._held = threading.local()
        self._stats_lock = threading.Lock()

    # -- lock construction ---------------------------------------------------

    def lock(self, name: Optional[str] = None) -> InstrumentedLock:
        if name is None:
            name = _name_from_site(*_caller_site(2))
        return InstrumentedLock(self, name)

    def _lock_from_shim(self) -> InstrumentedLock:
        # One extra frame: caller -> shim Lock() -> here.
        return InstrumentedLock(self, _name_from_site(*_caller_site(3)))

    def shim(self) -> types.SimpleNamespace:
        """A ``threading``-module stand-in whose ``Lock`` is instrumented.

        Swap it into one module's namespace
        (``monkeypatch.setattr(mod, "threading", factory.shim())``) so
        only that module's locks are instrumented; everything else is
        delegated to the real :mod:`threading`.
        """
        factory = self

        def make_lock() -> InstrumentedLock:
            return factory._lock_from_shim()

        shim = types.SimpleNamespace(Lock=make_lock)
        for attr in dir(threading):
            if not attr.startswith("_") and attr != "Lock":
                setattr(shim, attr, getattr(threading, attr))
        return shim

    # -- recording -----------------------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _note_acquire(self, name: str) -> None:
        stack = self._stack()
        with self._stats_lock:
            self._acquisitions[name] = self._acquisitions.get(name, 0) + 1
            for outer in stack:
                if outer != name:
                    self._edges.add((outer, name))
        stack.append(name)

    def _note_release(self, name: str) -> None:
        stack = self._stack()
        # Releases may interleave out of LIFO order; drop the newest match.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                break

    # -- results ---------------------------------------------------------------

    def edges(self) -> FrozenSet[Tuple[str, str]]:
        """Observed (held → acquired) pairs across all threads."""
        with self._stats_lock:
            return frozenset(self._edges)

    def acquisition_counts(self) -> Dict[str, int]:
        with self._stats_lock:
            return dict(self._acquisitions)


def combined_cycles(
    static_edges: Iterable[Tuple[str, str]],
    runtime_edges: Iterable[Tuple[str, str]],
) -> List[List[str]]:
    """Cycles in the union of R4's static graph and observed edges.

    An empty result is the deadlock-freedom witness: every lock order
    actually executed is consistent with one global acquisition order,
    including orders the static analysis alone cannot see.
    """
    return find_cycles(list(static_edges) + list(runtime_edges))
