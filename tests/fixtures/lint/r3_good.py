"""R3 fixture — crypto-scope code doing authentication properly."""

import hashlib
import hmac

TAG_SIZE = 32


def verify_frame(frame_tag, expected_tag, stored_digest, payload):
    if len(frame_tag) != TAG_SIZE:  # size compare: exempt
        return False
    if not hmac.compare_digest(frame_tag, expected_tag):  # constant time
        return False
    computed = hashlib.sha256(payload).digest()  # full-width digest
    return hmac.compare_digest(stored_digest, computed)


def encrypt(cipher_cls, rng, payload):
    cipher = cipher_cls(key=rng.bytes(32), nonce=rng.bytes(16))
    return cipher.encrypt(payload)
