"""Deterministic fault injection (:mod:`repro.faults`).

Seeded, replayable fault schedules (:class:`FaultPlan`) and the
runtime hook that applies them (:class:`FaultInjector`) to the
simulated network and the enclave ECALL boundary.  Disabled by
default; enabled per-study via :class:`repro.config.FaultConfig`.
"""

from .injector import BroadcastEquivocator, FaultInjector
from .plan import (
    ACTIONS,
    CORRUPT,
    DELAY,
    DROP,
    DUPLICATE,
    EQUIVOCATE,
    REPLAY,
    WITHHOLD,
    CrashPoint,
    FaultPlan,
    PartitionWindow,
)

__all__ = [
    "ACTIONS",
    "CORRUPT",
    "DELAY",
    "DROP",
    "DUPLICATE",
    "EQUIVOCATE",
    "REPLAY",
    "WITHHOLD",
    "BroadcastEquivocator",
    "CrashPoint",
    "FaultInjector",
    "FaultPlan",
    "PartitionWindow",
]
