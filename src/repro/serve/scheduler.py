"""Fair round-interleaving across concurrent study sessions.

The service does not give each running study free rein over the shared
process: every OCALL round passes through a :class:`FairRoundGate`
installed on the study's protocol
(:meth:`~repro.core.protocol.GenDPRProtocol.install_round_gate`).  The
gate bounds how many rounds are in flight at once (the service's
enclave budget) and admits waiters strictly first-come-first-served, so
a long study cannot starve a short one — each session re-queues for
every round, which interleaves them round-robin under contention.

Round boundaries are also the cancellation points: a cancelled session
raises :class:`~repro.errors.StudyCancelledError` *before* entering its
next round, never mid-round, so no exchange is ever left half-executed.
(The slot is still retired afterwards: frames for the aborted round may
already have advanced channel sequence numbers on one side.)
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict

from ..errors import StudyCancelledError
from .session import StudySession


class FairRoundGate:
    """Bounded, FIFO-fair admission of protocol rounds."""

    def __init__(self, max_concurrent_rounds: int):
        self._max = max_concurrent_rounds
        self._admission = threading.Condition()
        self._waiting: Deque[object] = deque()
        self._active = 0
        self._rounds_admitted = 0
        self._wait_seconds = 0.0
        self._waiters_high_water = 0

    def session_gate(self, session: StudySession):
        """The ``gate(kind)`` callable one session's protocol installs."""

        def gate(kind: str) -> "_RoundTicket":
            return _RoundTicket(self, session, kind)

        return gate

    def wake(self) -> None:
        """Re-evaluate waiters (called after a cancellation request)."""
        with self._admission:
            self._admission.notify_all()

    def stats(self) -> Dict[str, float]:
        with self._admission:
            return {
                "rounds_admitted": self._rounds_admitted,
                "round_wait_seconds": self._wait_seconds,
                "round_waiters_high_water": self._waiters_high_water,
            }

    # -- internal (driven by _RoundTicket) -----------------------------------

    def _acquire(self, session: StudySession, kind: str) -> None:
        ticket = object()
        begin = time.perf_counter()
        with self._admission:
            self._waiting.append(ticket)
            if len(self._waiting) > self._waiters_high_water:
                self._waiters_high_water = len(self._waiting)
            try:
                while not (
                    self._waiting[0] is ticket and self._active < self._max
                ):
                    if session.cancel_requested.is_set():
                        raise StudyCancelledError(
                            f"study {session.study_id!r} cancelled before "
                            f"its {kind!r} round"
                        )
                    self._admission.wait()
                if session.cancel_requested.is_set():
                    raise StudyCancelledError(
                        f"study {session.study_id!r} cancelled before its "
                        f"{kind!r} round"
                    )
            except BaseException:
                self._waiting.remove(ticket)
                self._admission.notify_all()
                raise
            self._waiting.popleft()
            self._active += 1
            self._rounds_admitted += 1
            waited = time.perf_counter() - begin
            self._wait_seconds += waited
            # Head-of-queue advanced: let the next waiter re-check.
            self._admission.notify_all()
        session.rounds += 1
        session.round_wait_seconds += waited

    def _release(self) -> None:
        with self._admission:
            self._active -= 1
            self._admission.notify_all()


class _RoundTicket:
    """Context manager for one gated round."""

    def __init__(self, gate: FairRoundGate, session: StudySession, kind: str):
        self._gate = gate
        self._session = session
        self._kind = kind

    def __enter__(self) -> "_RoundTicket":
        self._gate._acquire(self._session, self._kind)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._gate._release()
        return False
