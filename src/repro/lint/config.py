"""Lint configuration: scope map, per-rule options, TOML loading.

The *scope map* is the piece that makes the rules domain-aware: it
assigns dotted-module prefixes to named scopes ("enclave", "crypto",
"net", …) and each rule declares which scopes it patrols.  The shipped
defaults mirror the repository layout; ``lint.toml`` at the repository
root can reshape them without code changes.

TOML parsing uses the stdlib ``tomllib`` (Python ≥ 3.11).  On older
interpreters the embedded defaults still work — only loading an
explicit TOML file raises, with a clear message.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import LintConfigError

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised on 3.9 only
    tomllib = None  # type: ignore[assignment]


#: Default scope map, mirroring the repository layout.  The "enclave"
#: scope is the paper's trust boundary: code attested to run inside a
#: TEE plus the pure protocol-phase logic it executes.
DEFAULT_SCOPES: Dict[str, Tuple[str, ...]] = {
    "enclave": (
        "repro.tee",
        "repro.core.enclave_logic",
        "repro.core.phases",
        # Shard planner + tree: derived in-enclave from attested params.
        "repro.core.shard",
        # Centralized-baseline enclave (the paper's comparison arm).
        "repro.core.baseline",
    ),
    "protocol": ("repro.core",),
    "stats": ("repro.stats",),
    "crypto": ("repro.crypto",),
    "tee": ("repro.tee",),
    "net": ("repro.net",),
    "resilience": ("repro.core.resilience", "repro.net"),
    "serve": ("repro.serve",),
    "faults": ("repro.faults",),
    "obs": ("repro.obs",),
    # Fuzz subsystem: the whole package is patrolled for determinism
    # and error taxonomy; the purity rule patrols the I/O-free core
    # scope, which excludes repro.fuzz.cli — the subsystem's only
    # module allowed to touch files or a terminal.
    "fuzz": ("repro.fuzz",),
    "fuzz-core": (
        "repro.fuzz.genome",
        "repro.fuzz.mutator",
        "repro.fuzz.coverage",
        "repro.fuzz.corpus",
        "repro.fuzz.oracle",
        "repro.fuzz.engine",
        "repro.fuzz.shrink",
        "repro.fuzz.seeds",
    ),
}

DEFAULT_BASELINE = "lint-baseline.json"


@dataclass(frozen=True)
class ScopeMap:
    """Maps dotted-module prefixes to named scopes."""

    scopes: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_SCOPES)
    )

    def scopes_for(self, module: str) -> "frozenset[str]":
        """Every scope whose prefixes cover ``module``."""
        matched = set()
        for scope, prefixes in self.scopes.items():
            for prefix in prefixes:
                if module == prefix or module.startswith(prefix + "."):
                    matched.add(scope)
                    break
        return frozenset(matched)

    def as_dict(self) -> Dict[str, List[str]]:
        return {scope: list(prefixes) for scope, prefixes in self.scopes.items()}


@dataclass(frozen=True)
class LintConfig:
    """Fully-resolved configuration for one engine run."""

    scope_map: ScopeMap = field(default_factory=ScopeMap)
    #: Per-rule option mappings, keyed by rule id (e.g. ``{"R1": {...}}``).
    rule_options: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    #: Per-rule scope overrides; rules fall back to their declared defaults.
    rule_scopes: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Rule ids to run; ``None`` means every registered rule.
    enabled_rules: Optional[Tuple[str, ...]] = None
    baseline_path: Optional[str] = DEFAULT_BASELINE
    #: Whether the whole-program dataflow rules (R6-R8) run.
    flow_enabled: bool = False
    #: Raw ``[lint.flow]`` table (taint-model overrides), passed to the
    #: flow rules as the ``__flow__`` option.
    flow: Mapping[str, Any] = field(default_factory=dict)

    def with_flow(self, enabled: bool = True) -> "LintConfig":
        """Copy of this config with the flow pass toggled."""
        return replace(self, flow_enabled=enabled)

    def options_for(self, rule_id: str) -> Mapping[str, Any]:
        return self.rule_options.get(rule_id, {})

    def scopes_for_rule(
        self, rule_id: str, default: Sequence[str]
    ) -> Tuple[str, ...]:
        return tuple(self.rule_scopes.get(rule_id, tuple(default)))


def _expect_table(value: Any, context: str) -> Mapping[str, Any]:
    if not isinstance(value, dict):
        raise LintConfigError(f"{context} must be a TOML table")
    return value


def _string_list(value: Any, context: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintConfigError(f"{context} must be a list of strings")
    return tuple(value)


def parse_config(document: Mapping[str, Any]) -> LintConfig:
    """Build a :class:`LintConfig` from a parsed TOML document."""
    section = _expect_table(document.get("lint", {}), "[lint]")
    scopes: Dict[str, Tuple[str, ...]] = dict(DEFAULT_SCOPES)
    if "scopes" in section:
        raw_scopes = _expect_table(section["scopes"], "[lint.scopes]")
        scopes = {
            name: _string_list(prefixes, f"[lint.scopes].{name}")
            for name, prefixes in raw_scopes.items()
        }
    rule_options: Dict[str, Dict[str, Any]] = {}
    rule_scopes: Dict[str, Tuple[str, ...]] = {}
    if "rules" in section:
        raw_rules = _expect_table(section["rules"], "[lint.rules]")
        for rule_id, raw in raw_rules.items():
            table = dict(_expect_table(raw, f"[lint.rules.{rule_id}]"))
            if "scopes" in table:
                rule_scopes[rule_id] = _string_list(
                    table.pop("scopes"), f"[lint.rules.{rule_id}].scopes"
                )
            if table.pop("enabled", True) is False:
                table["__disabled__"] = True
            rule_options[rule_id] = table
    enabled = None
    if "select" in section:
        enabled = _string_list(section["select"], "[lint].select")
    baseline = section.get("baseline", DEFAULT_BASELINE)
    if baseline is not None and not isinstance(baseline, str):
        raise LintConfigError("[lint].baseline must be a string path")
    flow_enabled = False
    flow: Mapping[str, Any] = {}
    if "flow" in section:
        flow = dict(_expect_table(section["flow"], "[lint.flow]"))
        flow_enabled = bool(flow.get("enabled", False))
    return LintConfig(
        scope_map=ScopeMap(scopes),
        rule_options=rule_options,
        rule_scopes=rule_scopes,
        enabled_rules=enabled,
        baseline_path=baseline,
        flow_enabled=flow_enabled,
        flow=flow,
    )


def load_config(path: Path) -> LintConfig:
    """Load ``lint.toml``; missing file yields the embedded defaults."""
    if not path.is_file():
        return LintConfig()
    if tomllib is None:
        raise LintConfigError(
            f"cannot read {path}: TOML parsing needs Python >= 3.11 "
            "(tomllib); rerun on a newer interpreter or drop the file"
        )
    try:
        with path.open("rb") as handle:
            document = tomllib.load(handle)
    except tomllib.TOMLDecodeError as exc:
        raise LintConfigError(f"invalid TOML in {path}: {exc}") from exc
    return parse_config(document)


def find_config(start: Path) -> Optional[Path]:
    """Nearest ``lint.toml`` at or above ``start`` (a file or directory)."""
    current = start if start.is_dir() else start.parent
    current = current.resolve()
    for candidate in (current, *current.parents):
        path = candidate / "lint.toml"
        if path.is_file():
            return path
    return None
