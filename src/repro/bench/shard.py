"""Machine-readable sharding benchmark: shard counts head to head.

Runs the GenDPR pipeline over one large-L workload for every requested
shard count with both collusion settings (f = 0 and f = 1), then emits
one JSON document — ``BENCH_shard.json`` by default — with wall-clock
and modeled times, wire accounting, the tree-aggregation gauges
(``shard.*``) and the measured speedup of every batched numpy kernel
over its per-SNP scalar reference (the hot path the shard pipeline
replaced).  ``docs/PERFORMANCE.md`` describes how to read it.

The emitter doubles as the equivalence gate used in CI: for every
(f, S) cell it asserts that the sharded run produced bit-identical
study *decisions* to the flat S = 1 run, that the per-enclave peak
partial frame shrinks as O(L/S), and that the leader's per-round
fan-in stays at the tree arity — the process exits non-zero when any
of those fails.

Run as::

    PYTHONPATH=src python -m repro.bench.shard --out BENCH_shard.json \
        [--snps 2000] [--gdos 5] [--shards 1,2,4,8] [--scale 0.05]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import (
    CollusionPolicy,
    FaultConfig,
    ObservabilityConfig,
    ResilienceConfig,
    ShardingConfig,
)
from ..core.phases import StudyResult
from ..core.protocol import run_study
from ..errors import ReproError
from ..stats import chisq, ld, lr_test
from .workloads import (
    PAPER_CASE_FULL,
    bench_scale,
    clear_cohort_cache,
    paper_cohort,
    paper_config,
    scaled,
)

#: Shard counts compared by default — the invariant set the tests pin.
DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)
#: Seed of the chaos plan armed for the faulted-run section.
FAULT_SEED = 7
#: Per-envelope fault probability of that plan.
FAULT_INTENSITY = 0.1
#: Generous ceiling on modeled-time overhead of a faulted supervised
#: run over its clean sharded cell: retry backoff and tree repair cost
#: simulated seconds, but masking a 10% fault rate must never blow the
#: run up by more than this factor.
FAULTED_OVERHEAD_BUDGET = 10.0
#: Sliding window of the greedy LD walk (mirrors the enclave constant).
LD_WINDOW = 25
#: Elements the scalar references are timed over before extrapolating;
#: the full-size loops are exactly what the kernels replaced and would
#: dominate the bench's own runtime.
SCALAR_SAMPLE = 400


def study_decisions(result: StudyResult) -> Dict[str, Any]:
    """The decision fields of a result — everything but timings.

    Unlike the fig5 gate this omits the OCALL round book: sharded runs
    legitimately add ``shard:*`` rounds, while every *decision* must
    stay bit-identical.
    """
    collusion = None
    if result.collusion is not None:
        collusion = {
            "baseline_safe": list(result.collusion.baseline_safe),
            "outcomes": sorted(
                (list(o.member_ids), o.f, list(o.safe_snps))
                for o in result.collusion.outcomes
            ),
        }
    return {
        "l_prime": list(result.l_prime),
        "l_double_prime": list(result.l_double_prime),
        "l_safe": list(result.l_safe),
        "release_power": result.release_power,
        "collusion": collusion,
    }


def _shard_gauges(result: StudyResult) -> Dict[str, float]:
    report = result.observability
    if report is None:
        return {}
    gauges = report.metrics["gauges"]
    counters = report.metrics["counters"]
    peaks = [
        value
        for name, value in gauges.items()
        if name.startswith("shard.peak_partial_bytes.")
    ]
    return {
        "max_width": gauges.get("shard.max_width", 0.0),
        "aggregation_rounds": gauges.get("shard.aggregation_rounds", 0.0),
        "peak_partial_bytes": max(peaks) if peaks else 0.0,
        "partial_bytes_total": counters.get("shard.partial_bytes", 0),
    }


def _run_cell(
    num_snps: int,
    gdos: int,
    f: int,
    shards: int,
    faults: Optional[FaultConfig] = None,
    resilience: Optional[ResilienceConfig] = None,
) -> Tuple[StudyResult, Dict[str, Any]]:
    cohort, _truth = paper_cohort(PAPER_CASE_FULL, num_snps)
    collusion = CollusionPolicy((f,)) if f > 0 else CollusionPolicy.none()
    config = paper_config(
        num_snps,
        study_id=f"shard-G{gdos}-f{f}-S{shards}",
        collusion=collusion,
    )
    config = replace(
        config,
        sharding=ShardingConfig.over(shards),
        observability=ObservabilityConfig(enabled=True),
    )
    if faults is not None:
        config = replace(config, faults=faults)
    if resilience is not None:
        config = replace(config, resilience=resilience)
    begin = time.perf_counter()
    result = run_study(cohort, config, gdos)
    wall_ms = (time.perf_counter() - begin) * 1000.0
    row: Dict[str, Any] = {
        "gdos": gdos,
        "f": f,
        "shards": shards,
        "wall_ms": wall_ms,
        "total_ms": result.timings.total_seconds * 1000.0,
        "network_bytes": result.network_bytes,
        "network_messages": result.network_messages,
        # Frames the leader ingests in one aggregation round: the flat
        # summary round fans in G-1 whole-L frames at once; the combine
        # tree bounds this at the heap arity regardless of G and L.
        "leader_fan_in": 2 if shards > 1 and gdos > 2 else max(gdos - 1, 0),
        "safe_snps": result.retained_after_lr,
        "release_power": result.release_power,
        "shard": _shard_gauges(result),
    }
    return result, row


def _time_kernel(fn, *args, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - begin)
    return best


def kernel_speedups(num_snps: int) -> List[Dict[str, Any]]:
    """Batched kernels vs the per-SNP scalar loops they replaced.

    The scalar references run over :data:`SCALAR_SAMPLE` elements and
    extrapolate linearly (they are the O(elements) loops the seed code
    shipped); the batched kernels run full size.  Inputs mirror the
    workload's dimensions at the current bench scale.
    """
    rng = np.random.default_rng(7)
    rows = scaled(PAPER_CASE_FULL)
    genotypes = (
        rng.random((rows, num_snps)) < rng.uniform(0.05, 0.5, num_snps)
    ).astype(np.int8)
    snps = list(range(num_snps))
    pairs = ld.window_pairs(snps, LD_WINDOW)
    num_pairs = pairs.shape[0]
    case_freq = rng.uniform(0.05, 0.6, num_snps)
    ref_freq = rng.uniform(0.05, 0.6, num_snps)
    n_case, n_control = rows, max(rows - 5, 1)
    case_counts = rng.integers(0, n_case + 1, size=num_snps)
    control_counts = rng.integers(0, n_control + 1, size=num_snps)
    sample_pairs = min(SCALAR_SAMPLE, num_pairs)
    sample_rows = min(50, rows)

    results: List[Dict[str, Any]] = []

    def record(kernel: str, elements: int, batched_s: float,
               scalar_sample_s: float, sample: int) -> None:
        scalar_s = scalar_sample_s * (elements / max(sample, 1))
        results.append(
            {
                "kernel": kernel,
                "elements": elements,
                "batched_s": batched_s,
                "scalar_s": scalar_s,
                "speedup": scalar_s / batched_s if batched_s > 0 else 0.0,
            }
        )

    record(
        "window_pairs",
        num_pairs,
        _time_kernel(ld.window_pairs, snps, LD_WINDOW),
        _time_kernel(ld.window_pairs_scalar, snps[:SCALAR_SAMPLE], LD_WINDOW),
        ld.window_pairs_scalar(snps[:SCALAR_SAMPLE], LD_WINDOW).shape[0],
    )
    record(
        "pair_moments",
        num_pairs,
        _time_kernel(ld.pair_moments_kernel, genotypes, pairs),
        _time_kernel(
            ld.pair_moments_scalar, genotypes, pairs[:sample_pairs]
        ),
        sample_pairs,
    )
    record(
        "rank_pvalues",
        num_snps,
        _time_kernel(
            chisq.rank_pvalues, case_counts, control_counts, n_case, n_control
        ),
        _time_kernel(
            chisq.rank_pvalues_scalar,
            case_counts[:SCALAR_SAMPLE],
            control_counts[:SCALAR_SAMPLE],
            n_case,
            n_control,
        ),
        min(SCALAR_SAMPLE, num_snps),
    )
    record(
        "lr_matrix",
        rows * num_snps,
        _time_kernel(lr_test.lr_matrix, genotypes, case_freq, ref_freq),
        _time_kernel(
            lr_test.lr_matrix_scalar,
            genotypes[:sample_rows],
            case_freq,
            ref_freq,
        ),
        sample_rows * num_snps,
    )
    return results


def faulted_runs(
    num_snps: int,
    gdos: int,
    counts: Sequence[int],
    baseline: Dict[str, Any],
    clean_ms: Dict[int, float],
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Sharded cells re-run under a seeded chaos plan, supervised.

    Every cell must either complete with decisions bit-identical to
    the flat fault-free baseline — within the modeled-time overhead
    budget — or abort classified.  Repair/retry counters land in the
    report so CI archives how much masking each plan needed.
    """
    faults = FaultConfig.chaos(FAULT_SEED, intensity=FAULT_INTENSITY)
    supervised = ResilienceConfig.supervised()
    section: List[Dict[str, Any]] = []
    problems: List[str] = []
    completed = 0
    for shards in counts:
        if shards == 1:
            continue
        row: Dict[str, Any] = {
            "shards": shards,
            "seed": FAULT_SEED,
            "intensity": FAULT_INTENSITY,
        }
        try:
            result, cell = _run_cell(
                num_snps, gdos, 0, shards,
                faults=faults, resilience=supervised,
            )
        except ReproError as exc:
            row["outcome"] = "classified_abort"
            row["error"] = type(exc).__name__
            section.append(row)
            continue
        completed += 1
        row["outcome"] = "completed"
        row["wall_ms"] = cell["wall_ms"]
        row["total_ms"] = cell["total_ms"]
        counters = result.observability.metrics["counters"]
        row["repair"] = {
            name: counters.get(f"shard.repair.{name}", 0)
            for name in (
                "repairs",
                "tasks_rerun",
                "level_retries",
                "partials_redelivered",
                "verify_runs",
            )
        }
        if study_decisions(result) != baseline:
            problems.append(f"faulted S={shards}: decisions diverged")
        clean = clean_ms.get(shards, 0.0)
        ratio = cell["total_ms"] / clean if clean else 0.0
        row["overhead_ratio"] = ratio
        if ratio > FAULTED_OVERHEAD_BUDGET:
            problems.append(
                f"faulted S={shards}: modeled overhead {ratio:.1f}x "
                f"exceeds the {FAULTED_OVERHEAD_BUDGET:.0f}x budget"
            )
        section.append(row)
    if not completed:
        problems.append("faulted: no cell completed")
    return section, problems


def fast_path_check(
    num_snps: int,
    gdos: int,
    shards: int,
    clean_row: Dict[str, Any],
    baseline: Dict[str, Any],
) -> Tuple[Dict[str, Any], List[str]]:
    """Supervision with no armed faults must cost nothing on the wire.

    The resilient combine path sends exactly the frames the plain path
    sends (retries and repair traffic only exist once faults fire), so
    a supervised fault-free cell is gated on byte-identical network
    accounting against its unsupervised twin — the zero-overhead fast
    path the sharded pipeline promises.
    """
    result, row = _run_cell(
        num_snps, gdos, 0, shards,
        resilience=ResilienceConfig.supervised(),
    )
    problems: List[str] = []
    if study_decisions(result) != baseline:
        problems.append("fast-path: supervised decisions diverged")
    same_wire = (
        row["network_bytes"] == clean_row["network_bytes"]
        and row["network_messages"] == clean_row["network_messages"]
    )
    if not same_wire:
        problems.append(
            "fast-path: supervised fault-free run changed wire traffic "
            f"({row['network_messages']} msgs/{row['network_bytes']} B vs "
            f"{clean_row['network_messages']} msgs/"
            f"{clean_row['network_bytes']} B)"
        )
    counters = result.observability.metrics["counters"]
    summary = {
        "shards": shards,
        "network_bytes": row["network_bytes"],
        "network_messages": row["network_messages"],
        "wire_identical": same_wire,
        "repairs": counters.get("shard.repair.repairs", 0),
        "retries": counters.get("shard.repair.level_retries", 0),
    }
    if summary["repairs"] or summary["retries"]:
        problems.append("fast-path: repair machinery engaged without faults")
    return summary, problems


def shard_report(
    num_snps: int = 2000,
    gdos: int = 5,
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    f_values: Sequence[int] = (0, 1),
) -> Dict[str, Any]:
    """Run every (f, S) cell and assemble the JSON document."""
    counts = sorted(set(shard_counts))
    if counts[0] != 1:
        counts = [1, *counts]
    runs: List[Dict[str, Any]] = []
    mismatches: List[str] = []
    memory: List[Dict[str, Any]] = []
    baseline_f0: Optional[Dict[str, Any]] = None
    clean_ms_f0: Dict[int, float] = {}
    clean_rows_f0: Dict[int, Dict[str, Any]] = {}
    for f in f_values:
        baseline: Optional[Dict[str, Any]] = None
        flat_row: Optional[Dict[str, Any]] = None
        peaks: Dict[int, float] = {}
        for shards in counts:
            result, row = _run_cell(num_snps, gdos, f, shards)
            runs.append(row)
            decisions = study_decisions(result)
            if f == 0:
                clean_ms_f0[shards] = row["total_ms"]
                clean_rows_f0[shards] = row
            if shards == 1:
                baseline, flat_row = decisions, row
                if f == 0:
                    baseline_f0 = decisions
                continue
            if decisions != baseline:
                mismatches.append(f"f={f}, S={shards}")
            peaks[shards] = row["shard"]["peak_partial_bytes"]
            if row["leader_fan_in"] > 2 and gdos > 2:
                mismatches.append(f"f={f}, S={shards}: leader fan-in")
        sharded = sorted(peaks)
        shrinking = all(
            peaks[small] > peaks[large]
            for small, large in zip(sharded, sharded[1:])
        )
        if not shrinking:
            mismatches.append(f"f={f}: peak partial bytes not O(L/S)")
        memory.append(
            {
                "f": f,
                # The flat summary round's leader ingest: G-1 frames of
                # L int64 counts at once — the O(G·L) bound sharding
                # replaces.
                "flat_leader_ingest_bytes": (
                    (flat_row["leader_fan_in"] if flat_row else 0)
                    * num_snps
                    * 8
                ),
                "peak_partial_bytes_by_shards": {
                    str(s): peaks[s] for s in sharded
                },
                "scales_inversely": shrinking,
            }
        )
    faulted: List[Dict[str, Any]] = []
    fast_path: Dict[str, Any] = {}
    sharded_counts = [s for s in counts if s > 1]
    if sharded_counts and baseline_f0 is not None and 0 in f_values:
        faulted, fault_problems = faulted_runs(
            num_snps, gdos, counts, baseline_f0, clean_ms_f0
        )
        mismatches.extend(fault_problems)
        widest = max(sharded_counts)
        fast_path, fast_problems = fast_path_check(
            num_snps, gdos, widest, clean_rows_f0[widest], baseline_f0
        )
        mismatches.extend(fast_problems)
    kernels = kernel_speedups(num_snps)
    return {
        "benchmark": "shard",
        "snps": num_snps,
        "gdos": gdos,
        "shard_counts": counts,
        "f_values": list(f_values),
        "scale": bench_scale(),
        "cpu_count": os.cpu_count(),
        "runs": runs,
        "memory": memory,
        "faulted": faulted,
        "fast_path": fast_path,
        "faulted_overhead_budget": FAULTED_OVERHEAD_BUDGET,
        "kernels": kernels,
        "min_kernel_speedup": min(k["speedup"] for k in kernels),
        "equivalent": not mismatches,
        "mismatched_cells": mismatches,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="SNP-range sharding benchmark (shard counts head to head)"
    )
    parser.add_argument(
        "--out", default="BENCH_shard.json", help="output JSON path"
    )
    parser.add_argument("--snps", type=int, default=2000)
    parser.add_argument("--gdos", type=int, default=5)
    parser.add_argument(
        "--shards",
        default="1,2,4,8",
        help="comma-separated shard counts (default: 1,2,4,8)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="population scale override (else REPRO_BENCH_SCALE)",
    )
    args = parser.parse_args(argv)
    if args.scale is not None:
        os.environ["REPRO_BENCH_SCALE"] = str(args.scale)
        clear_cohort_cache()
    shard_counts = [int(s) for s in str(args.shards).split(",") if s]
    report = shard_report(args.snps, args.gdos, shard_counts)
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for entry in report["memory"]:
        by_shards = entry["peak_partial_bytes_by_shards"]
        trail = ", ".join(f"S={s}: {int(v)}" for s, v in by_shards.items())
        print(
            f"f={entry['f']}: flat leader ingest "
            f"{entry['flat_leader_ingest_bytes']} B/round; "
            f"peak partial bytes {trail}"
        )
    for entry in report["faulted"]:
        if entry["outcome"] == "completed":
            repair = entry["repair"]
            print(
                f"faulted S={entry['shards']}: masked at "
                f"{entry['overhead_ratio']:.2f}x modeled overhead "
                f"({repair['level_retries']} retries, "
                f"{repair['repairs']} repairs)"
            )
        else:
            print(
                f"faulted S={entry['shards']}: classified abort "
                f"({entry['error']})"
            )
    if report["fast_path"]:
        fast = report["fast_path"]
        print(
            f"fast path S={fast['shards']}: supervised fault-free wire "
            f"{'identical' if fast['wire_identical'] else 'DIVERGED'}, "
            f"{fast['repairs']} repairs"
        )
    for kernel in report["kernels"]:
        print(
            f"kernel {kernel['kernel']}: {kernel['speedup']:.0f}x over the "
            f"scalar loop ({kernel['elements']} elements)"
        )
    if not report["equivalent"]:
        print(
            "EQUIVALENCE FAILURE: "
            + "; ".join(report["mismatched_cells"])
        )
        return 1
    print(f"all cells equivalent; report written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
