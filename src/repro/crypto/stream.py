"""Fast stream cipher for bulk payloads.

The paper's enclaves encrypt everything with AES-256 backed by AES-NI
hardware.  A pure-Python AES keystream would throttle the benchmarks to
a few hundred kilobytes per second, distorting the running-time *shape*
the reproduction must preserve (encryption is not the bottleneck in the
paper).  This module therefore provides a keyed keystream generator
whose hot path runs in C:

* the (key, nonce) pair is absorbed by SHA-256 into a 256-bit block, and
* that block keys a **Philox 4x64 counter-based generator** (numpy's
  implementation) which expands it into the keystream at memory speed.

Philox is a counter-mode PRF family from the random123 suite — the
right *shape* for a stream cipher — but it is not a vetted cipher and
this construction must not be used outside simulation.  The substitution
is recorded in DESIGN.md; the pure AES-CTR path in
:mod:`repro.crypto.modes` remains the byte-faithful reference and backs
the small control messages and key wrapping.
"""

from __future__ import annotations

import hashlib

import numpy as np

NONCE_SIZE = 16


class StreamCipher:
    """SHA-256-keyed Philox counter-mode stream cipher (encrypt == decrypt)."""

    def __init__(self, key: bytes):
        if len(key) < 16:
            raise ValueError("stream key must be at least 16 bytes")
        self._key = hashlib.sha256(b"repro.stream:" + key).digest()

    def _generator(self, nonce: bytes) -> np.random.Generator:
        if len(nonce) != NONCE_SIZE:
            raise ValueError(f"nonce must be {NONCE_SIZE} bytes")
        seed_block = hashlib.sha256(self._key + nonce).digest()
        words = np.frombuffer(seed_block, dtype=np.uint64)
        # Philox-4x64 takes a 128-bit key; fold the 256-bit block onto it
        # so every seed bit influences the keystream.
        return np.random.Generator(np.random.Philox(key=words[:2] ^ words[2:]))

    def keystream(self, nonce: bytes, length: int) -> bytes:
        """Generate ``length`` keystream bytes for ``(key, nonce)``."""
        if length < 0:
            raise ValueError("length must be non-negative")
        if length == 0:
            self._generator(nonce)  # still validates the nonce
            return b""
        return self._generator(nonce).bytes(length)

    def process(self, nonce: bytes, data: bytes) -> bytes:
        """XOR ``data`` with the keystream (involution)."""
        if not data:
            self._generator(nonce)  # validate nonce for parity with keystream
            return b""
        stream = self.keystream(nonce, len(data))
        data_arr = np.frombuffer(data, dtype=np.uint8)
        stream_arr = np.frombuffer(stream, dtype=np.uint8)
        return (data_arr ^ stream_arr).tobytes()
