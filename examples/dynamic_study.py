#!/usr/bin/env python3
"""Dynamic federated study: re-assessment as genomes arrive.

GWAS federations grow: labs sequence new participants continuously.
GenDPR builds on DyPS's dynamic setting, where the release assessment
re-runs "as soon as new genomes become available".  This example drives
a three-lab federation through four epochs of data arrival and shows
the release ledger evolving — including *revocations*: SNPs an early
small cohort deemed safe that the larger cohort does not.

Run:  python examples/dynamic_study.py
"""

from __future__ import annotations

from repro import StudyConfig, SyntheticSpec, generate_cohort
from repro.core.dynamic import DynamicStudy
from repro.genomics import GenotypeMatrix

NUM_SNPS = 400
LABS = ["lab-boston", "lab-lyon", "lab-osaka"]


def main() -> None:
    spec = SyntheticSpec(
        num_snps=NUM_SNPS,
        num_case=1_200,
        num_control=900,
        case_drift_sd=0.06,
        seed=33,
    )
    cohort, _ = generate_cohort(spec)
    config = StudyConfig(snp_count=NUM_SNPS, study_id="dynamic-amd")

    study = DynamicStudy(
        cohort.panel,
        cohort.reference,
        config,
        LABS,
        min_cohort_size=250,
    )

    # Four waves of sequencing results, arriving lab by lab.
    case = cohort.case.array()
    waves = [
        {"lab-boston": (0, 90)},
        {"lab-lyon": (90, 260), "lab-osaka": (260, 420)},
        {"lab-boston": (420, 700), "lab-lyon": (700, 900)},
        {"lab-osaka": (900, 1200)},
    ]

    print(f"{'epoch':>5s} {'genomes':>8s} {'assessed':>9s} {'safe':>5s} "
          f"{'new':>4s} {'revoked':>8s}")
    print("-" * 45)
    for wave in waves:
        for lab, (start, stop) in wave.items():
            study.submit_batch(lab, GenotypeMatrix(case[start:stop]))
        report = study.close_epoch()
        safe = len(report.result.l_safe) if report.result else 0
        print(f"{report.epoch:>5d} {report.total_case_genomes:>8d} "
              f"{str(report.assessed):>9s} {safe:>5d} "
              f"{len(report.newly_released):>4d} {len(report.revoked):>8d}")

    exposure = study.revocation_exposure()
    print(f"\nCurrently released SNPs: {len(study.released_snps)}")
    if exposure:
        print(f"Revocation exposure: {len(exposure)} SNPs were published by "
              f"an earlier epoch\nbut are unsafe under the grown cohort — "
              f"already-public statistics cannot be\nunpublished; the ledger "
              f"surfaces them for the federation's governance process.")
    else:
        print("No revocations occurred: every early release stayed safe as "
              "the cohort grew.")


if __name__ == "__main__":
    main()
