"""Bridges from existing accounting into a :class:`MetricsRegistry`.

The codebase already keeps careful books — per-link ``LinkStats``,
per-enclave ``ResourceReport``, per-phase ``PhaseTimings`` — but every
bench re-aggregated them by hand.  These functions translate each of
those into metric names once, so the RunReport (and anything else
reading the registry) sees one coherent namespace.  The name ↔ paper
table/figure mapping lives in ``docs/OBSERVABILITY.md``.

Imports of the instrumented layers happen inside the functions: the
``obs`` package stays import-light and cycle-free (``net``/``core``
import ``obs``, never the reverse at module scope).
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List

from .metrics import MetricsRegistry, exponential_buckets
from .span import Span

#: Bucket bounds for byte-sized histograms: 16 B … 1 GiB.
BYTE_BUCKETS = exponential_buckets(16, 4.0, 14)
#: Bucket bounds for millisecond-scale durations: 1 µs … ~4.7 min.
SECONDS_BUCKETS = exponential_buckets(1e-6, 4.0, 14)


def metric_slug(label: str) -> str:
    """A human phase label as a metric-name component.

    ``"Indexing/Sorting/AlleleFreq."`` → ``"indexing_sorting_allelefreq"``.
    """
    slug = re.sub(r"[^a-z0-9]+", "_", label.lower()).strip("_")
    return slug or "unnamed"


def record_timings(registry: MetricsRegistry, timings) -> None:
    """Feed :class:`~repro.core.timing.PhaseTimings` into phase gauges."""
    for label, seconds in timings.seconds_by_label.items():
        registry.gauge(f"phase.{metric_slug(label)}_ms").set(seconds * 1000.0)
    registry.gauge("phase.total_ms").set(timings.total_seconds * 1000.0)


def record_network(registry: MetricsRegistry, network) -> None:
    """Feed a ``SimulatedNetwork``'s link accounting into net metrics.

    Aggregation goes through :meth:`LinkStats.merge` — the same path
    ``SimulatedNetwork.total_stats`` uses — so the bridge can never
    drift from the network's own arithmetic.
    """
    from ..net.message import LinkStats  # function-level: avoids import cycle

    total = LinkStats()
    per_link = registry.histogram("net.link_wire_bytes", bounds=BYTE_BUCKETS)
    for stats in network.links().values():
        total.merge(stats)
        per_link.observe(stats.wire_bytes)
    registry.counter("net.messages").inc(total.messages)
    registry.counter("net.wire_bytes").inc(total.wire_bytes)
    registry.counter("net.payload_bytes").inc(total.payload_bytes)
    registry.gauge("net.links").set(len(network.links()))
    registry.gauge("net.sim_time_s").set(network.simulated_time)


def record_resources(registry: MetricsRegistry, reports: Dict[str, object]) -> None:
    """Feed per-enclave ``ResourceReport`` objects into tee metrics."""
    peak = registry.histogram("tee.enclave_peak_memory_bytes", bounds=BYTE_BUCKETS)
    total_ecalls = 0
    for enclave_id, report in sorted(reports.items()):
        registry.gauge(f"tee.peak_memory_bytes.{metric_slug(enclave_id)}").set(
            report.peak_memory_bytes
        )
        registry.gauge(f"tee.cpu_utilization.{metric_slug(enclave_id)}").set(
            report.cpu_utilization
        )
        peak.observe(report.peak_memory_bytes)
        total_ecalls += report.ecall_count
    registry.counter("tee.ecalls").inc(total_ecalls)


def record_rounds(registry: MetricsRegistry, accounting) -> None:
    """Feed :class:`~repro.core.timing.RoundAccounting` into round metrics.

    ``protocol.ocall_rounds.<kind>`` counts request/response rounds per
    OCALL kind (the batched LR protocol shows up here as a single ``lr``
    round per study); ``protocol.round_concurrency`` is the mean member
    fan-out per round, and ``protocol.parallel_saving_s`` the seconds
    the parallel-federation clock model removed from the measured trace.
    """
    registry.counter("protocol.ocall_rounds").inc(accounting.rounds)
    for kind, count in sorted(accounting.rounds_by_kind.items()):
        registry.counter(f"protocol.ocall_rounds.{metric_slug(kind)}").inc(count)
    registry.counter("protocol.concurrent_rounds").inc(
        accounting.concurrent_rounds
    )
    registry.gauge("protocol.round_concurrency").set(accounting.mean_concurrency)
    registry.gauge("protocol.parallel_saving_s").set(accounting.parallel_saving)
    registry.gauge("protocol.round_member_s").set(accounting.parallel_seconds)


def record_cache_stats(registry: MetricsRegistry, stats: Dict[str, int]) -> None:
    """Feed the leader enclave's LD moment-cache counters into gauges.

    The hit rate is the fraction of pair-moment lookups served from the
    cache instead of a member exchange round; the batched window
    prefetch drives this up by fetching each pair at most once.
    """
    requested = int(stats.get("ld_pairs_requested", 0))
    fetched = int(stats.get("ld_pairs_fetched", 0))
    registry.counter("enclave.ld_pairs_requested").inc(requested)
    registry.counter("enclave.ld_pairs_fetched").inc(fetched)
    # Speculative prefetch can fetch pairs the walk never looks up, so
    # clamp at zero rather than report a negative rate.
    hit_rate = max(0.0, 1.0 - fetched / requested) if requested else 0.0
    registry.gauge("enclave.moment_cache_hit_rate").set(hit_rate)


def record_shard(
    registry: MetricsRegistry,
    plan,
    tree,
    stats: Dict[str, Dict[str, int]],
    repair: Dict[str, int] = None,
) -> None:
    """Feed SNP-range sharding accounting into ``shard.*`` metrics.

    ``plan``/``tree`` are the study's
    :class:`~repro.core.shard.ShardPlan` and
    :class:`~repro.core.shard.AggregationTree`; ``stats`` maps enclave
    id to the per-enclave counters its ``shard_stats`` ECALL exports.
    Counters sum across the federation (tasks, partials, combine
    bytes); the per-enclave peak partial size lands in a gauge per
    enclave plus a histogram, which is what the bench reads to confirm
    the O(L/S) memory claim.

    ``repair``, when given, is the orchestrator's fault-tolerance
    accounting for the tree rounds: the repair epoch lands in a gauge
    (it is a level, not an event count) and everything else — member
    replacements, task re-runs, per-level delivery retries, re-shipped
    partials, integrity verify runs — in ``shard.repair.*`` counters,
    so every masked combine-round fault leaves a trace in the report.
    """
    registry.gauge("shard.ranges").set(plan.num_shards)
    registry.gauge("shard.max_width").set(plan.max_width)
    registry.gauge("shard.tree_depth").set(tree.depth)
    registry.gauge("shard.aggregation_rounds").set(len(tree.levels()))
    if repair:
        registry.gauge("shard.repair.epoch").set(int(repair.get("epoch", 0)))
        for name, value in sorted(repair.items()):
            if name == "epoch":
                continue
            registry.counter(f"shard.repair.{metric_slug(name)}").inc(
                int(value)
            )
    peak = registry.histogram(
        "shard.peak_partial_bytes", bounds=BYTE_BUCKETS
    )
    for enclave_id, counters in sorted(stats.items()):
        registry.counter("shard.tasks_opened").inc(
            int(counters.get("tasks_opened", 0))
        )
        registry.counter("shard.tasks_accepted").inc(
            int(counters.get("tasks_accepted", 0))
        )
        registry.counter("shard.partials_emitted").inc(
            int(counters.get("partials_emitted", 0))
        )
        registry.counter("shard.partials_ingested").inc(
            int(counters.get("partials_ingested", 0))
        )
        registry.counter("shard.partial_bytes").inc(
            int(counters.get("partial_bytes", 0))
        )
        peak_bytes = int(counters.get("peak_partial_bytes", 0))
        registry.gauge(
            f"shard.peak_partial_bytes.{metric_slug(enclave_id)}"
        ).set(peak_bytes)
        peak.observe(peak_bytes)


def record_faults(registry: MetricsRegistry, counters: Dict[str, int]) -> None:
    """Feed a ``FaultInjector``'s counters into ``faults.*`` metrics.

    One counter per injected-fault kind (drops, duplicates, delays,
    corruptions, partition blocks, crashes...), so a chaos run's report
    states exactly what was thrown at it.
    """
    for name, value in sorted(counters.items()):
        registry.counter(f"faults.{metric_slug(name)}").inc(int(value))


def record_integrity(registry: MetricsRegistry, counters: Dict[str, int]) -> None:
    """Feed the integrity monitor's ledger into ``integrity.*`` metrics.

    One counter per Byzantine-detection mechanism (equivocation echo,
    transcript cross-check, checkpoint freshness, sealed-restore
    authentication) plus the quarantine count, so every detection a
    chaos run triggers is visible in the RunReport.
    """
    for name, value in sorted(counters.items()):
        registry.counter(f"integrity.{metric_slug(name)}").inc(int(value))


def record_resilience(
    registry: MetricsRegistry,
    stats: Dict[str, float],
    supervision: Dict[str, object] = None,
) -> None:
    """Feed resilient-exchange (and supervisor) stats into metrics.

    ``resilience.retries`` counts per-member retry attempts,
    ``resilience.backoff_s`` the simulated seconds the retrying side
    waited, and the ``failovers``/``leader_crashes`` counters record the
    supervisor's recovery work — all visible in the RunReport, so every
    masked fault leaves a trace.
    """
    backoff_seconds = float(stats.get("backoff_seconds", 0.0))
    registry.gauge("resilience.backoff_s").set(backoff_seconds)
    # High-water marks are levels, not event counts: report as gauges.
    high_water = int(stats.get("dedup_seen_high_water", 0))
    registry.gauge("resilience.dedup_seen_high_water").set(high_water)
    for name, value in sorted(stats.items()):
        if name in ("backoff_seconds", "dedup_seen_high_water"):
            continue
        registry.counter(f"resilience.{metric_slug(name)}").inc(int(value))
    if supervision:
        registry.counter("resilience.failovers").inc(
            int(supervision.get("failovers", 0))
        )
        registry.counter("resilience.leader_crashes").inc(
            int(supervision.get("crashes_handled", 0))
        )


def record_spans(registry: MetricsRegistry, spans: Iterable[Span]) -> None:
    """Aggregate span-level detail the accounting objects cannot provide.

    Per-message byte sizes and per-ECALL durations only exist as trace
    events; this turns them into percentile-capable histograms.
    """
    message_bytes = registry.histogram("net.message_bytes", bounds=BYTE_BUCKETS)
    ecall_seconds = registry.histogram("tee.ecall_seconds", bounds=SECONDS_BUCKETS)
    rounds = registry.counter("protocol.rounds")
    spans = list(spans)
    for span in spans:
        if span.name == "net.send":
            wire = span.attributes.get("wire_bytes")
            if isinstance(wire, (int, float)):
                message_bytes.observe(wire)
        elif span.name == "ecall":
            ecall_seconds.observe(span.duration_seconds)
        elif span.name == "round":
            rounds.inc()
    registry.counter("obs.spans").inc(len(spans))


def record_service(registry: MetricsRegistry, stats: Dict[str, object]) -> None:
    """Feed :class:`~repro.serve.FederationService` stats into metrics.

    Counters (submissions, completions, rejections, warm pool hits,
    cold provisions, retired slots, gated rounds) land under
    ``serve.*``; levels and durations (queue depth, active sessions,
    wait/wall seconds, warm-hit rate) are gauges.  The service calls
    this for its aggregate snapshot and once per finished session, so
    a session's RunReport carries the same namespace the soak-job
    artifact uses.
    """
    gauge_keys = {
        "queue_depth",
        "active_sessions",
        "queue_depth_high_water",
        "warm_hit_rate",
        "wait_seconds",
        "run_seconds",
        "round_wait_seconds",
        "pool_memory_bytes",
    }
    for name, value in sorted(stats.items()):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if name in gauge_keys or name.endswith("_seconds"):
            registry.gauge(f"serve.{metric_slug(name)}").set(float(value))
        else:
            registry.counter(f"serve.{metric_slug(name)}").inc(int(value))


def phase_labels(spans: Iterable[Span]) -> List[str]:
    """Distinct phase labels in span order (debug/report helper)."""
    seen: List[str] = []
    for span in spans:
        if span.name == "phase":
            label = str(span.attributes.get("label", "?"))
            if label not in seen:
                seen.append(label)
    return seen
