"""PLINK PED/MAP import/export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GenomicsError
from repro.genomics import GenotypeMatrix, SnpPanel
from repro.genomics.ped import (
    cohort_from_ped,
    read_map,
    read_ped,
    write_map,
    write_ped,
)


@pytest.fixture()
def panel():
    return SnpPanel.synthetic(6)


@pytest.fixture()
def genotypes():
    rng = np.random.Generator(np.random.PCG64(17))
    # Ensure minor alleles stay minor: probability < 0.5 per column.
    return GenotypeMatrix((rng.random((20, 6)) < 0.3).astype(np.uint8))


class TestMap:
    def test_roundtrip(self, panel):
        parsed = read_map(write_map(panel))
        assert parsed.ids() == panel.ids()
        assert parsed[2].position == panel[2].position

    def test_rejects_bad_lines(self):
        with pytest.raises(GenomicsError):
            read_map("1 rs1 0\n")  # 3 fields
        with pytest.raises(GenomicsError):
            read_map("x rs1 0 100\n")  # bad chromosome
        with pytest.raises(GenomicsError):
            read_map("\n\n")


class TestPed:
    def test_roundtrip_dominant_coding(self, panel, genotypes):
        phenotypes = [2] * 12 + [1] * 8
        text = write_ped(panel, genotypes, phenotypes)
        matrix, individuals = read_ped(text, panel)
        assert matrix == genotypes
        assert [ind.phenotype for ind in individuals] == phenotypes
        assert individuals[0].family_id == "FAM0"

    def test_write_validation(self, panel, genotypes):
        with pytest.raises(GenomicsError):
            write_ped(panel, genotypes, [2] * 5)  # wrong phenotype count
        with pytest.raises(GenomicsError):
            write_ped(panel, genotypes, [0] * 20)  # missing phenotype
        with pytest.raises(GenomicsError):
            write_ped(SnpPanel.synthetic(3), genotypes, [2] * 20)

    def test_read_rejects_field_count(self, panel, genotypes):
        text = write_ped(panel, genotypes, [2] * 20)
        broken = "\n".join(
            line + "\tX" for line in text.splitlines()
        )
        with pytest.raises(GenomicsError):
            read_ped(broken, panel)

    def test_read_rejects_missing_alleles(self, panel):
        fields = ["F", "I", "0", "0", "0", "2"] + ["0", "0"] * 6
        with pytest.raises(GenomicsError, match="missing genotypes"):
            read_ped("\t".join(fields) + "\n", panel)

    def test_read_rejects_triallelic(self, panel):
        ok = ["F1", "I1", "0", "0", "0", "2"] + ["A", "G"] * 6
        bad = ["F2", "I2", "0", "0", "0", "1"] + ["A", "T"] + ["A", "A"] * 5
        text = "\t".join(ok) + "\n" + "\t".join(bad) + "\n"
        with pytest.raises(GenomicsError, match="more than two alleles"):
            read_ped(text, panel)

    def test_monomorphic_snp_reads_as_zero(self, panel):
        rows = []
        for i in range(4):
            rows.append(
                "\t".join(
                    [f"F{i}", f"I{i}", "0", "0", "0", "2"] + ["A", "A"] * 6
                )
            )
        matrix, _ = read_ped("\n".join(rows) + "\n", panel)
        assert matrix.allele_counts().sum() == 0

    def test_empty_rejected(self, panel):
        with pytest.raises(GenomicsError):
            read_ped("", panel)


class TestCohortFromPed:
    def test_builds_cohort(self, panel, genotypes):
        phenotypes = [2] * 12 + [1] * 8
        cohort = cohort_from_ped(
            write_ped(panel, genotypes, phenotypes), write_map(panel)
        )
        assert cohort.case.num_individuals == 12
        assert cohort.control.num_individuals == 8
        assert cohort.reference is cohort.control
        assert cohort.num_snps == 6

    def test_requires_both_populations(self, panel, genotypes):
        with pytest.raises(GenomicsError):
            cohort_from_ped(
                write_ped(panel, genotypes, [2] * 20), write_map(panel)
            )

    def test_cohort_runs_through_protocol(self, panel, genotypes):
        """An imported PED cohort is a first-class study input."""
        from repro import StudyConfig, run_study

        rng = np.random.Generator(np.random.PCG64(23))
        big = GenotypeMatrix((rng.random((120, 6)) < 0.3).astype(np.uint8))
        phenotypes = [2] * 70 + [1] * 50
        cohort = cohort_from_ped(
            write_ped(panel, big, phenotypes), write_map(panel)
        )
        result = run_study(
            cohort, StudyConfig(snp_count=6, study_id="ped"), 2
        )
        assert result.l_des == 6
