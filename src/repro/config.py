"""Configuration objects for GenDPR studies.

The thresholds mirror the SecureGenome settings the paper adopts in its
evaluation (Section 7): MAF cut-off 0.05, LD cut-off 1e-5 (p-value on the
r-squared statistic), false-positive rate 0.1 and identification-power
threshold 0.9 for the likelihood-ratio test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .errors import CollusionConfigError, ConfigError

#: SecureGenome defaults used throughout the paper's evaluation.
DEFAULT_MAF_CUTOFF = 0.05
DEFAULT_LD_CUTOFF = 1e-5
DEFAULT_FALSE_POSITIVE_RATE = 0.1
DEFAULT_POWER_THRESHOLD = 0.9


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class PrivacyThresholds:
    """Cut-off parameters for the three verification phases.

    Attributes:
        maf_cutoff: minimum global minor-allele frequency for a SNP to be
            retained in Phase 1.  SNPs rarer than this form characteristic
            outliers exploitable by membership attacks.
        ld_cutoff: p-value threshold on the pairwise r-squared statistic in
            Phase 2.  A p-value *below* the cut-off marks the pair as
            dependent (high LD), so only the better chi-squared-ranked SNP
            of the pair is kept.
        false_positive_rate: tolerated false-positive rate (alpha) of the
            LR-test membership detector in Phase 3.
        power_threshold: maximum tolerated identification power (beta) of
            that detector; the released subset must keep empirical power
            below this value.
    """

    maf_cutoff: float = DEFAULT_MAF_CUTOFF
    ld_cutoff: float = DEFAULT_LD_CUTOFF
    false_positive_rate: float = DEFAULT_FALSE_POSITIVE_RATE
    power_threshold: float = DEFAULT_POWER_THRESHOLD

    def __post_init__(self) -> None:
        _require(0.0 <= self.maf_cutoff < 0.5, "maf_cutoff must be in [0, 0.5)")
        _require(0.0 < self.ld_cutoff < 1.0, "ld_cutoff must be in (0, 1)")
        _require(
            0.0 < self.false_positive_rate < 1.0,
            "false_positive_rate must be in (0, 1)",
        )
        _require(
            0.0 < self.power_threshold <= 1.0,
            "power_threshold must be in (0, 1]",
        )


@dataclass(frozen=True)
class CollusionPolicy:
    """How many honest-but-curious colluders the federation tolerates.

    ``f_values`` lists every collusion size the verification must survive.
    The paper's static setting corresponds to a single value (``f=2``) while
    the conservative mode enumerates ``f = 1 .. G-1``.  ``f = 0`` (the empty
    tuple) disables collusion tolerance.
    """

    f_values: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for f in self.f_values:
            if f < 0:
                raise CollusionConfigError("collusion sizes must be non-negative")
        if len(set(self.f_values)) != len(self.f_values):
            raise CollusionConfigError("duplicate collusion sizes")

    @classmethod
    def none(cls) -> "CollusionPolicy":
        """No collusion tolerance (the paper's ``f = 0`` experiments)."""
        return cls(())

    @classmethod
    def static(cls, f: int) -> "CollusionPolicy":
        """Tolerate exactly ``f`` colluders (paper's ``f = k`` rows)."""
        if f <= 0:
            raise CollusionConfigError("static collusion size must be positive")
        return cls((f,))

    @classmethod
    def conservative(cls, num_members: int) -> "CollusionPolicy":
        """Tolerate every possible collusion, ``f = {1, ..., G-1}``."""
        if num_members < 2:
            raise CollusionConfigError(
                "conservative policy needs at least two federation members"
            )
        return cls(tuple(range(1, num_members)))

    @property
    def enabled(self) -> bool:
        return bool(self.f_values)

    def validate_for(self, num_members: int) -> None:
        """Check every requested ``f`` is feasible for ``num_members`` GDOs."""
        for f in self.f_values:
            if f >= num_members:
                raise CollusionConfigError(
                    f"cannot tolerate f={f} colluders among G={num_members} members"
                )


#: Supported federation execution modes.
EXECUTION_MODES = ("sequential", "parallel")


@dataclass(frozen=True)
class ExecutionConfig:
    """How the simulated federation executes member work within a round.

    The paper's evaluation assumes the ``G`` member enclaves compute
    concurrently on separate servers.  ``parallel`` makes the simulation
    do the same — each OCALL round fans member frames out to a thread
    pool (numpy and hashlib release the GIL on the hot paths) — while
    ``sequential`` keeps the original one-member-at-a-time loop.  Both
    modes produce bit-identical study outcomes; only wall-clock and the
    round-accounting reconciliation differ (see ``docs/PERFORMANCE.md``).

    Attributes:
        mode: ``"sequential"`` or ``"parallel"``.
        max_workers: thread-pool width for parallel rounds; defaults to
            one worker per member when unset.
    """

    mode: str = "sequential"
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        _require(
            self.mode in EXECUTION_MODES,
            f"execution mode must be one of {EXECUTION_MODES}, got {self.mode!r}",
        )
        if self.max_workers is not None:
            _require(self.max_workers > 0, "max_workers must be positive")

    @classmethod
    def sequential(cls) -> "ExecutionConfig":
        return cls(mode="sequential")

    @classmethod
    def parallel(cls, max_workers: Optional[int] = None) -> "ExecutionConfig":
        return cls(mode="parallel", max_workers=max_workers)

    @property
    def is_parallel(self) -> bool:
        return self.mode == "parallel"


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault injection for one run (``repro.faults``).

    Disabled by default; while disabled the network and ECALL fast
    paths pay a single ``is None`` check.  When enabled, every injected
    event is a pure function of ``seed`` and deterministic per-link /
    per-enclave counters, so a faulted run replays bit-for-bit from its
    configuration alone (see ``docs/RESILIENCE.md``).

    Attributes:
        enabled: master switch for injection.
        seed: drives the per-message fault draws (via
            :class:`~repro.crypto.rng.DeterministicRng`).
        drop_rate: probability a sent envelope is silently discarded.
        duplicate_rate: probability an envelope is delivered twice.
        delay_rate: probability an envelope is held back until the
            affected peer's next retry backoff releases it.
        corrupt_rate: probability a *request* frame (leader → member)
            is delivered with one byte flipped; replies are never
            corrupted because the leader enclave opens them inside a
            phase ECALL where transport-level retransmission cannot
            intervene (the AEAD check still rejects such a frame).
        replay_rate: probability an envelope is delivered together with
            a re-send of an earlier *valid* frame on the same link — a
            Byzantine host replaying authenticated traffic (absorbed by
            receiver-side dedup, rejected by channel sequencing).
        withhold_rate: probability an envelope is selectively withheld
            (a targeted Byzantine drop; see ``withhold_target``).
        withhold_target: restrict withholding to envelopes touching this
            node (empty: any link), modelling an adversary steering one
            member toward eviction.
        equivocate_rate: probability (per broadcast recipient, per
            attempt) that a compromised leader-side trusted module sends
            that recipient a divergent broadcast body — the attack the
            broadcast-consistency echo round exists to catch.
        shard_flip_rate: probability (per shard task, per emission
            attempt) that the compromised trusted module on
            ``shard_flip_target`` emits an in-bounds falsified leaf
            partial into the combine tree — interior-node equivocation,
            the attack the shard commitment verification catches.  Like
            ``equivocate_rate`` this models module compromise rather
            than a network action, so it is excluded from the
            per-envelope rate budget.
        shard_flip_target: the member whose emitted shard partials are
            falsified; required whenever ``shard_flip_rate > 0``.
        checkpoint_tamper: ``""`` (off), ``"stale"`` (one failover
            restore is served the *oldest* sealed checkpoint — a
            rollback replay, rejected via the platform counter),
            ``"stale_persistent"`` (every restore is served the oldest
            blob) or ``"corrupt"`` (every restore is served a
            bit-flipped blob, which fails unsealing closed).
        crash_points: ``(enclave_id, ecall_index)`` pairs — tear the
            enclave down immediately before its N-th ECALL dispatched
            through the untrusted proxy (1-based).
        partition_windows: ``(node_id, start_round, blocked_ops)``
            triples — from OCALL round ``start_round`` (1-based), the
            next ``blocked_ops`` network operations touching the node
            fail, then the partition heals.
    """

    enabled: bool = False
    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    corrupt_rate: float = 0.0
    replay_rate: float = 0.0
    withhold_rate: float = 0.0
    withhold_target: str = ""
    equivocate_rate: float = 0.0
    shard_flip_rate: float = 0.0
    shard_flip_target: str = ""
    checkpoint_tamper: str = ""
    crash_points: Tuple[Tuple[str, int], ...] = ()
    partition_windows: Tuple[Tuple[str, int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "drop_rate",
            "duplicate_rate",
            "delay_rate",
            "corrupt_rate",
            "replay_rate",
            "withhold_rate",
            "equivocate_rate",
            "shard_flip_rate",
        ):
            rate = getattr(self, name)
            _require(0.0 <= rate <= 1.0, f"{name} must be in [0, 1]")
        _require(
            self.shard_flip_rate == 0.0 or bool(self.shard_flip_target),
            "shard_flip_rate needs a shard_flip_target member",
        )
        _require(
            self.drop_rate
            + self.duplicate_rate
            + self.delay_rate
            + self.corrupt_rate
            + self.replay_rate
            + self.withhold_rate
            <= 1.0,
            "fault rates must sum to at most 1",
        )
        _require(
            self.checkpoint_tamper in ("", "stale", "stale_persistent", "corrupt"),
            "checkpoint_tamper must be '', 'stale', 'stale_persistent' "
            "or 'corrupt'",
        )
        for enclave_id, index in self.crash_points:
            _require(bool(enclave_id), "crash point needs an enclave id")
            _require(index >= 1, "crash point ECALL index is 1-based")
        for node_id, start_round, blocked_ops in self.partition_windows:
            _require(bool(node_id), "partition window needs a node id")
            _require(start_round >= 1, "partition start round is 1-based")
            _require(blocked_ops >= 1, "partition must block at least one op")

    @classmethod
    def off(cls) -> "FaultConfig":
        return cls()

    @classmethod
    def chaos(cls, seed: int, *, intensity: float = 0.2) -> "FaultConfig":
        """A mixed drop/duplicate/delay/corrupt profile at ``intensity``.

        ``intensity`` is the total fault probability per sent envelope,
        split 2:1:1:1 across drop, duplicate, delay and corrupt.
        """
        _require(0.0 <= intensity <= 1.0, "intensity must be in [0, 1]")
        share = intensity / 5.0
        return cls(
            enabled=True,
            seed=seed,
            drop_rate=2 * share,
            duplicate_rate=share,
            delay_rate=share,
            corrupt_rate=share,
        )

    @classmethod
    def byzantine(
        cls,
        seed: int,
        *,
        intensity: float = 0.1,
        equivocate_rate: float = 0.0,
        withhold_target: str = "",
        shard_flip_rate: float = 0.0,
        shard_flip_target: str = "",
        checkpoint_tamper: str = "",
        crash_points: Tuple[Tuple[str, int], ...] = (),
    ) -> "FaultConfig":
        """An adversarial profile: replay + targeted withholding.

        ``intensity`` is split evenly between REPLAY and WITHHOLD;
        equivocation, shard-partial falsification and checkpoint
        tampering are opt-in because they model a compromised trusted
        module / storage host rather than the network.
        """
        _require(0.0 <= intensity <= 1.0, "intensity must be in [0, 1]")
        share = intensity / 2.0
        return cls(
            enabled=True,
            seed=seed,
            replay_rate=share,
            withhold_rate=share,
            withhold_target=withhold_target,
            equivocate_rate=equivocate_rate,
            shard_flip_rate=shard_flip_rate,
            shard_flip_target=shard_flip_target,
            checkpoint_tamper=checkpoint_tamper,
            crash_points=crash_points,
        )

    def to_json_dict(self) -> dict:
        """Canonical JSON-friendly form (the fuzz-corpus wire format).

        Every field is included, scalars stay scalars and the nested
        tuples become lists-of-lists, so
        ``FaultConfig.from_json_dict(cfg.to_json_dict()) == cfg`` holds
        exactly and two equal configs serialise to identical documents
        (dict key order is irrelevant: corpus digests are computed over
        ``json.dumps(..., sort_keys=True)``).
        """
        return {
            "enabled": self.enabled,
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_rate": self.delay_rate,
            "corrupt_rate": self.corrupt_rate,
            "replay_rate": self.replay_rate,
            "withhold_rate": self.withhold_rate,
            "withhold_target": self.withhold_target,
            "equivocate_rate": self.equivocate_rate,
            "shard_flip_rate": self.shard_flip_rate,
            "shard_flip_target": self.shard_flip_target,
            "checkpoint_tamper": self.checkpoint_tamper,
            "crash_points": [
                [enclave_id, index] for enclave_id, index in self.crash_points
            ],
            "partition_windows": [
                [node_id, start_round, blocked_ops]
                for node_id, start_round, blocked_ops in self.partition_windows
            ],
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "FaultConfig":
        """Rebuild a config serialised by :meth:`to_json_dict`.

        Validation runs through ``__post_init__`` as usual, so a
        hand-edited corpus entry that breaks an invariant fails with a
        classified :class:`~repro.errors.ConfigError` instead of
        constructing an impossible plan.
        """
        try:
            return cls(
                enabled=bool(doc["enabled"]),
                seed=int(doc["seed"]),
                drop_rate=float(doc["drop_rate"]),
                duplicate_rate=float(doc["duplicate_rate"]),
                delay_rate=float(doc["delay_rate"]),
                corrupt_rate=float(doc["corrupt_rate"]),
                replay_rate=float(doc["replay_rate"]),
                withhold_rate=float(doc["withhold_rate"]),
                withhold_target=str(doc["withhold_target"]),
                equivocate_rate=float(doc["equivocate_rate"]),
                shard_flip_rate=float(doc["shard_flip_rate"]),
                shard_flip_target=str(doc["shard_flip_target"]),
                checkpoint_tamper=str(doc["checkpoint_tamper"]),
                crash_points=tuple(
                    (str(enclave_id), int(index))
                    for enclave_id, index in doc["crash_points"]
                ),
                partition_windows=tuple(
                    (str(node_id), int(start_round), int(blocked_ops))
                    for node_id, start_round, blocked_ops in doc[
                        "partition_windows"
                    ]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed FaultConfig document: {exc}")


@dataclass(frozen=True)
class ResilienceConfig:
    """Supervised-runtime knobs: retry, backoff, checkpoint failover.

    Disabled by default, which preserves the historical fail-stop
    behaviour (any fault raises out of the protocol).  Enabled, the
    OCALL exchange retries transient per-member failures with
    exponential backoff on the *simulated* clock, and
    :class:`~repro.core.supervisor.ProtocolSupervisor` checkpoints the
    leader after every phase and performs automated failover when the
    leader enclave crashes.  Members that stay unresponsive past the
    retry budget are evicted with a classified
    :class:`~repro.errors.MemberUnresponsiveError` — the paper makes no
    liveness guarantee for members, so this is an orderly abort, never
    a hang or a wrong answer.

    Attributes:
        enabled: use the resilient exchange and the supervisor.
        max_attempts: request attempts per member per round before the
            member is declared unresponsive.
        backoff_base_s: simulated seconds of backoff after the first
            failed attempt.
        backoff_factor: multiplier applied per further attempt.
        max_failovers: leader replacements tolerated per study before a
            :class:`~repro.errors.LeaderFailoverError` abort.
        max_repairs: shard-tree repairs (member enclave replacement +
            task re-run after a mid-combine crash or quarantine)
            tolerated per study before the underlying classified error
            propagates; only consulted for sharded studies.
    """

    enabled: bool = False
    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_failovers: int = 2
    max_repairs: int = 2

    def __post_init__(self) -> None:
        _require(self.max_attempts >= 1, "max_attempts must be at least 1")
        _require(self.backoff_base_s >= 0.0, "backoff_base_s must be >= 0")
        _require(self.backoff_factor >= 1.0, "backoff_factor must be >= 1")
        _require(self.max_failovers >= 0, "max_failovers must be >= 0")
        _require(self.max_repairs >= 0, "max_repairs must be >= 0")

    @classmethod
    def off(cls) -> "ResilienceConfig":
        return cls()

    @classmethod
    def supervised(
        cls,
        *,
        max_attempts: int = 4,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        max_failovers: int = 2,
        max_repairs: int = 2,
    ) -> "ResilienceConfig":
        return cls(
            enabled=True,
            max_attempts=max_attempts,
            backoff_base_s=backoff_base_s,
            backoff_factor=backoff_factor,
            max_failovers=max_failovers,
            max_repairs=max_repairs,
        )


@dataclass(frozen=True)
class IntegrityConfig:
    """Byzantine-integrity verification switches.

    Disabled by default: the channel transcripts and checkpoint epochs
    are always maintained (they cost one running digest update per frame
    and eight authenticated bytes per checkpoint), but the *verification
    rounds* — the broadcast-consistency echo after each leader broadcast
    and the transcript cross-check at phase boundaries — only run when
    enabled, so the default wire traffic is unchanged.

    Attributes:
        enabled: run the echo and transcript verification rounds.
    """

    enabled: bool = False

    @classmethod
    def off(cls) -> "IntegrityConfig":
        return cls()

    @classmethod
    def on(cls) -> "IntegrityConfig":
        return cls(enabled=True)


@dataclass(frozen=True)
class ShardingConfig:
    """SNP-axis sharding of the aggregation pipeline (``repro.core.shard``).

    With ``num_shards = 1`` (the default) every phase aggregates flat
    through the leader exactly as the paper describes.  With ``S > 1``
    the ``L`` SNP columns are split into ``S`` contiguous ranges and the
    additive statistics (Phase-1 allele counts, Phase-2 pair moments)
    are combined pairwise up a binary tree of member enclaves rooted at
    the leader, one shard range at a time — bounding every aggregation
    frame and every transient enclave buffer to O(L/S) instead of O(L)
    and the leader's per-round fan-in to the tree arity instead of G.

    Sharding is part of the study's identity: the deterministic
    range→enclave assignment derives from this config, so ``sharding``
    is deliberately *included* in the run's config fingerprint (unlike
    ``execution``/``faults``/…), making the aggregation topology
    auditable from the RunReport.  Outcomes remain bit-identical across
    shard counts — integer addition is associative — and tests enforce
    it the same way parallel-vs-sequential equivalence is enforced.

    Attributes:
        num_shards: number of contiguous SNP ranges (``S``); 1 disables
            sharding.
    """

    num_shards: int = 1

    def __post_init__(self) -> None:
        _require(self.num_shards >= 1, "num_shards must be at least 1")

    @classmethod
    def off(cls) -> "ShardingConfig":
        """The default: flat leader aggregation."""
        return cls()

    @classmethod
    def over(cls, num_shards: int) -> "ShardingConfig":
        """Split the SNP axis into ``num_shards`` contiguous ranges."""
        return cls(num_shards=num_shards)

    @property
    def enabled(self) -> bool:
        return self.num_shards > 1


@dataclass(frozen=True)
class ObservabilityConfig:
    """Tracing/metrics switches of one run (see ``docs/OBSERVABILITY.md``).

    Disabled by default.  While disabled, every instrumentation point in
    the stack degrades to a single attribute lookup against the shared
    null sink — no spans, no metrics, no allocations — so observability
    can stay compiled-in everywhere.

    Attributes:
        enabled: record spans/metrics and attach a
            :class:`~repro.obs.RunReport` to the study result.
        capture_messages: also record one point event per network
            envelope (the highest-volume span source; switch off for
            long runs where only phase/ECALL granularity matters).
        max_spans: optional cap on collected spans; excess spans are
            counted as dropped instead of stored, bounding memory.
    """

    enabled: bool = False
    capture_messages: bool = True
    max_spans: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_spans is not None:
            _require(self.max_spans > 0, "max_spans must be positive")

    @classmethod
    def off(cls) -> "ObservabilityConfig":
        """The default: everything disabled."""
        return cls()

    @classmethod
    def tracing(
        cls,
        *,
        capture_messages: bool = True,
        max_spans: Optional[int] = None,
    ) -> "ObservabilityConfig":
        """Full tracing, as used by ``repro run --trace``."""
        return cls(
            enabled=True, capture_messages=capture_messages, max_spans=max_spans
        )


@dataclass(frozen=True)
class StudyConfig:
    """Full configuration of one GenDPR study.

    Attributes:
        snp_count: size of the desired SNP set ``L_des``.
        thresholds: privacy cut-offs for the three phases.
        collusion: collusion-tolerance policy.
        seed: seed for the protocol's randomness (leader election).  The
            genomic data carries its own seed; this one only drives
            protocol-level choices so runs are reproducible.
        study_id: free-form identifier included in protocol messages.
        observability: tracing/metrics switches; excluded from the
            run's config fingerprint because it cannot affect outcomes.
        execution: sequential vs parallel round execution; also excluded
            from the fingerprint — both modes yield bit-identical
            outcomes (enforced by tests).
        faults: deterministic fault injection (off by default); excluded
            from the fingerprint — a faulted run either completes
            bit-identically or aborts with a classified error, it never
            changes an outcome (enforced by the chaos suite).
        resilience: retry/backoff/failover runtime knobs; excluded from
            the fingerprint for the same reason.
        integrity: Byzantine verification rounds (echo + transcript
            cross-checks); excluded from the fingerprint — verification
            either confirms the fault-free outcome or aborts, it never
            changes one.
        sharding: SNP-axis sharding and tree aggregation; *included* in
            the fingerprint so the deterministic range→enclave
            assignment is recorded with the run (outcomes stay
            bit-identical across shard counts regardless).
    """

    snp_count: int
    thresholds: PrivacyThresholds = field(default_factory=PrivacyThresholds)
    collusion: CollusionPolicy = field(default_factory=CollusionPolicy.none)
    seed: int = 0
    study_id: str = "study-0"
    observability: ObservabilityConfig = field(
        default_factory=ObservabilityConfig
    )
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    integrity: IntegrityConfig = field(default_factory=IntegrityConfig)
    sharding: ShardingConfig = field(default_factory=ShardingConfig)

    def __post_init__(self) -> None:
        _require(self.snp_count > 0, "snp_count must be positive")
        _require(bool(self.study_id), "study_id must be non-empty")
        _require(
            self.sharding.num_shards <= self.snp_count,
            "num_shards cannot exceed snp_count",
        )
        if self.sharding.enabled and self.resilience.enabled:
            # Sharded tree rounds run through the resilient exchange and
            # the tree-repair controller; the composition only makes
            # sense with at least one retry before a member is declared
            # unresponsive (a single attempt would turn every transient
            # drop on a combine edge into a repair).
            _require(
                self.resilience.max_attempts >= 2,
                "sharding with resilience needs max_attempts >= 2 so "
                "combine edges can retry before declaring a member "
                "unresponsive",
            )


@dataclass(frozen=True)
class NetworkProfile:
    """Latency/bandwidth model of the simulated inter-site network.

    The defaults model a wide-area research network; the zero profile is
    used when the benchmarks measure pure computation.
    """

    latency_s: float = 0.0
    bandwidth_bytes_per_s: Optional[float] = None

    def __post_init__(self) -> None:
        _require(self.latency_s >= 0.0, "latency must be non-negative")
        if self.bandwidth_bytes_per_s is not None:
            _require(self.bandwidth_bytes_per_s > 0, "bandwidth must be positive")

    def transfer_time(self, num_bytes: int) -> float:
        """Simulated seconds to move ``num_bytes`` across one link."""
        time = self.latency_s
        if self.bandwidth_bytes_per_s is not None:
            time += num_bytes / self.bandwidth_bytes_per_s
        return time


def equal_partition_sizes(total: int, parts: int) -> Sequence[int]:
    """Sizes of an as-equal-as-possible split of ``total`` into ``parts``.

    The paper divides genomes equally among federation members; when the
    division is not exact the first ``total % parts`` members receive one
    extra genome.
    """
    if parts <= 0:
        raise ConfigError("parts must be positive")
    if total < 0:
        raise ConfigError("total must be non-negative")
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]
