"""Interdependent release assessment (cumulative exposure)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import StudyConfig
from repro.core.dynamic import DynamicStudy
from repro.core.interdependent import (
    admissible_after_history,
    assess_interdependent_release,
    cumulative_release_power,
)
from repro.errors import ProtocolError
from repro.genomics import GenotypeMatrix, SyntheticSpec, generate_cohort

ALPHA, BETA = 0.1, 0.9


@pytest.fixture(scope="module")
def leaky_cohort():
    spec = SyntheticSpec(
        num_snps=120,
        num_case=500,
        num_control=450,
        case_drift_sd=0.12,
        ld_copy_prob=0.5,
        ld_block_mean_length=2.0,
        seed=61,
    )
    cohort, _ = generate_cohort(spec)
    return cohort


class TestAssessment:
    def test_empty_inputs(self, leaky_cohort):
        outcome = assess_interdependent_release(
            leaky_cohort, [], [], alpha=ALPHA, beta=BETA
        )
        assert outcome.admitted == ()
        assert not outcome.blocked
        assert outcome.cumulative_power == 0.0

    def test_no_prior_admits_up_to_threshold(self, leaky_cohort):
        outcome = assess_interdependent_release(
            leaky_cohort, [], list(range(120)), alpha=ALPHA, beta=BETA
        )
        assert 0 < outcome.admitted_count < 120
        assert outcome.cumulative_power < BETA
        assert outcome.prior_power == 0.0

    def test_prior_exposure_shrinks_admission(self, leaky_cohort):
        fresh = assess_interdependent_release(
            leaky_cohort, [], list(range(60, 120)), alpha=ALPHA, beta=BETA
        )
        # Same candidates, but half the panel is already public.
        burdened = assess_interdependent_release(
            leaky_cohort,
            list(range(0, 60)),
            list(range(60, 120)),
            alpha=ALPHA,
            beta=BETA,
        )
        assert burdened.prior_power > 0.0
        assert burdened.admitted_count <= fresh.admitted_count

    def test_blocked_when_prior_alone_exceeds_threshold(self, leaky_cohort):
        strict_beta = 0.2
        outcome = assess_interdependent_release(
            leaky_cohort,
            list(range(0, 100)),
            [110, 111],
            alpha=ALPHA,
            beta=strict_beta,
        )
        assert outcome.blocked
        assert outcome.admitted == ()
        assert outcome.prior_power >= strict_beta

    def test_admitted_disjoint_from_published(self, leaky_cohort):
        outcome = assess_interdependent_release(
            leaky_cohort,
            [0, 1, 2],
            [1, 2, 3, 4, 5],
            alpha=ALPHA,
            beta=BETA,
        )
        assert set(outcome.admitted) <= {3, 4, 5}

    def test_cumulative_power_respects_threshold(self, leaky_cohort):
        outcome = assess_interdependent_release(
            leaky_cohort, [0, 1], list(range(2, 120)), alpha=ALPHA, beta=0.5
        )
        if not outcome.blocked:
            combined = list(outcome.admitted) + [0, 1]
            assert cumulative_release_power(
                leaky_cohort, combined, alpha=ALPHA
            ) < 0.5 + 0.02  # quantile-granularity slack

    def test_out_of_range_rejected(self, leaky_cohort):
        with pytest.raises(ProtocolError):
            assess_interdependent_release(
                leaky_cohort, [999], [], alpha=ALPHA, beta=BETA
            )

    def test_history_wrapper(self, leaky_cohort):
        direct = assess_interdependent_release(
            leaky_cohort, [0, 1, 2, 3], [10, 11], alpha=ALPHA, beta=BETA
        )
        wrapped = admissible_after_history(
            leaky_cohort, [[0, 1], [2, 3], [1]], [10, 11], alpha=ALPHA, beta=BETA
        )
        assert wrapped.admitted == direct.admitted


class TestCumulativePower:
    def test_empty_release(self, leaky_cohort):
        assert cumulative_release_power(leaky_cohort, [], alpha=ALPHA) == 0.0

    def test_monotone_in_release_size(self, leaky_cohort):
        small = cumulative_release_power(
            leaky_cohort, list(range(10)), alpha=ALPHA
        )
        large = cumulative_release_power(
            leaky_cohort, list(range(80)), alpha=ALPHA
        )
        assert large >= small - 0.05


class TestInterdependentDynamicStudy:
    def test_ledger_never_shrinks_and_exposure_bounded(self):
        spec = SyntheticSpec(
            num_snps=150, num_case=600, num_control=400,
            case_drift_sd=0.06, seed=71,
        )
        cohort, _ = generate_cohort(spec)
        config = StudyConfig(snp_count=150, study_id="interdep", seed=9)
        study = DynamicStudy(
            cohort.panel,
            cohort.reference,
            config,
            ["a", "b"],
            min_cohort_size=150,
            interdependent=True,
        )
        case = cohort.case.array()
        study.submit_batch("a", GenotypeMatrix(case[:200]))
        first = study.close_epoch()
        released_after_first = set(study.released_snps)

        study.submit_batch("b", GenotypeMatrix(case[200:600]))
        second = study.close_epoch()
        released_after_second = set(study.released_snps)

        # Published statistics never leave the ledger.
        assert released_after_first <= released_after_second
        assert set(second.still_released) == released_after_first
        # New admissions are disjoint from prior publications.
        assert not set(second.newly_released) & released_after_first
        # Cumulative exposure on the final cohort stays below beta
        # (up to empirical-quantile slack).
        power = cumulative_release_power(
            cohort, sorted(released_after_second), alpha=0.1
        )
        assert power < 0.9 + 0.05
