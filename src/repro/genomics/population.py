"""Study populations.

A GWAS cohort couples three populations over one SNP panel:

* **case** — individuals exhibiting the phenotype of interest; the
  population membership attacks target,
* **control** — the remaining study individuals, and
* **reference** — a public dataset (1000 Genomes / dbGaP analogue) with
  an allele distribution similar to the general population, which both
  the LR-test and the adversary use.

The paper's evaluation uses its control population as the reference;
:meth:`Cohort.control_as_reference` mirrors that choice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GenomicsError
from .genotype import GenotypeMatrix
from .snp import SnpPanel


@dataclass(frozen=True)
class Cohort:
    """Case/control/reference populations over one panel."""

    panel: SnpPanel
    case: GenotypeMatrix
    control: GenotypeMatrix
    reference: GenotypeMatrix

    def __post_init__(self) -> None:
        width = len(self.panel)
        for name in ("case", "control", "reference"):
            matrix: GenotypeMatrix = getattr(self, name)
            if matrix.num_snps != width:
                raise GenomicsError(
                    f"{name} population covers {matrix.num_snps} SNPs, "
                    f"panel has {width}"
                )
        if self.case.num_individuals == 0:
            raise GenomicsError("case population must be non-empty")
        if self.reference.num_individuals == 0:
            raise GenomicsError("reference population must be non-empty")

    @property
    def num_snps(self) -> int:
        return len(self.panel)

    @classmethod
    def control_as_reference(
        cls, panel: SnpPanel, case: GenotypeMatrix, control: GenotypeMatrix
    ) -> "Cohort":
        """Build a cohort using the control population as reference.

        This reproduces the paper's setting: "We used the control
        population as reference for the LR-test."
        """
        return cls(panel=panel, case=case, control=control, reference=control)

    def describe(self) -> str:
        return (
            f"Cohort({self.case.num_individuals} case / "
            f"{self.control.num_individuals} control / "
            f"{self.reference.num_individuals} reference individuals, "
            f"{self.num_snps} SNPs)"
        )
