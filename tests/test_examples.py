"""The example scripts stay runnable.

The two fastest examples are executed end-to-end; the longer scenarios
are compiled and import-checked (their logic is covered by the
integration suites — these tests guard against bit-rot in the scripts
themselves).
"""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ["quickstart.py", "baseline_comparison.py"]


def test_examples_directory_complete():
    names = {path.name for path in ALL_EXAMPLES}
    assert len(names) >= 6
    assert "quickstart.py" in names


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip()
