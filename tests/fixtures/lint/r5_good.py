"""R5 fixture — protocol-scope raises stay inside the taxonomy."""

from repro.errors import ConfigError, ProtocolError


class PhaseBudgetError(ProtocolError):
    """Local subclass: still classified (transitively a ReproError)."""


def validate(threshold, budget):
    if threshold < 0:
        raise ConfigError("threshold must be non-negative")
    if budget <= 0:
        raise PhaseBudgetError("phase budget exhausted")
    try:
        return threshold / budget
    except ZeroDivisionError as exc:
        raise exc  # re-raise of a bound exception: not flagged
