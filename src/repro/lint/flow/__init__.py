"""Whole-program secret-taint analysis over the enclave trust boundary.

The per-file rules (R1-R5) check *syntactic* invariants; this package
checks a *semantic* one — the paper's core claim (Pascoal et al., §5)
that raw genotype data, per-SNP counts and key material never leave the
attested enclave except through sanctioned cryptographic sinks.  It
layers four stages on top of the AST engine:

1. :mod:`~repro.lint.flow.callgraph` — a function index and call graph
   over every scanned module, including the string-dispatched
   ``enclave.ecall("name", ...)`` boundary calls;
2. :mod:`~repro.lint.flow.model` — the configurable taint model:
   *sources* (genotype/phenotype column reads, key material, sealed
   loads, shard leaf partials), *sanctioned sinks* (authenticated
   channel encryption, sealing), *leak sinks* (logging, metrics,
   tracer annotations, run reports, wire sends outside the channel
   wrapper, exception payloads, CLI output) and *declassifiers*;
3. :mod:`~repro.lint.flow.analysis` — per-function def-use summaries
   and a worklist-based interprocedural taint propagator;
4. :mod:`~repro.lint.flow.rules` — the R6 (secret-leak), R7
   (boundary-crossing) and R8 (declassification-audit) rules riding on
   the propagator, enabled with ``repro lint --flow``.

:mod:`~repro.lint.flow.runtime` is the dynamic half: a debug-mode
taint-tag wrapper over :class:`~repro.tee.storage.ColumnReader` and
sealed-store loads that records every *observed* secret escape at test
time, cross-checked against the statically known declassification
sites (zero statically-unknown escapes is the acceptance bar).
"""

from .analysis import FlowAnalysis, FlowResult, FunctionSummary, analyze
from .callgraph import CallGraph, FunctionIndex, build_callgraph
from .model import TaintModel
from .runtime import (
    EscapeRecord,
    TaintMonitor,
    TaintTag,
    TaintedArray,
    TaintedColumnReader,
    taint_array,
    taint_of,
    unknown_escapes,
)

__all__ = [
    "CallGraph",
    "EscapeRecord",
    "FlowAnalysis",
    "FlowResult",
    "FunctionIndex",
    "FunctionSummary",
    "TaintModel",
    "TaintMonitor",
    "TaintTag",
    "TaintedArray",
    "TaintedColumnReader",
    "analyze",
    "build_callgraph",
    "taint_array",
    "taint_of",
    "unknown_escapes",
]
