"""Experiment runners: one paper row per function call.

Each runner executes one configuration and returns a flat dict — the
row of the corresponding paper table/figure — so the benchmark files
stay declarative and the reporting layer can render any collection of
rows.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..config import CollusionPolicy, ObservabilityConfig
from ..core.baseline import run_centralized_study
from ..core.naive import run_naive_study
from ..core.protocol import run_study
from ..core.timing import ALL_LABELS
from ..genomics.partition import partition_cohort
from ..genomics.population import Cohort
from .workloads import paper_config


def gendpr_row(
    cohort: Cohort,
    num_snps: int,
    num_members: int,
    *,
    collusion: Optional[CollusionPolicy] = None,
    study_id: Optional[str] = None,
    report_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run GenDPR once; return the timing/size/resource row.

    With ``report_path``, the run executes traced and its
    :class:`~repro.obs.RunReport` is saved there — the machine-readable
    companion of the rendered table, without changing the row contents.
    """
    config = paper_config(
        num_snps,
        study_id=study_id or f"gendpr-{num_snps}snps-{num_members}gdos",
        collusion=collusion,
    )
    if report_path is not None:
        config = replace(config, observability=ObservabilityConfig.tracing())
    result = run_study(cohort, config, num_members)
    if report_path is not None and result.observability is not None:
        result.observability.save(report_path)
    row: Dict[str, object] = {
        "system": "GenDPR",
        "gdos": num_members,
        "snps": num_snps,
        "genomes": cohort.case.num_individuals,
        "maf": result.retained_after_maf,
        "ld": result.retained_after_ld,
        "lr": result.retained_after_lr,
        "total_ms": result.timings.total_seconds * 1000.0,
        "network_bytes": result.network_bytes,
        "network_messages": result.network_messages,
        "release_power": result.release_power,
        "peak_memory_kib": max(result.enclave_peak_memory.values()) / 1024.0,
        "cpu_utilization": max(result.enclave_cpu_utilization.values()),
    }
    # Member-side resource view (the paper's Table 3 reports federation
    # members' TEEs; the leader aggregates and is reported separately).
    members = [g for g in result.enclave_peak_memory if g != result.leader_id]
    if members:
        row["member_peak_memory_kib"] = sum(
            result.enclave_peak_memory[g] for g in members
        ) / len(members) / 1024.0
        row["member_cpu_utilization"] = sum(
            result.enclave_cpu_utilization[g] for g in members
        ) / len(members)
    else:
        row["member_peak_memory_kib"] = row["peak_memory_kib"]
        row["member_cpu_utilization"] = row["cpu_utilization"]
    row["leader_peak_memory_kib"] = (
        result.enclave_peak_memory[result.leader_id] / 1024.0
    )
    for label in ALL_LABELS:
        row[label] = result.timings.get(label) * 1000.0
    if result.collusion is not None:
        baseline = set(result.collusion.baseline_safe)
        vulnerable = result.collusion.vulnerable_snps(tuple(result.l_safe))
        row["f0_safe"] = len(baseline)
        row["safe_with_tolerance"] = result.retained_after_lr
        row["vulnerable"] = len(vulnerable)
        row["combinations"] = result.collusion.combinations_evaluated
    return row


def centralized_row(
    cohort: Cohort, num_snps: int, num_members: int
) -> Dict[str, object]:
    """Run the centralized SecureGenome baseline once."""
    config = paper_config(
        num_snps, study_id=f"central-{num_snps}snps-{num_members}gdos"
    )
    result = run_centralized_study(cohort, config, num_members)
    row: Dict[str, object] = {
        "system": "Centralized",
        "gdos": num_members,
        "snps": num_snps,
        "genomes": cohort.case.num_individuals,
        "maf": result.retained_after_maf,
        "ld": result.retained_after_ld,
        "lr": result.retained_after_lr,
        "total_ms": result.timings.total_seconds * 1000.0,
        "network_bytes": result.network_bytes,
        "network_messages": result.network_messages,
        "release_power": result.release_power,
        "peak_memory_kib": max(result.enclave_peak_memory.values()) / 1024.0,
        "cpu_utilization": max(result.enclave_cpu_utilization.values()),
    }
    for label in ALL_LABELS:
        row[label] = result.timings.get(label) * 1000.0
    return row


def naive_row(
    cohort: Cohort, num_snps: int, num_members: int
) -> Dict[str, object]:
    """Run the naive per-member baseline once."""
    config = paper_config(
        num_snps, study_id=f"naive-{num_snps}snps-{num_members}gdos"
    )
    datasets = partition_cohort(cohort, num_members)
    result = run_naive_study(cohort, config, datasets)
    counts = result.phase_counts()
    return {
        "system": "Naive distributed",
        "gdos": num_members,
        "snps": num_snps,
        "genomes": cohort.case.num_individuals,
        "maf": counts["MAF"],
        "ld": counts["LD"],
        "lr": counts["LR"],
    }


def collusion_row(
    cohort: Cohort,
    num_snps: int,
    num_members: int,
    f_values: List[int],
) -> Dict[str, object]:
    """One Table 5 row: collusion-tolerant GenDPR for a (G, f) setting."""
    label = (
        f"f={f_values[0]}"
        if len(f_values) == 1
        else "f={" + ",".join(str(f) for f in f_values) + "}"
    )
    row = gendpr_row(
        cohort,
        num_snps,
        num_members,
        collusion=CollusionPolicy(tuple(f_values)),
        study_id=f"collusion-G{num_members}-{label}",
    )
    row["setting"] = f"G = {num_members}, {label}"
    f0_safe = int(row["f0_safe"])
    if f0_safe:
        row["safe_pct"] = 100.0 * int(row["safe_with_tolerance"]) / f0_safe
        row["vulnerable_pct"] = 100.0 * int(row["vulnerable"]) / f0_safe
    else:
        row["safe_pct"] = row["vulnerable_pct"] = 0.0
    return row
