"""repro.serve — the long-lived federation service.

Instead of provisioning a federation per study (:func:`repro.run_study`),
the service provisions warm substrates once — attested enclaves, DH key
agreement, channel meshes — and binds each submitted study to a warm
slot, amortizing attestation across the service's lifetime:

* :class:`FederationService` — submit / status / result / cancel over a
  bounded admission queue; classified backpressure
  (:class:`~repro.errors.ServiceOverloadedError`), failure isolation
  per session.
* :class:`EnclavePool` — warm substrates in per-slot network namespaces;
  unhealthy slots (crash / failover / quarantine) are retired and
  re-provisioned.
* :class:`FairRoundGate` — FIFO-fair, bounded interleaving of protocol
  rounds across concurrent sessions; round boundaries double as
  cancellation points.
* :class:`StudySession` — one study's isolated lifecycle and accounting.

Architecture and semantics are documented in ``docs/SERVICE.md``.
"""

from .config import ServiceConfig
from .pool import EnclavePool, PoolSlot
from .scheduler import FairRoundGate
from .service import FederationService
from .session import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    StudySession,
)

__all__ = [
    "CANCELLED",
    "DONE",
    "EnclavePool",
    "FAILED",
    "FairRoundGate",
    "FederationService",
    "PoolSlot",
    "QUEUED",
    "RUNNING",
    "ServiceConfig",
    "StudySession",
    "TERMINAL_STATES",
]
