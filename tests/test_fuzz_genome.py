"""Genome layer: canonical JSON round-trips, normalization, digests.

The load-bearing property (satellite of the fuzzing issue): a
``FaultConfig``/``FaultPlan``/``PlanGenome`` serialised to its
canonical JSON and decoded back is *the same object* — equal, same
digest, and (for plans) drawing **identical injected faults** at every
coordinate.  Without that, a committed corpus entry or a chaos-report
record would not actually reproduce the run it describes.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import FaultConfig
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.fuzz.genome import (
    ENVELOPE_RATE_FIELDS,
    PlanGenome,
    genome_config,
    normalize,
)

MEMBERS = ("gdo-0", "gdo-1", "gdo-2")

_small_rate = st.sampled_from([0.0, 0.01, 0.02, 0.05, 0.08])


@st.composite
def fault_configs(draw):
    """Valid, arbitrarily-armed fault configs (rate simplex respected)."""
    envelope = {name: draw(_small_rate) for name in ENVELOPE_RATE_FIELDS}
    flip = draw(st.sampled_from([0.0, 0.35]))
    return FaultConfig(
        enabled=True,
        seed=draw(st.integers(0, 1 << 20)),
        withhold_target=draw(st.sampled_from(["", "gdo-1"])),
        equivocate_rate=draw(st.sampled_from([0.0, 0.2, 0.35])),
        shard_flip_rate=flip,
        shard_flip_target="gdo-1" if flip else "",
        checkpoint_tamper=draw(
            st.sampled_from(["", "stale", "stale_persistent", "corrupt"])
        ),
        crash_points=tuple(
            draw(
                st.lists(
                    st.tuples(
                        st.sampled_from(MEMBERS), st.integers(1, 12)
                    ),
                    max_size=2,
                )
            )
        ),
        partition_windows=tuple(
            draw(
                st.lists(
                    st.tuples(
                        st.sampled_from(MEMBERS),
                        st.integers(1, 8),
                        st.integers(1, 3),
                    ),
                    max_size=2,
                )
            )
        ),
        **envelope,
    )


@st.composite
def genomes(draw):
    return PlanGenome(
        faults=draw(fault_configs()),
        mode=draw(st.sampled_from(["sequential", "parallel"])),
        f=draw(st.sampled_from([0, 1])),
        shards=draw(st.sampled_from([1, 2, 4])),
        supervised=draw(st.booleans()),
        integrity=draw(st.booleans()),
    )


@settings(max_examples=30, deadline=None)
@given(fault_configs())
def test_fault_config_roundtrips_canonically(config):
    decoded = FaultConfig.from_json_dict(config.to_json_dict())
    assert decoded == config
    assert decoded.to_json_dict() == config.to_json_dict()


@settings(max_examples=25, deadline=None)
@given(fault_configs())
def test_plan_roundtrip_preserves_injected_fault_draws(config):
    """Round-tripped plans are equal AND draw identical faults.

    Equality alone could hide a lossy field that only matters at draw
    time, so the property also samples the per-link action stream, the
    equivocation/shard-flip decisions and the corrupt offsets.
    """
    plan = FaultPlan.from_config(config)
    decoded = FaultPlan.from_json(plan.to_json())
    assert decoded == plan
    assert decoded.digest() == plan.digest()
    for sender in MEMBERS[:2]:
        for link_index in range(1, 9):
            assert decoded.action_for(
                sender, "gdo-2", link_index
            ) == plan.action_for(sender, "gdo-2", link_index)
            assert decoded.corrupt_offset(
                sender, "gdo-2", link_index, 64
            ) == plan.corrupt_offset(sender, "gdo-2", link_index, 64)
    for attempt in range(1, 4):
        assert decoded.equivocate_for(
            "maf", "gdo-1", attempt
        ) == plan.equivocate_for("maf", "gdo-1", attempt)
        assert decoded.shard_flip_for(
            "counts", 0, attempt
        ) == plan.shard_flip_for("counts", 0, attempt)


@settings(max_examples=30, deadline=None)
@given(genomes())
def test_genome_roundtrips_with_stable_digest(genome):
    decoded = PlanGenome.from_json_dict(genome.to_json_dict())
    assert decoded == genome
    assert decoded.digest() == genome.digest()
    assert decoded.canonical_json() == genome.canonical_json()


@settings(max_examples=30, deadline=None)
@given(genomes())
def test_normalize_is_idempotent_and_enforces_threat_model(genome):
    normalized = normalize(genome, MEMBERS)
    again = normalize(normalized, MEMBERS)
    assert again.digest() == normalized.digest()
    faults = normalized.faults
    assert (
        sum(getattr(faults, name) for name in ENVELOPE_RATE_FIELDS) <= 1.0
    )
    if (
        faults.equivocate_rate > 0.0
        or faults.shard_flip_rate > 0.0
        or faults.checkpoint_tamper
    ):
        # Undefended module compromise trivially breaks the decision
        # invariant, which is outside the threat model: normalization
        # forces the defence on (the Byzantine tier does the same).
        assert normalized.integrity
    if faults.shard_flip_rate > 0.0:
        assert faults.shard_flip_target
    assert faults.enabled == bool(normalized.active_faults())


def test_normalize_arms_and_disarms_enabled_flag():
    armed = normalize(
        PlanGenome(faults=FaultConfig(seed=3, drop_rate=0.05)), MEMBERS
    )
    assert armed.faults.enabled
    disarmed = normalize(PlanGenome(faults=FaultConfig(seed=3)), MEMBERS)
    assert not disarmed.faults.enabled
    assert not disarmed.active_faults()


def test_malformed_documents_raise_config_error():
    with pytest.raises(ConfigError):
        FaultConfig.from_json_dict({"seed": 1})
    with pytest.raises(ConfigError):
        PlanGenome.from_json_dict({"mode": "sequential"})
    with pytest.raises(ConfigError):
        PlanGenome.from_json_dict(
            {
                "faults": FaultConfig().to_json_dict(),
                "mode": "warp",
                "f": 0,
                "shards": 1,
                "supervised": True,
                "integrity": False,
            }
        )


def test_genome_config_materialises_all_axes():
    genome = PlanGenome(
        faults=FaultConfig(enabled=True, seed=9, drop_rate=0.05),
        mode="parallel",
        f=1,
        shards=4,
        supervised=True,
        integrity=True,
    )
    config = genome_config(
        genome, snp_count=40, study_id="t", study_seed=5
    )
    assert config.execution.mode == "parallel"
    assert max(config.collusion.f_values) == 1
    assert config.sharding.num_shards == 4
    assert config.resilience.enabled
    assert config.integrity.enabled
    assert config.faults == genome.faults
    unsupervised = genome_config(
        dataclasses.replace(genome, supervised=False, shards=1),
        snp_count=40,
        study_id="t",
        study_seed=5,
    )
    assert not unsupervised.resilience.enabled


def test_sort_key_orders_simpler_genomes_first():
    plain = PlanGenome()
    armed = PlanGenome(
        faults=FaultConfig(enabled=True, seed=1, drop_rate=0.2),
        mode="parallel",
        shards=4,
    )
    assert plain.sort_key() < armed.sort_key()
