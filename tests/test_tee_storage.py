"""Sealed column stores and streaming readers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SealingError
from repro.tee.enclave import Enclave, ecall
from repro.tee.sealing import SealedBlob
from repro.tee.storage import (
    ColumnReader,
    SealedColumnStore,
    chunk_width_for,
    seal_matrix,
)

_KEY = bytes(range(32))


class DataEnclave(Enclave):
    @ecall
    def noop(self) -> None:
        return None


@pytest.fixture()
def enclave():
    return DataEnclave(_KEY, "storage-test")


def _matrix(rows=37, cols=53, seed=3):
    rng = np.random.Generator(np.random.PCG64(seed))
    return (rng.random((rows, cols)) < 0.3).astype(np.uint8)


class TestSealMatrix:
    def test_chunking_dimensions(self, enclave):
        data = _matrix()
        store = seal_matrix(enclave, data, "t", chunk_bytes=37 * 10)
        assert store.num_rows == 37
        assert store.num_cols == 53
        assert store.chunk_width == 10
        assert len(store.chunks) == 6

    def test_chunk_width_for(self):
        assert chunk_width_for(100, 1000) == 10
        assert chunk_width_for(10_000_000, 1000) == 1  # never zero
        with pytest.raises(SealingError):
            chunk_width_for(0)

    def test_only_2d_accepted(self, enclave):
        with pytest.raises(SealingError):
            seal_matrix(enclave, np.zeros(5, dtype=np.uint8), "t")

    def test_store_consistency_validated(self, enclave):
        store = seal_matrix(enclave, _matrix(), "t")
        with pytest.raises(SealingError):
            SealedColumnStore(
                num_rows=store.num_rows,
                num_cols=store.num_cols,
                chunk_width=store.chunk_width,
                chunks=store.chunks[:-1],
                label="t",
            )

    def test_sealed_bytes_exceed_plaintext(self, enclave):
        data = _matrix()
        store = seal_matrix(enclave, data, "t")
        assert store.sealed_bytes > data.nbytes


class TestColumnReader:
    def test_single_columns(self, enclave):
        data = _matrix()
        store = seal_matrix(enclave, data, "t", chunk_bytes=37 * 7)
        with ColumnReader(enclave, store) as reader:
            for col in (0, 7, 13, 52):
                assert np.array_equal(reader.column(col), data[:, col])

    def test_gather_columns_in_any_order(self, enclave):
        data = _matrix()
        store = seal_matrix(enclave, data, "t", chunk_bytes=37 * 5)
        indices = [50, 3, 27, 3, 0, 49]
        with ColumnReader(enclave, store) as reader:
            gathered = reader.columns(indices)
        assert np.array_equal(gathered, data[:, indices])

    def test_gather_empty(self, enclave):
        store = seal_matrix(enclave, _matrix(), "t")
        with ColumnReader(enclave, store) as reader:
            assert reader.columns([]).shape == (37, 0)

    def test_column_sums(self, enclave):
        data = _matrix()
        store = seal_matrix(enclave, data, "t", chunk_bytes=37 * 4)
        with ColumnReader(enclave, store) as reader:
            assert np.array_equal(
                reader.column_sums(), data.sum(axis=0, dtype=np.int64)
            )

    def test_out_of_range_column(self, enclave):
        store = seal_matrix(enclave, _matrix(), "t")
        with ColumnReader(enclave, store) as reader:
            with pytest.raises(SealingError):
                reader.column(53)
            with pytest.raises(SealingError):
                reader.columns([0, 99])

    def test_cache_eviction_registers_memory(self, enclave):
        data = _matrix(rows=64, cols=64)
        store = seal_matrix(enclave, data, "evict", chunk_bytes=64 * 4)
        reader = ColumnReader(enclave, store, max_cached_chunks=2)
        baseline = enclave.meter.current_memory_bytes
        for col in range(0, 64, 4):  # touch every chunk
            reader.column(col)
        cached = enclave.meter.current_memory_bytes - baseline
        assert cached <= 2 * 64 * 4  # at most two chunks resident
        reader.close()
        assert enclave.meter.current_memory_bytes == baseline

    def test_reader_rejects_zero_cache(self, enclave):
        store = seal_matrix(enclave, _matrix(), "t")
        with pytest.raises(SealingError):
            ColumnReader(enclave, store, max_cached_chunks=0)

    def test_tampered_chunk_rejected(self, enclave):
        store = seal_matrix(enclave, _matrix(), "t", chunk_bytes=37 * 10)
        raw = bytearray(store.chunks[2].data)
        raw[-1] ^= 1
        tampered = SealedColumnStore(
            num_rows=store.num_rows,
            num_cols=store.num_cols,
            chunk_width=store.chunk_width,
            chunks=store.chunks[:2]
            + (SealedBlob(data=bytes(raw), label=store.chunks[2].label),)
            + store.chunks[3:],
            label=store.label,
        )
        with ColumnReader(enclave, tampered) as reader:
            reader.column(0)  # chunk 0 untouched
            with pytest.raises(SealingError):
                reader.column(25)  # lands in tampered chunk 2

    def test_chunk_swap_rejected(self, enclave):
        """Reordering sealed chunks must fail (index bound as label)."""
        store = seal_matrix(enclave, _matrix(), "t", chunk_bytes=37 * 10)
        swapped = SealedColumnStore(
            num_rows=store.num_rows,
            num_cols=store.num_cols,
            chunk_width=store.chunk_width,
            chunks=(store.chunks[1], store.chunks[0]) + store.chunks[2:],
            label=store.label,
        )
        with ColumnReader(enclave, swapped) as reader:
            with pytest.raises(SealingError):
                reader.column(0)

    def test_wrong_enclave_cannot_read(self, enclave):
        store = seal_matrix(enclave, _matrix(), "t")
        other = DataEnclave(bytes(32), "other-platform")
        with ColumnReader(other, store) as reader:
            with pytest.raises(SealingError):
                reader.column(0)

    @given(
        rows=st.integers(min_value=1, max_value=40),
        cols=st.integers(min_value=1, max_value=60),
        chunk_bytes=st.integers(min_value=8, max_value=600),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, rows, cols, chunk_bytes):
        enclave = DataEnclave(_KEY, "prop")
        rng = np.random.Generator(np.random.PCG64(rows * 1000 + cols))
        data = (rng.random((rows, cols)) < 0.5).astype(np.uint8)
        store = seal_matrix(enclave, data, "p", chunk_bytes=chunk_bytes)
        with ColumnReader(enclave, store) as reader:
            gathered = reader.columns(list(range(cols)))
        assert np.array_equal(gathered, data)
